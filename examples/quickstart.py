#!/usr/bin/env python3
"""Quickstart: find a planted near-clique with Algorithm DistNearClique.

This is the smallest end-to-end use of the library:

1. generate a communication graph containing an ε³-near clique of size δn
   (the promise of Theorem 2.1);
2. run the distributed algorithm on the CONGEST simulator;
3. inspect the output labels, the quality of the discovered near-clique, and
   the complexity measurements (rounds, message sizes).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import DistNearCliqueRunner, density, generators
from repro.analysis import tables


def main() -> None:
    # ----------------------------------------------------------------- setup
    n = 100
    epsilon = 0.2          # the algorithm's epsilon
    delta = 0.5            # the planted near-clique holds delta*n nodes
    seed = 2009

    graph, planted = generators.planted_near_clique(
        n=n,
        clique_fraction=delta,
        epsilon=epsilon ** 3,     # the promise: an eps^3-near clique exists
        background_p=0.05,
        seed=seed,
    )
    print(
        "Workload: %d nodes, %d edges, planted %d-node near-clique (defect %.4f)"
        % (
            graph.number_of_nodes(),
            graph.number_of_edges(),
            planted.size,
            1.0 - density(graph, planted.members),
        )
    )

    # ------------------------------------------------------------------- run
    runner = DistNearCliqueRunner(
        epsilon=epsilon,
        sample_probability=8.0 / n,   # expected sample of ~8 nodes
        max_sample_size=13,           # Section 4.1 deterministic time guard
        rng=random.Random(seed),
    )
    result = runner.run(graph)

    # ---------------------------------------------------------------- report
    if result.aborted:
        print("Run aborted:", result.abort_reason)
        return

    found = result.largest_cluster()
    print()
    print("Sample S =", sorted(result.sample))
    print("Discovered near-cliques (label -> size):")
    for label, members in sorted(result.clusters.items()):
        print("  label %-4s size %3d  density %.3f" % (label, len(members), density(graph, members)))

    tables.print_table(
        ["measure", "value"],
        [
            ["largest cluster size", len(found)],
            ["largest cluster density", density(graph, found)],
            ["recall of planted set", result.recall_of(planted.members)],
            ["CONGEST rounds", result.metrics.rounds],
            ["total messages", result.metrics.total_messages],
            ["max message bits", result.metrics.max_message_bits],
        ],
        title="Quickstart summary",
    )

    print()
    print(
        "Theorem 5.7 predicts an output of size >= (1 - 13eps/2)|D| - eps^-2 "
        "and defect O(eps/delta); see benchmarks/bench_e1_main_theorem.py for "
        "the systematic sweep."
    )


if __name__ == "__main__":
    main()
