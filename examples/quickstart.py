#!/usr/bin/env python3
"""Quickstart: find a planted near-clique with Algorithm DistNearClique.

This is the smallest end-to-end use of the library:

1. generate a communication graph containing an ε³-near clique of size δn
   (the promise of Theorem 2.1);
2. run the distributed algorithm on the CONGEST simulator;
3. inspect the output labels, the quality of the discovered near-clique, and
   the complexity measurements (rounds, message sizes);
4. re-run under a different execution engine and observe the bit-identical
   results (the engine contract).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import DistNearCliqueRunner, density, generators
from repro.analysis import tables
from repro.congest import CongestConfig, available_engines


def main() -> None:
    # ----------------------------------------------------------------- setup
    n = 100
    epsilon = 0.2          # the algorithm's epsilon
    delta = 0.5            # the planted near-clique holds delta*n nodes
    seed = 2009

    graph, planted = generators.planted_near_clique(
        n=n,
        clique_fraction=delta,
        epsilon=epsilon ** 3,     # the promise: an eps^3-near clique exists
        background_p=0.05,
        seed=seed,
    )
    print(
        "Workload: %d nodes, %d edges, planted %d-node near-clique (defect %.4f)"
        % (
            graph.number_of_nodes(),
            graph.number_of_edges(),
            planted.size,
            1.0 - density(graph, planted.members),
        )
    )

    # ------------------------------------------------------------------- run
    runner = DistNearCliqueRunner(
        epsilon=epsilon,
        sample_probability=8.0 / n,   # expected sample of ~8 nodes
        max_sample_size=13,           # Section 4.1 deterministic time guard
        rng=random.Random(seed),
    )
    result = runner.run(graph)

    # ---------------------------------------------------------------- report
    if result.aborted:
        print("Run aborted:", result.abort_reason)
        return

    found = result.largest_cluster()
    print()
    print("Sample S =", sorted(result.sample))
    print("Discovered near-cliques (label -> size):")
    for label, members in sorted(result.clusters.items()):
        print("  label %-4s size %3d  density %.3f" % (label, len(members), density(graph, members)))

    tables.print_table(
        ["measure", "value"],
        [
            ["largest cluster size", len(found)],
            ["largest cluster density", density(graph, found)],
            ["recall of planted set", result.recall_of(planted.members)],
            ["CONGEST rounds", result.metrics.rounds],
            ["total messages", result.metrics.total_messages],
            ["max message bits", result.metrics.max_message_bits],
        ],
        title="Quickstart summary",
    )

    # ------------------------------------------------- engine selection
    # The round loop is pluggable: the same algorithm runs under any of the
    # registered execution engines (batched CSR fast path — the default —,
    # the reference oracle, asynchronous links behind an alpha
    # synchronizer, or partition-parallel sharded execution), and every
    # engine is bit-identical in outputs and metrics by contract.
    print()
    print("Available CONGEST engines:", ", ".join(available_engines()))
    sharded_config = CongestConfig().with_sharding(shards=4).with_log_budget(n)
    sharded = DistNearCliqueRunner(
        epsilon=epsilon,
        sample_probability=8.0 / n,
        max_sample_size=13,
        rng=random.Random(seed),      # same seed -> same coins
        config=sharded_config,
    ).run(graph)
    assert sharded.labels == result.labels
    assert sharded.metrics.rounds == result.metrics.rounds
    assert sharded.metrics.total_bits == result.metrics.total_bits
    print(
        "Re-run with engine='sharded' (4 shards): identical labels, "
        "%d rounds, %d bits — the engine contract in action."
        % (sharded.metrics.rounds, sharded.metrics.total_bits)
    )

    print()
    print(
        "Theorem 5.7 predicts an output of size >= (1 - 13eps/2)|D| - eps^-2 "
        "and defect O(eps/delta); see benchmarks/bench_e1_main_theorem.py for "
        "the systematic sweep."
    )


if __name__ == "__main__":
    main()
