#!/usr/bin/env python3
"""Clustering an ad-hoc radio network around a dense hotspot.

The paper lists radio ad-hoc networks as a second motivation: dense
subgraphs of the communication graph correspond to groups of stations that
conflict on the shared medium, and identifying them is useful for clustering
and backbone formation.  This example builds a unit-disk graph with a
geographic hotspot, runs the distributed algorithm *through the CONGEST
simulator* (so the reported rounds and message sizes are exactly what the
stations would incur), and then demonstrates the asynchronous execution
claim of Section 2 by re-running one of the building blocks under the alpha
synchronizer.

Run with:  python examples/adhoc_clusters.py
"""

from __future__ import annotations

import random

from repro import DistNearCliqueRunner, density, generators
from repro.analysis import tables
from repro.congest import AlphaSynchronizer, Network
from repro.primitives.bfs_tree import KEY_PARTICIPANT, MinIdBFSTreeProtocol


def main() -> None:
    n = 120
    seed = 42
    graph, positions = generators.adhoc_radio_network(
        n=n,
        radio_range=0.22,
        hotspot_fraction=0.25,
        hotspot_radius=0.10,
        seed=seed,
    )
    hotspot = frozenset(range(int(0.25 * n)))
    print(
        "Ad-hoc network: %d stations, %d radio links; hotspot of %d stations "
        "with density %.3f"
        % (
            graph.number_of_nodes(),
            graph.number_of_edges(),
            len(hotspot),
            density(graph, hotspot),
        )
    )

    runner = DistNearCliqueRunner(
        epsilon=0.25,
        sample_probability=8.0 / n,
        max_sample_size=12,
        min_output_size=4,
        rng=random.Random(seed),
    )
    result = runner.run(graph)
    if result.aborted:
        print("Run aborted:", result.abort_reason)
        return

    found = result.largest_cluster()
    overlap = len(found & hotspot) / float(len(hotspot))
    tables.print_table(
        ["measure", "value"],
        [
            ["stations in the discovered cluster", len(found)],
            ["cluster density", density(graph, found)],
            ["fraction of hotspot covered", overlap],
            ["CONGEST rounds", result.metrics.rounds],
            ["max message bits", result.metrics.max_message_bits],
            ["messages per station (mean)", result.metrics.total_messages / n],
        ],
        title="Hotspot discovery on the CONGEST simulator",
    )

    # ----------------------------------------------------------------------
    # Section 2 remark: the synchronous algorithm also runs asynchronously
    # under a synchronizer.  Demonstrate it on the BFS-tree building block.
    # ----------------------------------------------------------------------
    per_node = {v: {KEY_PARTICIPANT: True} for v in graph.nodes()}
    async_run = AlphaSynchronizer(
        Network(graph, seed=seed),
        MinIdBFSTreeProtocol(),
        per_node_inputs=per_node,
        delay_rng=random.Random(seed),
    ).run()
    roots = {out.root for out in async_run.outputs.values() if out is not None}
    print()
    print(
        "Alpha-synchronizer check: BFS-tree construction over asynchronous "
        "links produced %d tree(s) in %d pulses, with %d payload and %d "
        "control messages (identical trees to the synchronous run)."
        % (
            len(roots),
            async_run.pulses,
            async_run.protocol_messages,
            async_run.control_messages,
        )
    )


if __name__ == "__main__":
    main()
