#!/usr/bin/env python3
"""Discovering tightly-knit web communities (the paper's motivating scenario).

The introduction of the paper motivates near-clique discovery with web-graph
analysis: search-engine rankings are distorted by "tightly knit communities"
(link farms, burst events in blog graphs), which are essentially dense
subgraphs.  This example builds a synthetic web graph with several hidden
communities of different sizes, runs the boosted near-clique finder, and
shows that the algorithm returns a *collection* of disjoint communities — the
paper's output convention — rather than a single cluster.

It also contrasts the result with the shingles heuristic (the natural
min-hash style labelling used for syntactic clustering of the web), which on
graphs with hub structure dilutes communities badly.

Run with:  python examples/web_communities.py
"""

from __future__ import annotations

import random

from repro import BoostedNearCliqueRunner, density, generators
from repro.analysis import tables
from repro.baselines.shingles import shingles_run


def community_recall(clusters, community):
    """Best recall of one planted community over all output clusters."""
    if not clusters:
        return 0.0
    return max(len(c & community) / float(len(community)) for c in clusters)


def main() -> None:
    n = 150
    seed = 7
    graph, communities = generators.web_community_graph(
        n=n,
        communities=3,
        community_fraction=0.18,
        intra_defect=0.05,
        background_p=0.005,
        seed=seed,
    )
    print(
        "Synthetic web graph: %d pages, %d links, %d planted communities"
        % (graph.number_of_nodes(), graph.number_of_edges(), len(communities))
    )
    for index, community in enumerate(communities):
        print(
            "  community %d: %d pages, defect %.3f"
            % (index, community.size, 1.0 - density(graph, community.members))
        )

    # The boosted runner amplifies the constant success probability of a
    # single run; lambda = 5 repetitions pushes the failure rate well below
    # the single-run level (Section 4.1).
    runner = BoostedNearCliqueRunner(
        epsilon=0.2,
        sample_probability=9.0 / n,
        repetitions=6,
        min_output_size=5,
        rng=random.Random(seed),
    )
    result = runner.run(graph)
    clusters = list(result.clusters.values())

    shingle_result = shingles_run(graph, rng=random.Random(seed))
    shingle_sets = [c.members for c in shingle_result.candidates if c.size >= 5]

    rows = []
    for index, community in enumerate(communities):
        rows.append(
            [
                index,
                community.size,
                community_recall(clusters, community.members),
                community_recall(shingle_sets, community.members),
            ]
        )
    tables.print_table(
        ["community", "size", "DistNearClique recall", "shingles recall"],
        rows,
        title="Recovered web communities (boosted DistNearClique vs shingles)",
    )

    print()
    print("DistNearClique output clusters:")
    for label, members in sorted(result.clusters.items(), key=lambda kv: -len(kv[1])):
        print(
            "  label %-4s size %3d density %.3f"
            % (label, len(members), density(graph, members))
        )
    best_shingle = shingle_result.best_candidate()
    if best_shingle is not None:
        print(
            "Largest shingles candidate: size %d, density %.3f "
            "(diluted by hub pages — compare Claim 1)"
            % (best_shingle.size, best_shingle.density)
        )
    print(
        "\nNote: communities whose audiences touch a larger community's "
        "audience are suppressed by the decision stage's acknowledge/abort "
        "vote — the algorithm only guarantees that at least one large "
        "near-clique survives, exactly as in the paper."
    )


if __name__ == "__main__":
    main()
