#!/usr/bin/env python3
"""Claim 1 and Figure 1, interactively: where the shingles heuristic breaks.

Section 3 of the paper rules out the natural "shingles" heuristic by
exhibiting a graph family (Figure 1) on which it cannot output a large
near-clique, no matter where the random minimum lands.  This example builds
that family, walks through the paper's two-case analysis with explicit
shingle assignments, and contrasts it with the paper's algorithm, which
recovers the hidden clique from a three-node sample.

Run with:  python examples/shingles_failure.py
"""

from __future__ import annotations

import random

from repro import CentralizedNearCliqueFinder, density, generators
from repro.analysis import tables, theory
from repro.baselines.shingles import shingles_run


def main() -> None:
    n = 120
    delta = 0.5
    graph, partition = generators.shingles_counterexample(n=n, delta=delta)
    n_actual = graph.number_of_nodes()
    epsilon = 0.9 * theory.claim_1_epsilon_threshold(delta)
    required_size = theory.claim_1_required_size(n_actual, delta, epsilon)
    clique = partition["clique"]

    print(
        "Figure 1 graph: |C1| = |C2| = %d, |I1| = |I2| = %d; hidden clique of "
        "size %d; epsilon = %.3f; a successful output needs >= %.0f nodes at "
        "density >= %.3f"
        % (
            len(partition["C1"]),
            len(partition["I1"]),
            len(clique),
            epsilon,
            required_size,
            1 - epsilon,
        )
    )

    # ---------------------------------------------------------------- Case 1
    # Global minimum inside the clique (vmin in C1): the candidate set is
    # C1 ∪ C2 ∪ I1 whose density tends to 2*delta/(1+delta) < 1 - epsilon.
    rows = []
    for case, block in (("vmin in C1 (Case 1)", "C1"), ("vmin in I1 (Case 2)", "I1")):
        owner = min(partition[block])
        shingles = {v: v + 100 for v in graph.nodes()}
        shingles[owner] = 0
        outcome = shingles_run(graph, shingles=shingles)
        best = max(outcome.candidates, key=lambda c: c.size)
        qualifying = outcome.best_qualifying(int(required_size), epsilon)
        rows.append(
            [
                case,
                best.size,
                best.density,
                theory.claim_1_case1_density(delta) if block == "C1" else float("nan"),
                "none" if qualifying is None else "size %d" % qualifying.size,
            ]
        )
    tables.print_table(
        [
            "scenario",
            "largest candidate size",
            "its density",
            "paper's 2d/(1+d)",
            "qualifying candidate",
        ],
        rows,
        title="Claim 1 case analysis on the Figure 1 family",
    )

    # Randomised shingles: across many draws the heuristic still never wins.
    wins = 0
    trials = 200
    rng = random.Random(1)
    for _ in range(trials):
        outcome = shingles_run(graph, rng=rng)
        wins += outcome.achieves(epsilon, int(required_size))
    print(
        "\nRandom shingles: %d / %d draws produced a qualifying near-clique "
        "(Claim 1 predicts 0)." % (wins, trials)
    )

    # -------------------------------------------------- the paper's algorithm
    finder = CentralizedNearCliqueFinder(graph, epsilon)
    sample = set(sorted(partition["C1"])[:2]) | {min(partition["C2"])}
    result = finder.run_with_sample(sample)
    found = result.largest_cluster()
    print(
        "\nDistNearClique with the 3-node sample %s recovers %d of the %d "
        "clique nodes at density %.3f."
        % (sorted(sample), len(found & clique), len(clique), density(graph, found))
    )


if __name__ == "__main__":
    main()
