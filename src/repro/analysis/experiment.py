"""Trial runners and parameter sweeps shared by the benchmarks.

The experiments listed in DESIGN.md all follow the same pattern: generate a
workload with a planted dense set, run one of the near-clique finders a
number of times, and aggregate quality / complexity measurements.  This
module provides that plumbing once so that each benchmark file only contains
the experiment-specific sweep and the table it prints.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.analysis import stats
from repro.core import near_clique
from repro.core.boosting import BoostedNearCliqueRunner
from repro.core.dist_near_clique import DistNearCliqueRunner
from repro.core.params import AlgorithmParameters
from repro.core.reference import CentralizedNearCliqueFinder
from repro.core.result import NearCliqueResult
from repro.graphs import generators


@dataclass(frozen=True)
class TrialOutcome:
    """Measurements from one algorithm execution on one workload."""

    success: bool
    recall: float
    output_size: int
    output_defect: float
    sample_size: int
    aborted: bool
    rounds: int = 0
    max_message_bits: int = 0
    total_messages: int = 0


@dataclass
class TrialAggregate:
    """Aggregated view of a list of :class:`TrialOutcome`."""

    outcomes: List[TrialOutcome] = field(default_factory=list)

    @property
    def trials(self) -> int:
        return len(self.outcomes)

    @property
    def success(self) -> stats.SuccessRate:
        return stats.success_rate(o.success for o in self.outcomes)

    @property
    def abort_rate(self) -> float:
        if not self.outcomes:
            return 0.0
        return stats.mean([1.0 if o.aborted else 0.0 for o in self.outcomes])

    def mean_of(self, attribute: str) -> float:
        return stats.mean([float(getattr(o, attribute)) for o in self.outcomes])

    def max_of(self, attribute: str) -> float:
        if not self.outcomes:
            return 0.0
        return max(float(getattr(o, attribute)) for o in self.outcomes)

    def quantile_of(self, attribute: str, q: float) -> float:
        return stats.quantile(
            [float(getattr(o, attribute)) for o in self.outcomes], q
        )


def theorem_success(
    result: NearCliqueResult,
    graph: nx.Graph,
    planted: Iterable[int],
    delta: float,
) -> bool:
    """The success criterion used by the Theorem 5.7 experiments.

    The theorem's own bounds are used whenever they are non-vacuous:

    * size: ``|D'| ≥ (1 − 13ε/2)·|D| − ε⁻²``;
    * defect: ``defect(D') ≤ (ε/δ)/(1 − 13ε/2)`` (or the footnote's ``2ε/δ``
      when that is smaller than the clipped bound).

    For parameter points where the size bound is non-positive (small |D| or
    ε ≥ 2/13) the criterion falls back to the qualitative reading of the
    theorem: the algorithm recovered at least half of the planted set and
    the output's defect does not exceed ``2ε/δ``.
    """
    planted_set = set(planted)
    epsilon = result.epsilon
    members = result.largest_cluster()
    defect = near_clique.near_clique_defect(graph, members)

    size_bound = near_clique.theorem_5_7_size_lower_bound(len(planted_set), epsilon)
    defect_bound = near_clique.theorem_5_7_defect_bound(epsilon, delta)
    fallback_defect_bound = min(1.0, 2.0 * epsilon / delta)

    if size_bound > 0:
        return len(members) >= size_bound and defect <= max(
            defect_bound, fallback_defect_bound
        ) + 1e-9
    recall = len(members & planted_set) / float(max(1, len(planted_set)))
    return recall >= 0.5 and defect <= fallback_defect_bound + 1e-9


def _outcome_from_result(
    result: NearCliqueResult,
    graph: nx.Graph,
    planted: Iterable[int],
    delta: float,
    success_fn: Optional[Callable[[NearCliqueResult, nx.Graph, Iterable[int], float], bool]],
) -> TrialOutcome:
    planted_set = set(planted)
    members = result.largest_cluster()
    recall = (
        len(members & planted_set) / float(len(planted_set)) if planted_set else 1.0
    )
    criterion = success_fn or theorem_success
    metrics = result.metrics
    return TrialOutcome(
        success=bool(criterion(result, graph, planted_set, delta)),
        recall=recall,
        output_size=len(members),
        output_defect=near_clique.near_clique_defect(graph, members),
        sample_size=len(result.sample),
        aborted=result.aborted,
        rounds=metrics.rounds if metrics else 0,
        max_message_bits=metrics.max_message_bits if metrics else 0,
        total_messages=metrics.total_messages if metrics else 0,
    )


def run_planted_trials(
    n: int,
    epsilon: float,
    delta: float,
    trials: int,
    seed: int = 0,
    engine: str = "centralized",
    background_p: float = 0.05,
    planted_defect: Optional[float] = None,
    sample_probability: Optional[float] = None,
    expected_sample: float = 9.0,
    max_sample_size: int = 14,
    min_output_size: int = 0,
    boosting_repetitions: Optional[int] = None,
    success_fn: Optional[Callable] = None,
    regenerate_graph: bool = True,
    rng: Optional[random.Random] = None,
) -> TrialAggregate:
    """Run the standard planted-near-clique experiment.

    A fresh workload with an ε³-near clique of size δn (defect overridable
    via *planted_defect*) is generated for every trial (or once, when
    *regenerate_graph* is False), and the selected engine is executed on it.

    Parameters
    ----------
    engine:
        ``"centralized"`` — the oracle (fast, exact same computation);
        ``"distributed"`` — the CONGEST simulation (also yields round and
        message measurements); ``"boosted"`` — the Section 4.1 wrapper with
        *boosting_repetitions* repetitions (centralized engine inside).
    sample_probability:
        Explicit p; when omitted, p is chosen so that the expected sample is
        *expected_sample* nodes (the Theorem 2.1 formula with its constant
        scaled down to stay simulable — see EXPERIMENTS.md).
    rng:
        Master random source for the whole experiment (graph generation and
        per-trial streams).  When omitted, ``random.Random(seed)`` is used;
        passing an explicit instance lets callers share one source across
        runners or replay a recorded state.  *seed* is ignored when *rng*
        is given.
    """
    if engine not in ("centralized", "distributed", "boosted"):
        raise ValueError("unknown engine %r" % engine)
    if rng is None:
        rng = random.Random(seed)
    defect = planted_defect if planted_defect is not None else epsilon ** 3
    p = (
        sample_probability
        if sample_probability is not None
        else min(1.0, expected_sample / float(n))
    )
    parameters = AlgorithmParameters(
        epsilon=epsilon,
        sample_probability=p,
        max_sample_size=max_sample_size,
        min_output_size=min_output_size,
    )

    aggregate = TrialAggregate()
    graph: Optional[nx.Graph] = None
    planted = None
    for trial in range(trials):
        if graph is None or regenerate_graph:
            graph, planted = generators.planted_near_clique(
                n=n,
                clique_fraction=delta,
                epsilon=defect,
                background_p=background_p,
                seed=rng.getrandbits(32),
            )
        trial_rng = random.Random(rng.getrandbits(48))
        if engine == "centralized":
            finder = CentralizedNearCliqueFinder(
                graph, epsilon, min_output_size=min_output_size
            )
            result = finder.run(parameters, rng=trial_rng)
        elif engine == "distributed":
            runner = DistNearCliqueRunner(parameters=parameters, rng=trial_rng)
            result = runner.run(graph)
        else:
            runner = BoostedNearCliqueRunner(
                parameters=parameters,
                repetitions=boosting_repetitions or 3,
                rng=trial_rng,
            )
            result = runner.run(graph)
        aggregate.outcomes.append(
            _outcome_from_result(result, graph, planted.members, delta, success_fn)
        )
    return aggregate


def run_on_graph(
    graph: nx.Graph,
    planted: Iterable[int],
    epsilon: float,
    delta: float,
    trials: int,
    seed: int = 0,
    engine: str = "centralized",
    sample_probability: float = 0.1,
    max_sample_size: int = 14,
    min_output_size: int = 0,
    boosting_repetitions: Optional[int] = None,
    success_fn: Optional[Callable] = None,
    rng: Optional[random.Random] = None,
) -> TrialAggregate:
    """Run repeated trials of a near-clique finder on a fixed graph.

    *rng* overrides the ``random.Random(seed)`` master source, exactly as in
    :func:`run_planted_trials`.
    """
    if rng is None:
        rng = random.Random(seed)
    parameters = AlgorithmParameters(
        epsilon=epsilon,
        sample_probability=sample_probability,
        max_sample_size=max_sample_size,
        min_output_size=min_output_size,
    )
    aggregate = TrialAggregate()
    for _ in range(trials):
        trial_rng = random.Random(rng.getrandbits(48))
        if engine == "centralized":
            finder = CentralizedNearCliqueFinder(
                graph, epsilon, min_output_size=min_output_size
            )
            result = finder.run(parameters, rng=trial_rng)
        elif engine == "distributed":
            runner = DistNearCliqueRunner(parameters=parameters, rng=trial_rng)
            result = runner.run(graph)
        elif engine == "boosted":
            runner = BoostedNearCliqueRunner(
                parameters=parameters,
                repetitions=boosting_repetitions or 3,
                rng=trial_rng,
            )
            result = runner.run(graph)
        else:
            raise ValueError("unknown engine %r" % engine)
        aggregate.outcomes.append(
            _outcome_from_result(result, graph, planted, delta, success_fn)
        )
    return aggregate


def sweep(
    points: Sequence[Dict],
    runner: Callable[..., TrialAggregate],
) -> List[Tuple[Dict, TrialAggregate]]:
    """Run *runner* once per parameter point and pair results with the point."""
    results = []
    for point in points:
        results.append((dict(point), runner(**point)))
    return results
