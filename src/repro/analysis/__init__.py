"""Theory bounds, statistics helpers and the experiment harness.

* :mod:`repro.analysis.theory` — the paper's quantitative statements
  (Theorem 5.7, Corollaries 2.2 / 2.3, Lemmas 5.1–5.4, the boosting factor)
  as executable bound calculators, so experiments can print "measured vs
  paper" side by side.
* :mod:`repro.analysis.stats` — means, standard deviations and Wilson
  confidence intervals for success-probability estimates.
* :mod:`repro.analysis.experiment` — trial runners and parameter sweeps
  shared by every benchmark.
* :mod:`repro.analysis.tables` — plain-text table rendering for benchmark
  output and EXPERIMENTS.md.
"""

from repro.analysis import experiment, stats, tables, theory

__all__ = ["theory", "stats", "experiment", "tables"]
