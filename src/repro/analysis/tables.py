"""Plain-text table rendering for benchmark output.

Each benchmark prints one or more tables of the form the paper's evaluation
would contain (parameter point per row, measured and predicted quantities
per column).  EXPERIMENTS.md embeds the same tables.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence


def format_value(value: Any) -> str:
    """Render one cell: floats to four significant figures, rest verbatim."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return "%.3g" % value
        return "%.4g" % value
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render a monospace table with a header rule.

    Returns the table as a string (callers print it); column widths adapt to
    the content.
    """
    rendered_rows: List[List[str]] = [[format_value(cell) for cell in row] for row in rows]
    header_cells = [str(h) for h in headers]
    widths = [len(h) for h in header_cells]
    for row in rendered_rows:
        if len(row) != len(header_cells):
            raise ValueError(
                "row has %d cells but the table has %d columns"
                % (len(row), len(header_cells))
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(header_cells))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render and print a table; return the rendered string for logging."""
    text = render_table(headers, rows, title=title)
    print()
    print(text)
    return text


def markdown_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render the same data as a GitHub-flavoured markdown table."""
    header_cells = [str(h) for h in headers]
    lines = [
        "| " + " | ".join(header_cells) + " |",
        "|" + "|".join("---" for _ in header_cells) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(format_value(cell) for cell in row) + " |")
    return "\n".join(lines)
