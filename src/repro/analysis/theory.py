"""The paper's quantitative statements as executable bound calculators.

Every experiment prints its measurements next to the bound the paper claims;
this module is the single place those bounds are written down.  Asymptotic
statements (Ω(·), O(·)) necessarily involve unspecified constants — each
function documents which constant it fixes and why, and the experiments
treat them as *shape* predictions (monotonicity, crossover locations,
scaling exponents) rather than exact values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core import near_clique
from repro.core.params import expected_sample_size


# ---------------------------------------------------------------------------
# Theorem 2.1 / Theorem 5.7
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TheoremBounds:
    """The guarantees of Theorem 5.7 for a concrete parameter point."""

    epsilon: float
    delta: float
    n: int
    sample_probability: float
    planted_size: int

    @property
    def output_defect_bound(self) -> float:
        """Assertion (1): the output is a (ε/δ)/(1 − 13ε/2)-near clique."""
        return near_clique.theorem_5_7_defect_bound(self.epsilon, self.delta)

    @property
    def output_size_bound(self) -> float:
        """Assertion (2): |D'| ≥ (1 − 13ε/2)|D| − ε⁻² (clipped at 0)."""
        return max(
            0.0,
            near_clique.theorem_5_7_size_lower_bound(self.planted_size, self.epsilon),
        )

    @property
    def round_bound(self) -> float:
        """Round complexity O(2^{2pn}) (Theorem 5.7, via Lemmas 5.1–5.2)."""
        return 2.0 ** (2.0 * self.sample_probability * self.n)

    def success_probability_lower_bound(self, constant: float = 1.0) -> float:
        """1 − (1/(ε²δ))·e^{−c·ε⁴δpn} — the Theorem 5.7 success probability.

        The Ω(·) constant is not specified by the paper; ``constant`` fixes
        it (default 1).  The value is clipped to [0, 1]; for laptop-scale
        parameters the bound is often vacuous (negative before clipping) —
        the experiments therefore report the measured success rate alongside
        and check the qualitative prediction that it increases with p·n.
        """
        eps, delta, p, n = self.epsilon, self.delta, self.sample_probability, self.n
        value = 1.0 - (1.0 / (eps * eps * delta)) * math.exp(
            -constant * (eps ** 4) * delta * p * n
        )
        return min(1.0, max(0.0, value))


def theorem_2_1_sample_probability(n: int, epsilon: float, delta: float, constant: float = 1.0) -> float:
    """The p of Theorem 2.1: (1/n) · c · log(1/(εδ)) / (ε⁴δ)."""
    return min(1.0, expected_sample_size(epsilon, delta, constant=constant) / n)


# ---------------------------------------------------------------------------
# Lemmas 5.1 - 5.4
# ---------------------------------------------------------------------------
def lemma_5_1_round_bound(sample_size: int, constant: float = 8.0) -> float:
    """Lemma 5.1: the round complexity is at most O(2^{|S|}).

    The constant covers the O(|S|) additive terms of the tree construction
    and the constant number of aggregation/broadcast sweeps; the default of 8
    upper-bounds every run observed in the test suite while staying
    asymptotically honest (it multiplies, not exponentiates).
    """
    return constant * (2.0 ** sample_size) + constant * max(1, sample_size)


def lemma_5_2_sample_tail(n: int, p: float) -> float:
    """Lemma 5.2: Pr[|S| > 2pn] ≤ e^{−pn/3}."""
    return math.exp(-p * n / 3.0)


def lemma_5_3_defect_bound(n: int, t: int, epsilon: float) -> float:
    """Lemma 5.3: T_ε(X) with t members is an (n/t)·ε-near clique."""
    return near_clique.lemma_5_3_defect_bound(n, t, epsilon)


def lemma_5_4_core_bound(d_size: int, epsilon: float) -> float:
    """Lemma 5.4: |C| ≥ (1 − ε)|D| − ε⁻²."""
    return near_clique.lemma_5_4_core_lower_bound(d_size, epsilon)


# ---------------------------------------------------------------------------
# Corollaries 2.2 and 2.3
# ---------------------------------------------------------------------------
def corollary_2_2_round_prediction(
    epsilon: float,
    delta: float,
    expected_sample_cap: float = 9.0,
) -> float:
    """Corollary 2.2: with δ = Θ(1) the round count is O(1) — independent of n.

    Concretely the prediction is ``2^{O(pn)}`` where ``pn`` depends only on ε
    and δ.  With the paper's uncapped constants the numeric value is
    astronomically large (it is a worst-case bound, not an estimate); the
    experiments run with the expected sample capped at *expected_sample_cap*
    (see EXPERIMENTS.md), so the same cap is applied here to give the
    n-independent figure experiment E2 plots measured rounds against.  The
    exponent is additionally clipped to keep the value finite.
    """
    pn = min(expected_sample_cap, expected_sample_size(epsilon, delta, constant=1.0))
    exponent = min(2.0 * pn, 512.0)
    return 2.0 ** exponent


def corollary_2_3_clique_size(n: int, alpha: float) -> int:
    """Corollary 2.3's promise: a strict clique of size n / (log log n)^α."""
    if n < 3:
        return n
    loglog = math.log(max(math.log(n), 1.0000001))
    return max(2, int(math.floor(n / (loglog ** alpha))))


def corollary_2_3_epsilon(n: int) -> float:
    """An o(1) choice of ε for Corollary 2.3's regime (ε = 1/ log log n)."""
    if n < 3:
        return 0.3
    loglog = math.log(max(math.log(n), 1.0000001))
    return min(0.3, 1.0 / max(loglog, 1.0))


# ---------------------------------------------------------------------------
# Section 4.1: boosting
# ---------------------------------------------------------------------------
def boosting_repetitions(q: float, single_run_success: float) -> int:
    """λ = ⌈log_{1−r} q⌉ — the paper's repetition count for failure ≤ q."""
    return max(1, math.ceil(math.log(q) / math.log(1.0 - single_run_success)))


def boosted_failure_probability(single_run_success: float, repetitions: int) -> float:
    """(1 − r)^λ — the failure probability after λ independent repetitions."""
    return (1.0 - single_run_success) ** repetitions


# ---------------------------------------------------------------------------
# Section 3: Claim 1 thresholds
# ---------------------------------------------------------------------------
def claim_1_epsilon_threshold(delta: float) -> float:
    """Claim 1 applies to every ε < min{(1 − δ)/(1 + δ), 1/9}."""
    return min((1.0 - delta) / (1.0 + delta), 1.0 / 9.0)


def claim_1_case1_density(delta: float) -> float:
    """Density of the Case 1 candidate set (vmin in C₁ ∪ C₂): 2δ/(1 + δ)."""
    return 2.0 * delta / (1.0 + delta)


def claim_1_required_size(n: int, delta: float, epsilon: float) -> float:
    """The size a successful output must reach: (1 − ε)δn."""
    return (1.0 - epsilon) * delta * n
