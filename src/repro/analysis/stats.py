"""Small statistics helpers for the experiment harness.

Nothing here is clever: means, standard deviations, Wilson score intervals
for Bernoulli success rates (the quantity most experiments estimate), and
simple geometric summaries.  They are separated out so both the tests and
the benchmarks share one implementation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / float(len(values))


def std(values: Sequence[float]) -> float:
    """Population standard deviation (0.0 for fewer than two values)."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    centre = mean(values)
    return math.sqrt(sum((v - centre) ** 2 for v in values) / float(len(values)))


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (0.0 if any value is non-positive)."""
    values = list(values)
    if not values or any(v <= 0 for v in values):
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / float(len(values)))


def quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile (q in [0, 1])."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(math.floor(position))
    high = min(len(ordered) - 1, low + 1)
    weight = position - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


@dataclass(frozen=True)
class SuccessRate:
    """A Bernoulli success-rate estimate with a Wilson confidence interval."""

    successes: int
    trials: int
    rate: float
    lower: float
    upper: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "%d/%d = %.3f [%.3f, %.3f]" % (
            self.successes,
            self.trials,
            self.rate,
            self.lower,
            self.upper,
        )


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> SuccessRate:
    """Wilson score interval for a binomial proportion.

    Robust for small trial counts and rates near 0 or 1, which is exactly
    the regime of the success-probability experiments (E1, E3, E7).
    """
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError("need 0 <= successes <= trials")
    if trials == 0:
        return SuccessRate(0, 0, 0.0, 0.0, 1.0)
    phat = successes / float(trials)
    denom = 1.0 + z * z / trials
    centre = (phat + z * z / (2.0 * trials)) / denom
    margin = (
        z
        * math.sqrt((phat * (1.0 - phat) + z * z / (4.0 * trials)) / trials)
        / denom
    )
    return SuccessRate(
        successes=successes,
        trials=trials,
        rate=phat,
        lower=max(0.0, centre - margin),
        upper=min(1.0, centre + margin),
    )


def success_rate(outcomes: Iterable[bool], z: float = 1.96) -> SuccessRate:
    """Wilson interval straight from an iterable of boolean outcomes."""
    outcomes = list(outcomes)
    return wilson_interval(sum(1 for o in outcomes if o), len(outcomes), z=z)


def linear_regression_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of y against x (0.0 when degenerate).

    Used by scaling experiments (e.g. max message bits against log n) to
    report a single scaling figure.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        return 0.0
    mx, my = mean(xs), mean(ys)
    sxx = sum((x - mx) ** 2 for x in xs)
    if sxx == 0:
        return 0.0
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    return sxy / sxx


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient (0.0 when degenerate)."""
    if len(xs) != len(ys) or len(xs) < 2:
        return 0.0
    mx, my = mean(xs), mean(ys)
    sx, sy = std(xs), std(ys)
    if sx == 0 or sy == 0:
        return 0.0
    covariance = mean([(x - mx) * (y - my) for x, y in zip(xs, ys)])
    return covariance / (sx * sy)
