"""Edge-list persistence for experiment workloads.

A deliberately tiny format: one ``u v`` pair per line, ``#``-prefixed
comments, plus an optional ``# nodes: n`` header so isolated vertices
survive a round trip.  Planted structures are stored next to the graph as a
comment block, so a saved workload is self-describing.
"""

from __future__ import annotations

import os
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

import networkx as nx


def write_edge_list(
    graph: nx.Graph,
    path: str,
    planted: Optional[Iterable[int]] = None,
    comment: Optional[str] = None,
) -> None:
    """Write *graph* (and optionally a planted set) to *path*."""
    directory = os.path.dirname(os.path.abspath(path))
    if directory and not os.path.isdir(directory):
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        if comment:
            for line in comment.splitlines():
                handle.write("# %s\n" % line)
        handle.write("# nodes: %d\n" % graph.number_of_nodes())
        handle.write(
            "# node-ids: %s\n" % " ".join(str(v) for v in sorted(graph.nodes()))
        )
        if planted is not None:
            handle.write(
                "# planted: %s\n" % " ".join(str(v) for v in sorted(planted))
            )
        for u, v in sorted((min(a, b), max(a, b)) for a, b in graph.edges()):
            handle.write("%d %d\n" % (u, v))


def read_edge_list(path: str) -> Tuple[nx.Graph, Optional[FrozenSet[int]]]:
    """Read a graph written by :func:`write_edge_list`.

    Returns the graph and the planted set (``None`` when the file does not
    record one).
    """
    graph = nx.Graph()
    planted: Optional[FrozenSet[int]] = None
    with open(path, "r", encoding="utf-8") as handle:
        for raw in handle:
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line[1:].strip()
                if body.startswith("node-ids:"):
                    ids = body[len("node-ids:") :].split()
                    graph.add_nodes_from(int(v) for v in ids)
                elif body.startswith("planted:"):
                    members = body[len("planted:") :].split()
                    planted = frozenset(int(v) for v in members)
                continue
            u_text, v_text = line.split()
            graph.add_edge(int(u_text), int(v_text))
    return graph, planted


def save_workload(
    graph: nx.Graph,
    directory: str,
    name: str,
    planted: Optional[Iterable[int]] = None,
    metadata: Optional[Dict[str, str]] = None,
) -> str:
    """Save a named workload under *directory*; return the file path."""
    comment_lines = ["workload: %s" % name]
    if metadata:
        comment_lines.extend("%s: %s" % (key, value) for key, value in sorted(metadata.items()))
    path = os.path.join(directory, "%s.edges" % name)
    write_edge_list(graph, path, planted=planted, comment="\n".join(comment_lines))
    return path
