"""Edge-list persistence for experiment workloads.

A deliberately tiny format: one ``u v`` pair per line, ``#``-prefixed
comments, plus an optional ``# nodes: n`` header so isolated vertices
survive a round trip.  Planted structures are stored next to the graph as a
comment block, so a saved workload is self-describing.

:func:`load_snap_edgelist` additionally reads the looser SNAP corpus
format (tabs, duplicate orientations, self-loops, gappy ids) so real
graphs can be fed to the finder and the service daemon.
"""

from __future__ import annotations

import os
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

import networkx as nx


def write_edge_list(
    graph: nx.Graph,
    path: str,
    planted: Optional[Iterable[int]] = None,
    comment: Optional[str] = None,
) -> None:
    """Write *graph* (and optionally a planted set) to *path*."""
    directory = os.path.dirname(os.path.abspath(path))
    if directory and not os.path.isdir(directory):
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        if comment:
            for line in comment.splitlines():
                handle.write("# %s\n" % line)
        handle.write("# nodes: %d\n" % graph.number_of_nodes())
        handle.write(
            "# node-ids: %s\n" % " ".join(str(v) for v in sorted(graph.nodes()))
        )
        if planted is not None:
            handle.write(
                "# planted: %s\n" % " ".join(str(v) for v in sorted(planted))
            )
        for u, v in sorted((min(a, b), max(a, b)) for a, b in graph.edges()):
            handle.write("%d %d\n" % (u, v))


def read_edge_list(path: str) -> Tuple[nx.Graph, Optional[FrozenSet[int]]]:
    """Read a graph written by :func:`write_edge_list`.

    Returns the graph and the planted set (``None`` when the file does not
    record one).
    """
    graph = nx.Graph()
    planted: Optional[FrozenSet[int]] = None
    with open(path, "r", encoding="utf-8") as handle:
        for raw in handle:
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line[1:].strip()
                if body.startswith("node-ids:"):
                    ids = body[len("node-ids:") :].split()
                    graph.add_nodes_from(int(v) for v in ids)
                elif body.startswith("planted:"):
                    members = body[len("planted:") :].split()
                    planted = frozenset(int(v) for v in members)
                continue
            u_text, v_text = line.split()
            graph.add_edge(int(u_text), int(v_text))
    return graph, planted


def load_snap_edgelist(
    path: str,
    relabel: bool = False,
) -> nx.Graph:
    """Load a SNAP-style edge list (`snap.stanford.edu <https://snap.stanford.edu/data/>`_).

    The SNAP corpus format is looser than :func:`read_edge_list`'s own:
    ``#``-prefixed comment/header lines anywhere in the file, arbitrary
    whitespace (spaces or tabs) between the two endpoint ids, blank lines,
    self-loops (dropped — the CONGEST model has none) and duplicate edges
    (collapsed; many SNAP files list both orientations of each edge).
    Node ids are arbitrary non-negative integers with gaps.

    Parameters
    ----------
    path:
        The edge-list file.  Plain text; callers decompress ``.txt.gz``
        downloads themselves.
    relabel:
        When True, relabel nodes to the dense range ``0..n-1`` in
        ascending original-id order (what the workload generators emit and
        the benchmark helpers expect).  The original id is kept as the
        ``"snap_id"`` node attribute.

    Raises
    ------
    ValueError
        On a data line that is not two integers — with the line number,
        so a truncated download is diagnosable.
    """
    graph = nx.Graph()
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(
                    "%s:%d: expected 'u v', got %r" % (path, line_number, raw)
                )
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError:
                raise ValueError(
                    "%s:%d: non-integer endpoint in %r" % (path, line_number, raw)
                ) from None
            if u == v:
                continue
            graph.add_edge(u, v)
    if relabel:
        ordered = sorted(graph.nodes())
        mapping = {snap_id: index for index, snap_id in enumerate(ordered)}
        graph = nx.relabel_nodes(graph, mapping, copy=True)
        for snap_id, index in mapping.items():
            graph.nodes[index]["snap_id"] = snap_id
    return graph


def save_workload(
    graph: nx.Graph,
    directory: str,
    name: str,
    planted: Optional[Iterable[int]] = None,
    metadata: Optional[Dict[str, str]] = None,
) -> str:
    """Save a named workload under *directory*; return the file path."""
    comment_lines = ["workload: %s" % name]
    if metadata:
        comment_lines.extend("%s: %s" % (key, value) for key, value in sorted(metadata.items()))
    path = os.path.join(directory, "%s.edges" % name)
    write_edge_list(graph, path, planted=planted, comment="\n".join(comment_lines))
    return path
