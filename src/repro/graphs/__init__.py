"""Graph generators, analysis utilities and IO.

Inputs for every experiment in DESIGN.md are produced here:

* :mod:`repro.graphs.generators` — planted ε-near cliques and planted
  cliques in random backgrounds (experiments E1–E3, E5–E7, E9–E11), the
  Claim 1 / Figure 1 counterexample family that defeats the shingles
  heuristic (E4), and the Section 6 path-of-cliques impossibility graph
  (E8).
* :mod:`repro.graphs.analysis` — density and near-clique verification,
  degree / component / diameter summaries used when validating outputs.
* :mod:`repro.graphs.io` — simple edge-list persistence so experiment
  workloads can be saved and replayed.
"""

from repro.graphs import analysis, generators, io

__all__ = ["generators", "analysis", "io"]
