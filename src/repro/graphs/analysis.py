"""Graph analysis and verification utilities.

Small, dependency-light helpers used when validating experiment outputs:
density reports, near-clique certificates, component and degree summaries.
All density-related computations delegate to :mod:`repro.core.near_clique`
so the ordered-pair convention of Definition 1 is used everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.core import near_clique


@dataclass(frozen=True)
class SetDensityReport:
    """Certificate describing how close a node set is to a clique."""

    size: int
    ordered_pairs_present: int
    ordered_pairs_total: int
    density: float
    defect: float

    def is_near_clique(self, epsilon: float) -> bool:
        return self.defect <= epsilon + 1e-9


def density_report(graph: nx.Graph, nodes: Iterable[int]) -> SetDensityReport:
    """Build a :class:`SetDensityReport` for *nodes* in *graph*."""
    node_set = set(nodes)
    size = len(node_set)
    total = size * (size - 1)
    present = near_clique.ordered_pair_edge_count(graph, node_set)
    dens = 1.0 if size <= 1 else present / total
    return SetDensityReport(
        size=size,
        ordered_pairs_present=present,
        ordered_pairs_total=total,
        density=dens,
        defect=1.0 - dens,
    )


def missing_pairs(graph: nx.Graph, nodes: Iterable[int]) -> List[Tuple[int, int]]:
    """Unordered pairs of *nodes* that are not joined by an edge."""
    members = sorted(set(nodes))
    absent = []
    for i, u in enumerate(members):
        neighbors = set(graph[u])
        for v in members[i + 1 :]:
            if v not in neighbors:
                absent.append((u, v))
    return absent


def degree_summary(graph: nx.Graph) -> Dict[str, float]:
    """Minimum / mean / maximum degree of the graph."""
    degrees = [d for _, d in graph.degree()]
    if not degrees:
        return {"min": 0.0, "mean": 0.0, "max": 0.0}
    return {
        "min": float(min(degrees)),
        "mean": sum(degrees) / float(len(degrees)),
        "max": float(max(degrees)),
    }


def component_sizes(graph: nx.Graph, nodes: Optional[Iterable[int]] = None) -> List[int]:
    """Sizes of the connected components of *graph* (or of an induced subgraph)."""
    target = graph if nodes is None else graph.subgraph(set(nodes))
    return sorted((len(c) for c in nx.connected_components(target)), reverse=True)


def induced_diameter(graph: nx.Graph, nodes: Iterable[int]) -> Optional[int]:
    """Diameter of the subgraph induced by *nodes* (None when disconnected)."""
    induced = graph.subgraph(set(nodes))
    if induced.number_of_nodes() == 0:
        return None
    if not nx.is_connected(induced):
        return None
    return nx.diameter(induced)


def densest_known_subsets(
    graph: nx.Graph, candidate_sets: Sequence[Iterable[int]]
) -> List[SetDensityReport]:
    """Density reports for a list of candidate sets, densest first."""
    reports = [density_report(graph, nodes) for nodes in candidate_sets]
    reports.sort(key=lambda report: (-report.density, -report.size))
    return reports


def greedy_near_clique_certificate(
    graph: nx.Graph, nodes: Iterable[int], epsilon: float
) -> Tuple[bool, SetDensityReport]:
    """Convenience wrapper: is the set an ε-near clique, plus its report."""
    report = density_report(graph, nodes)
    return report.is_near_clique(epsilon), report


def distance_at_most(
    graph: nx.Graph, source: int, radius: int
) -> FrozenSet[int]:
    """All nodes within *radius* hops of *source* (the T-round local view).

    Used by the impossibility experiment (E8): a T-round distributed
    algorithm's output at a node is a function of this ball, so two scenarios
    that agree on the ball are indistinguishable to that node.
    """
    lengths = nx.single_source_shortest_path_length(graph, source, cutoff=radius)
    return frozenset(lengths)


def local_view_signature(
    graph: nx.Graph, source: int, radius: int
) -> FrozenSet[Tuple[int, int]]:
    """Canonical signature of the *radius*-hop view of *source*.

    The signature is the edge set of the induced ball; two executions in
    which a node has identical signatures (and identical local inputs) must
    produce identical outputs at that node in at most *radius* rounds.
    """
    ball = distance_at_most(graph, source, radius)
    induced = graph.subgraph(ball)
    return frozenset(
        (min(u, v), max(u, v)) for u, v in induced.edges()
    )
