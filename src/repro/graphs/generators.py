"""Graph generators used by the experiments.

Every generator returns plain ``networkx.Graph`` objects with integer node
labels in ``0..n−1`` (the identifiers the CONGEST simulator uses directly)
plus, where applicable, the planted structure so that experiments can
measure recall against the ground truth.

The generators correspond to the workloads of the paper:

* :func:`planted_near_clique` / :func:`planted_clique` — the promise of
  Theorem 2.1 / 5.7 and Corollaries 2.2 / 2.3: a dense set of δn vertices
  hidden in a sparse background.
* :func:`shingles_counterexample` — the Claim 1 / **Figure 1** family
  (C₁, C₂, I₁, I₂ with complete bipartite connections) on which the shingles
  heuristic provably fails.
* :func:`path_of_cliques` — the Section 6 impossibility construction: an
  n/2-clique and an n/4-clique joined by an n/4-long path.
* :func:`web_community_graph` — a multi-community workload motivated by the
  paper's introduction (tightly-knit web communities / link farms).
* :func:`erdos_renyi` — background-only null model.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.core import near_clique


@dataclass(frozen=True)
class PlantedStructure:
    """Ground-truth information attached to a generated workload."""

    members: FrozenSet[int]
    target_defect: float

    @property
    def size(self) -> int:
        return len(self.members)


def _background(graph: nx.Graph, nodes: Sequence[int], p: float, rng: random.Random) -> None:
    """Add background G(n, p) edges between the given nodes (in place)."""
    for u, v in itertools.combinations(nodes, 2):
        if not graph.has_edge(u, v) and rng.random() < p:
            graph.add_edge(u, v)


def erdos_renyi(n: int, p: float, seed: Optional[int] = None) -> nx.Graph:
    """A plain G(n, p) background graph with integer labels ``0..n−1``."""
    if n <= 0:
        raise ValueError("n must be positive")
    rng = random.Random(seed)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    _background(graph, range(n), p, rng)
    return graph


def planted_clique(
    n: int,
    clique_size: int,
    background_p: float = 0.05,
    seed: Optional[int] = None,
) -> Tuple[nx.Graph, PlantedStructure]:
    """A strict clique of *clique_size* nodes planted in a G(n, p) background.

    Used by Corollary 2.3 (strict cliques of slightly sub-linear size) and by
    the baseline comparisons.
    """
    return planted_near_clique(
        n=n,
        clique_fraction=clique_size / float(n),
        epsilon=0.0,
        background_p=background_p,
        seed=seed,
    )


def planted_near_clique(
    n: int,
    clique_fraction: float,
    epsilon: float,
    background_p: float = 0.05,
    seed: Optional[int] = None,
) -> Tuple[nx.Graph, PlantedStructure]:
    """Plant an ε-near clique of ``⌈clique_fraction · n⌉`` nodes in G(n, p).

    The planted set D starts as a clique on nodes ``0..|D|−1`` and then a
    uniformly random ε fraction of its (unordered) pairs is deleted, so that
    D's defect (Definition 1) is as close to ε as the integrality allows —
    this realises the promise "there exists an ε³-near clique of size δn"
    when called with ``epsilon = ε³`` and ``clique_fraction = δ``.

    Returns the graph and the planted structure.  The construction never
    deletes so many pairs that the defect exceeds ε.
    """
    if not 0 < clique_fraction <= 1:
        raise ValueError("clique_fraction must lie in (0, 1]")
    if not 0 <= epsilon < 1:
        raise ValueError("epsilon must lie in [0, 1)")
    rng = random.Random(seed)
    size = max(1, int(round(clique_fraction * n)))
    members = list(range(size))

    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(itertools.combinations(members, 2))

    pairs = list(itertools.combinations(members, 2))
    removable = int(epsilon * len(pairs) * 0.999)
    rng.shuffle(pairs)
    for u, v in pairs[:removable]:
        graph.remove_edge(u, v)

    _background(graph, range(n), background_p, rng)
    # Background edges may re-densify D slightly; that only helps the promise.
    planted = PlantedStructure(
        members=frozenset(members),
        target_defect=epsilon,
    )
    return graph, planted


def shingles_counterexample(
    n: int,
    delta: float,
    seed: Optional[int] = None,
) -> Tuple[nx.Graph, Dict[str, FrozenSet[int]]]:
    """The Claim 1 / Figure 1 family G_n that defeats the shingles heuristic.

    The node set is partitioned into C₁, C₂ (each of size δn/2, complete
    subgraphs) and I₁, I₂ (each of size (1 − δ)n/2, independent sets); the
    pairs (I₁, C₁), (C₁, C₂), (C₂, I₂) are joined by complete bipartite
    graphs.  The graph contains the clique C = C₁ ∪ C₂ of size δn, yet the
    shingles algorithm cannot output an ε-near clique of size (1 − ε)δn for
    any ε < min{(1 − δ)/(1 + δ), 1/9} (Claim 1).

    *n* is rounded so that δn and n are even, as in the paper's proof.

    Returns the graph and the partition ``{"C1", "C2", "I1", "I2", "clique"}``.
    """
    if not 0 < delta < 1:
        raise ValueError("delta must lie in (0, 1)")
    half_clique = max(1, int(round(delta * n / 2.0)))
    half_independent = max(1, int(round((1.0 - delta) * n / 2.0)))
    del seed  # the construction is deterministic

    c1 = list(range(0, half_clique))
    c2 = list(range(half_clique, 2 * half_clique))
    i1 = list(range(2 * half_clique, 2 * half_clique + half_independent))
    i2 = list(
        range(
            2 * half_clique + half_independent,
            2 * half_clique + 2 * half_independent,
        )
    )

    graph = nx.Graph()
    graph.add_nodes_from(c1 + c2 + i1 + i2)
    graph.add_edges_from(itertools.combinations(c1, 2))
    graph.add_edges_from(itertools.combinations(c2, 2))
    graph.add_edges_from((u, v) for u in i1 for v in c1)
    graph.add_edges_from((u, v) for u in c1 for v in c2)
    graph.add_edges_from((u, v) for u in c2 for v in i2)

    partition = {
        "C1": frozenset(c1),
        "C2": frozenset(c2),
        "I1": frozenset(i1),
        "I2": frozenset(i2),
        "clique": frozenset(c1 + c2),
    }
    return graph, partition


def path_of_cliques(
    n: int,
) -> Tuple[nx.Graph, Dict[str, FrozenSet[int]]]:
    """The Section 6 impossibility construction.

    An n/2-vertex clique A and an n/4-vertex clique B connected by an
    n/4-long path P.  The globally largest near-clique is A; deleting all of
    A's internal edges makes it B — yet no node of B can distinguish the two
    scenarios in fewer than |P| = n/4 rounds, so no sub-diameter-time
    algorithm can output *only* the globally largest near-clique.

    Returns the graph and the partition ``{"A", "B", "P"}``.
    """
    if n < 8:
        raise ValueError("n must be at least 8")
    a_size = n // 2
    b_size = n // 4
    p_size = n - a_size - b_size

    a_nodes = list(range(a_size))
    p_nodes = list(range(a_size, a_size + p_size))
    b_nodes = list(range(a_size + p_size, a_size + p_size + b_size))

    graph = nx.Graph()
    graph.add_nodes_from(a_nodes + p_nodes + b_nodes)
    graph.add_edges_from(itertools.combinations(a_nodes, 2))
    graph.add_edges_from(itertools.combinations(b_nodes, 2))
    path_chain = [a_nodes[-1]] + p_nodes + [b_nodes[0]]
    graph.add_edges_from(zip(path_chain, path_chain[1:]))

    partition = {
        "A": frozenset(a_nodes),
        "B": frozenset(b_nodes),
        "P": frozenset(p_nodes),
    }
    return graph, partition


def delete_clique_edges(graph: nx.Graph, members: Sequence[int]) -> nx.Graph:
    """Return a copy of *graph* with all edges inside *members* removed.

    Used by the impossibility experiment (E8): the second scenario of the
    Section 6 argument deletes all edges of the large clique A.
    """
    clone = graph.copy()
    member_set = set(members)
    clone.remove_edges_from(
        [(u, v) for u, v in graph.edges() if u in member_set and v in member_set]
    )
    return clone


def web_community_graph(
    n: int,
    communities: int = 3,
    community_fraction: float = 0.15,
    intra_defect: float = 0.05,
    background_p: float = 0.02,
    seed: Optional[int] = None,
) -> Tuple[nx.Graph, List[PlantedStructure]]:
    """A multi-community workload ("tightly knit communities" of the intro).

    Plants *communities* disjoint near-cliques, each of size
    ``community_fraction · n`` and defect ``intra_defect``, in a sparse
    background — the web-graph / blog-burst scenario the paper's introduction
    motivates.  Returns the graph and one :class:`PlantedStructure` per
    community, ordered by decreasing size.
    """
    if communities < 1:
        raise ValueError("communities must be at least 1")
    if communities * community_fraction > 1.0 + 1e-9:
        raise ValueError("communities do not fit in the graph")
    rng = random.Random(seed)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))

    planted: List[PlantedStructure] = []
    cursor = 0
    for index in range(communities):
        # Later communities are slightly smaller so that there is a unique
        # largest one (useful for recall measurements).
        size = max(2, int(round(community_fraction * n)) - 2 * index)
        members = list(range(cursor, min(n, cursor + size)))
        cursor += size
        pairs = list(itertools.combinations(members, 2))
        graph.add_edges_from(pairs)
        rng.shuffle(pairs)
        for u, v in pairs[: int(intra_defect * len(pairs) * 0.999)]:
            graph.remove_edge(u, v)
        planted.append(
            PlantedStructure(members=frozenset(members), target_defect=intra_defect)
        )

    _background(graph, range(n), background_p, rng)
    planted.sort(key=lambda structure: -structure.size)
    return graph, planted


def adhoc_radio_network(
    n: int,
    area: float = 1.0,
    radio_range: float = 0.22,
    hotspot_fraction: float = 0.3,
    hotspot_radius: float = 0.12,
    seed: Optional[int] = None,
) -> Tuple[nx.Graph, Dict[int, Tuple[float, float]]]:
    """A unit-disk ad-hoc radio network with one dense hotspot.

    Motivated by the paper's radio ad-hoc conflict scenario: nodes are placed
    uniformly in a square of side *area*, except a *hotspot_fraction* of them
    which are clustered inside a disc of radius *hotspot_radius* (and hence
    form a near-clique under the unit-disk connectivity rule).  Two nodes are
    connected when their distance is at most *radio_range*.

    Returns the graph and the node positions (for plotting / debugging).
    """
    rng = random.Random(seed)
    positions: Dict[int, Tuple[float, float]] = {}
    hotspot_count = int(round(hotspot_fraction * n))
    center = (area * 0.3, area * 0.3)
    for node in range(n):
        if node < hotspot_count:
            angle = rng.uniform(0.0, 6.283185307179586)
            radius = hotspot_radius * rng.random() ** 0.5
            positions[node] = (
                center[0] + radius * _cos(angle),
                center[1] + radius * _sin(angle),
            )
        else:
            positions[node] = (rng.uniform(0, area), rng.uniform(0, area))

    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            du = positions[u][0] - positions[v][0]
            dv = positions[u][1] - positions[v][1]
            if du * du + dv * dv <= radio_range * radio_range:
                graph.add_edge(u, v)
    return graph, positions


def _cos(x: float) -> float:
    import math

    return math.cos(x)


def _sin(x: float) -> float:
    import math

    return math.sin(x)


def verify_promise(
    graph: nx.Graph, members: Sequence[int], epsilon: float
) -> bool:
    """Check that *members* really is an ε-near clique of *graph*.

    Generators call this in tests to certify that the produced workload
    satisfies the promise the algorithm is given.
    """
    return near_clique.is_near_clique(graph, members, epsilon)
