"""Reproduction of *Distributed Discovery of Large Near-Cliques*.

This package reproduces the system described by Brakerski and Patt-Shamir
(PODC 2009): a randomized distributed algorithm, running in the synchronous
CONGEST model, that discovers a large near-clique whenever the communication
graph contains an :math:`\\epsilon^3`-near clique of linear (or slightly
sub-linear) size.

The package is organised as follows:

``repro.congest``
    A synchronous CONGEST message-passing simulator: nodes, O(log n)-bit
    messages, rounds, congestion metrics, and an asynchronous
    (:math:`\\alpha`-synchronizer) execution mode.

``repro.primitives``
    Reusable distributed building blocks used by the algorithm: BFS spanning
    trees, broadcast, convergecast, leader election and pipelined aggregation.

``repro.core``
    The paper's contribution: near-clique mathematics (Definition 1,
    :math:`K_\\epsilon`, :math:`T_\\epsilon`), the ``DistNearClique``
    distributed algorithm, a centralized reference implementation, the
    success-probability boosting wrapper and parameter derivation.

``repro.baselines``
    The simple approaches of Section 3 (shingles, neighbours' neighbours) and
    the centralized dense-subgraph comparators from the related-work section.

``repro.proptest``
    The Goldreich–Goldwasser–Ron :math:`\\rho`-clique property tester the
    paper adapts, plus a tolerant-testing wrapper.

``repro.graphs``
    Graph generators (planted near-cliques, the Claim 1 counterexample family,
    the Section 6 impossibility graph) and verification utilities.

``repro.analysis``
    Theoretical bound calculators and the experiment harness that regenerates
    every experiment listed in DESIGN.md / EXPERIMENTS.md.

Quickstart
----------

>>> import random
>>> from repro import generators, DistNearCliqueRunner
>>> graph, planted = generators.planted_near_clique(
...     n=80, clique_fraction=0.5, epsilon=0.2 ** 3, background_p=0.05,
...     seed=7)
>>> runner = DistNearCliqueRunner(epsilon=0.2, sample_probability=0.05,
...                               rng=random.Random(7))
>>> result = runner.run(graph)
"""

from repro.core.boosting import BoostedNearCliqueRunner
from repro.core.dist_near_clique import DistNearCliqueRunner
from repro.core.near_clique import (
    density,
    is_near_clique,
    k_eps,
    near_clique_defect,
    t_eps,
)
from repro.core.params import AlgorithmParameters, recommended_sample_probability
from repro.core.reference import CentralizedNearCliqueFinder
from repro.core.result import NearCliqueResult
from repro.graphs import generators

__all__ = [
    "DistNearCliqueRunner",
    "BoostedNearCliqueRunner",
    "CentralizedNearCliqueFinder",
    "NearCliqueResult",
    "AlgorithmParameters",
    "recommended_sample_probability",
    "density",
    "is_near_clique",
    "near_clique_defect",
    "k_eps",
    "t_eps",
    "generators",
]

__version__ = "1.0.0"
