"""Property testing in the dense-graph model.

The paper's methodology is to adapt the Goldreich–Goldwasser–Ron (GGR)
ρ-clique property tester to the distributed setting (Section 1 and the
discussion of Section 6).  This package implements the centralized side of
that story:

* :mod:`repro.proptest.sampling` — the adjacency-query oracle with query
  accounting (the resource property testers are measured by);
* :mod:`repro.proptest.ggr_tester` — a ρ-clique tester in the GGR style plus
  the "approximate find" procedure that extracts an ε-near clique of size
  ρn when the tester accepts;
* :mod:`repro.proptest.tolerant` — the tolerant-testing wrapper
  ((ε₁, ε₂)-tolerance, Parnas–Ron–Rubinfeld), reproducing the paper's
  observation that its construction is (ε³, ε)-tolerant.
"""

from repro.proptest.ggr_tester import (
    ApproximateFindResult,
    GGRCliqueTester,
    TesterVerdict,
)
from repro.proptest.sampling import AdjacencyOracle
from repro.proptest.tolerant import TolerantNearCliqueTester

__all__ = [
    "AdjacencyOracle",
    "GGRCliqueTester",
    "TesterVerdict",
    "ApproximateFindResult",
    "TolerantNearCliqueTester",
]
