"""Tolerant testing of the near-clique property.

Parnas, Ron and Rubinfeld define an (ε₁, ε₂)-tolerant tester as one that
accepts inputs that are ε₁-close to the property and rejects inputs that are
ε₂-far from it.  For the ρ-clique property the paper observes:

* the general results of [19] make the GGR tester (ε⁶, ε)-tolerant;
* the paper's own construction (the ``K``/``T`` operators it turns into a
  distributed algorithm) is (ε³, ε)-tolerant — the gap its Theorem 2.1
  states: an ε³-near clique of size δn in, an O(ε/δ)-near clique out.

:class:`TolerantNearCliqueTester` exposes that gap as an explicit tester:
it accepts when the graph contains an ε₁-near clique of ρn vertices and
rejects when no ρn-vertex set is an ε₂-near clique, deciding by the sampled
``K``/``T`` construction (the same machinery as the full algorithm, driven
through the query oracle).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

import networkx as nx

from repro.congest.config import CongestConfig
from repro.core import near_clique
from repro.proptest.ggr_tester import GGRCliqueTester
from repro.proptest.sampling import AdjacencyOracle


@dataclass(frozen=True)
class TolerantVerdict:
    """Outcome of one tolerant-tester invocation."""

    accepted: bool
    queries: int
    found_members: FrozenSet[int]
    found_density: float
    found_fraction: float


class TolerantNearCliqueTester:
    """(ε₁, ε₂)-tolerant tester for "contains a ρn-vertex near-clique".

    Parameters
    ----------
    rho:
        Relative size of the near-clique the property asks for.
    epsilon_1:
        Closeness threshold: graphs containing an ε₁-near clique of size ρn
        should be accepted.  The paper's construction corresponds to
        ``epsilon_1 = ε³``.
    epsilon_2:
        Farness threshold: graphs in which no ρn-vertex set is an ε₂-near
        clique should be rejected.  Must exceed ``epsilon_1``.
    congest_engine:
        Execution engine used by :meth:`find_distributed` when the sampled
        decision is re-run as the paper's actual CONGEST algorithm
        (``"reference"``, ``"batched"``, ``"async"`` or ``"sharded"``; see
        :mod:`repro.congest.engine`).  ``None`` keeps the simulator
        default.
    congest_config:
        Optional :class:`repro.congest.config.CongestConfig` for
        :meth:`find_distributed` — the way to reach engine-specific knobs
        such as ``shards`` / ``shard_workers`` and ``session_mode``
        (:meth:`find_distributed` runs the full pipeline inside one
        execution session, so ``session_mode="persistent"`` amortises the
        process backend's worker-pool/shared-memory setup across the ~14
        phases; the session's accounting is exposed afterwards as
        :attr:`last_session_stats`).  ``congest_engine`` (when given)
        still overrides the configuration's engine field.
    """

    def __init__(
        self,
        rho: float,
        epsilon_1: float,
        epsilon_2: float,
        rng: Optional[random.Random] = None,
        primary_sample_cap: int = 14,
        congest_engine: Optional[str] = None,
        congest_config: Optional[CongestConfig] = None,
    ) -> None:
        if not 0 < rho <= 1:
            raise ValueError("rho must lie in (0, 1]")
        if not 0 <= epsilon_1 < epsilon_2 < 1:
            raise ValueError("need 0 <= epsilon_1 < epsilon_2 < 1")
        self.rho = rho
        self.epsilon_1 = epsilon_1
        self.epsilon_2 = epsilon_2
        self.rng = rng or random.Random()
        self.primary_sample_cap = primary_sample_cap
        self.congest_engine = congest_engine
        self.congest_config = congest_config
        #: Execution-session accounting of the last :meth:`find_distributed`
        #: run (``None`` unless the session collected any — see
        #: :class:`repro.congest.sharding.ShardingStats`).
        self.last_session_stats = None

    @property
    def working_epsilon(self) -> float:
        """The ε at which the K/T machinery is evaluated.

        The construction is (ε³, ε)-tolerant, so given (ε₁, ε₂) we work at
        ε = ε₂ and require ε₁ ≤ ε₂³ for the formal guarantee; looser gaps
        still work empirically and are exercised by the experiments.
        """
        return self.epsilon_2

    # ------------------------------------------------------------------
    def test(self, graph: nx.Graph) -> TolerantVerdict:
        """Run the tolerant tester once."""
        eps = self.working_epsilon
        n = graph.number_of_nodes()
        if n == 0:
            return TolerantVerdict(False, 0, frozenset(), 0.0, 0.0)

        oracle = AdjacencyOracle(graph)
        m1 = int(math.ceil(2.0 * math.log(4.0 / eps) / (eps * eps)))
        m1 = max(4, min(self.primary_sample_cap, m1, n))
        primary = near_clique.canonical_members(oracle.sample_vertices(m1, self.rng))

        masks = {}
        for v in oracle.nodes:
            masks[v] = near_clique.neighbor_mask(
                primary, [u for u in primary if oracle.is_edge(v, u)]
            )

        inner_eps = 2.0 * eps * eps
        target = self.rho * n
        best: Tuple[int, float, FrozenSet[int]] = (0, 0.0, frozenset())
        accepted = False
        adjacency = near_clique.adjacency_sets(graph)
        for index in near_clique.iter_nonempty_subset_indices(len(primary)):
            subset_size = near_clique.popcount(index)
            k_set = {
                v
                for v in oracle.nodes
                if near_clique.meets_fraction(
                    near_clique.popcount(masks[v] & index), subset_size, inner_eps
                )
            }
            if len(k_set) < (self.rho - eps) * n:
                continue
            k_size = len(k_set)
            t_set = {
                v
                for v in k_set
                if near_clique.meets_fraction(len(adjacency[v] & k_set), k_size, eps)
            }
            density = near_clique.density(adjacency, t_set)
            if len(t_set) > best[0]:
                best = (len(t_set), density, frozenset(t_set))
            # Accept when the extracted set has (1 − O(ε)) of the promised
            # size and its defect respects the O(ε/ρ) output guarantee (the
            # density clause is clipped so it never becomes vacuous).
            size_ok = len(t_set) >= (1.0 - 2.0 * eps) * target
            density_ok = density >= 1.0 - min(0.45, 2.0 * eps / max(self.rho, 1e-9))
            if size_ok and density_ok:
                accepted = True
                best = (len(t_set), density, frozenset(t_set))
                break

        return TolerantVerdict(
            accepted=accepted,
            queries=oracle.queries,
            found_members=best[2],
            found_density=best[1],
            found_fraction=best[0] / float(n),
        )

    # ------------------------------------------------------------------
    def find_distributed(
        self,
        graph: nx.Graph,
        sample_probability: Optional[float] = None,
        max_sample_size: Optional[int] = 18,
    ):
        """Extract a near-clique with the paper's CONGEST algorithm itself.

        The tester decides from adjacency queries; this companion runs the
        full distributed ``DistNearClique`` on the same graph — the paper's
        point being that its construction *is* a distributed implementation
        of the tester.  The CONGEST simulation is executed under
        :attr:`congest_engine`, so large accept-side instances can use the
        batched fast path — or demonstrate the Section 2 claim end to end
        over asynchronous links with ``"async"`` — without changing the
        verdict (engines are bit-identical by contract).

        Returns the :class:`repro.core.result.NearCliqueResult` of one run.
        """
        # Imported here: repro.core.dist_near_clique must stay importable
        # without the proptest package (and vice versa).
        from repro.core.dist_near_clique import DistNearCliqueRunner

        n = max(1, graph.number_of_nodes())
        if sample_probability is None:
            sample_probability = min(1.0, 8.0 / n)
        runner = DistNearCliqueRunner(
            epsilon=self.working_epsilon,
            sample_probability=sample_probability,
            max_sample_size=max_sample_size,
            rng=random.Random(self.rng.getrandbits(48)),
            config=self.congest_config,
            engine=self.congest_engine,
        )
        result = runner.run(graph)
        self.last_session_stats = runner.last_session_stats
        return result

    # ------------------------------------------------------------------
    def test_with_confidence(self, graph: nx.Graph, repetitions: int = 3) -> TolerantVerdict:
        """Accept if any repetition accepts (one-sided error reduction)."""
        total_queries = 0
        best: Optional[TolerantVerdict] = None
        for _ in range(max(1, repetitions)):
            verdict = self.test(graph)
            total_queries += verdict.queries
            if best is None or (verdict.found_fraction, verdict.found_density) > (
                best.found_fraction,
                best.found_density,
            ):
                best = verdict
            if verdict.accepted:
                return TolerantVerdict(
                    accepted=True,
                    queries=total_queries,
                    found_members=verdict.found_members,
                    found_density=verdict.found_density,
                    found_fraction=verdict.found_fraction,
                )
        assert best is not None
        return TolerantVerdict(
            accepted=False,
            queries=total_queries,
            found_members=best.found_members,
            found_density=best.found_density,
            found_fraction=best.found_fraction,
        )


def ggr_tolerance_of(epsilon: float) -> Tuple[float, float]:
    """The (ε⁶, ε) tolerance the paper attributes to the GGR tester."""
    return (epsilon ** 6, epsilon)


def paper_tolerance_of(epsilon: float) -> Tuple[float, float]:
    """The (ε³, ε) tolerance of the paper's construction."""
    return (epsilon ** 3, epsilon)


__all__ = [
    "TolerantNearCliqueTester",
    "TolerantVerdict",
    "ggr_tolerance_of",
    "paper_tolerance_of",
    "GGRCliqueTester",
]
