"""A ρ-clique property tester in the Goldreich–Goldwasser–Ron style.

The tester decides, with constant error probability and a number of
adjacency queries that depends only on ε and ρ (never on n), between

* the graph contains a ρ-clique (more tolerantly: a very dense set of ρn
  vertices), and
* no set of ρn vertices is an ε-near clique,

and — when it accepts — can additionally *find* an ε-near clique of size
≈ ρn using O(n) further work ("approximate find", as described in the
paper's related-work section).

Construction
------------
This is the same two-sample scheme the paper adapts (and that underlies its
``K``/``T`` operators):

1. draw a primary sample ``X`` of ``m₁ = O(log(1/ε)/ε²)`` vertices;
2. draw a secondary sample ``W`` of ``m₂ = O(log(1/ε)/ε⁴)`` vertices;
3. for every subset ``X' ⊆ X`` of at least ``(ρ − ε/4)·m₁`` vertices, look at
   the vertices of ``W`` that are adjacent to all but a ``2ε²`` fraction of
   ``X'`` (the sampled analogue of ``K_{2ε²}(X')``); accept if for some
   ``X'`` this witness set contains at least ``(ρ − ε/2)`` fraction of ``W``
   and its sampled pair-density is at least ``1 − ε/2``.

The query complexity is ``O(m₁·m₂ + m₂·pairs)`` = poly(1/ε), matching the
paper's "Õ(1/ε⁶) queries" regime in shape; the *time* is exponential in
``m₁`` (subsets are enumerated), which is a property of the original GGR
tester as well — testers in the dense model are query-efficient, not
time-efficient.  The constants below were chosen so that the tester is
reliable at the graph sizes used by experiment E11 while keeping the subset
enumeration tractable; they are implementation choices, not the paper's.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.core import near_clique
from repro.proptest.sampling import AdjacencyOracle


@dataclass(frozen=True)
class TesterVerdict:
    """Outcome of one tester invocation."""

    accepted: bool
    queries: int
    witness_subset: FrozenSet[int]
    witness_fraction: float
    witness_density: float


@dataclass(frozen=True)
class ApproximateFindResult:
    """Outcome of the approximate-find procedure."""

    members: FrozenSet[int]
    density: float
    queries: int


class GGRCliqueTester:
    """ρ-clique tester with poly(1/ε) query complexity.

    Parameters
    ----------
    rho:
        Target relative clique size (the property is "G has a clique of size
        ρn").
    epsilon:
        Distance parameter of the tester.
    primary_sample_cap:
        Upper bound on ``m₁`` (the subset-enumerated sample) so that the
        2^{m₁} local enumeration stays tractable; 14 by default.
    rng:
        Randomness source.
    """

    def __init__(
        self,
        rho: float,
        epsilon: float,
        primary_sample_cap: int = 14,
        density_pairs: int = 400,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0 < rho <= 1:
            raise ValueError("rho must lie in (0, 1]")
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must lie in (0, 1)")
        self.rho = rho
        self.epsilon = epsilon
        self.primary_sample_cap = primary_sample_cap
        self.density_pairs = density_pairs
        self.rng = rng or random.Random()

    # ------------------------------------------------------------------
    def sample_sizes(self, n: int) -> Tuple[int, int]:
        """(m₁, m₂): primary and secondary sample sizes for an n-vertex graph."""
        eps = self.epsilon
        m1 = int(math.ceil(2.0 * math.log(4.0 / eps) / (eps * eps)))
        m1 = max(4, min(self.primary_sample_cap, m1, n))
        m2 = int(math.ceil(4.0 * math.log(4.0 / eps) / (eps ** 3)))
        m2 = max(8, min(m2, n))
        return m1, m2

    # ------------------------------------------------------------------
    def test(self, graph: nx.Graph) -> TesterVerdict:
        """Run the tester once and return its verdict."""
        oracle = AdjacencyOracle(graph)
        n = oracle.n
        if n == 0:
            return TesterVerdict(False, 0, frozenset(), 0.0, 0.0)
        m1, m2 = self.sample_sizes(n)
        eps = self.epsilon
        rho = self.rho

        primary = oracle.sample_vertices(m1, self.rng)
        secondary = oracle.sample_vertices(m2, self.rng)

        # Adjacency of every secondary vertex into the primary sample, via
        # individual queries (m1 * m2 of them).
        masks = {}
        members = near_clique.canonical_members(primary)
        for w in secondary:
            masks[w] = near_clique.neighbor_mask(
                members, [u for u in members if oracle.is_edge(w, u)]
            )

        inner_eps = 2.0 * eps * eps
        min_subset = max(1, int(math.floor((rho - eps / 4.0) * len(members))))
        best: Tuple[float, float, FrozenSet[int]] = (0.0, 0.0, frozenset())
        accepted = False
        for index in near_clique.iter_nonempty_subset_indices(len(members)):
            subset_size = near_clique.popcount(index)
            if subset_size < min_subset:
                continue
            witness = [
                w
                for w in secondary
                if near_clique.meets_fraction(
                    near_clique.popcount(masks[w] & index), subset_size, inner_eps
                )
            ]
            fraction = len(witness) / float(len(secondary))
            if fraction < rho - eps / 2.0:
                continue
            density = oracle.pair_density(witness, self.rng, self.density_pairs)
            if (fraction, density) > (best[0], best[1]):
                best = (
                    fraction,
                    density,
                    near_clique.subset_from_index(members, index),
                )
            if density >= 1.0 - eps / 2.0:
                accepted = True
                best = (fraction, density, near_clique.subset_from_index(members, index))
                break

        return TesterVerdict(
            accepted=accepted,
            queries=oracle.queries,
            witness_subset=best[2],
            witness_fraction=best[0],
            witness_density=best[1],
        )

    # ------------------------------------------------------------------
    def approximate_find(
        self, graph: nx.Graph, witness_subset: Sequence[int]
    ) -> ApproximateFindResult:
        """Extract an ε-near clique of size ≈ ρn from an accepting witness.

        This is the O(n)-work "approximate find" companion: evaluate the
        paper's ``T_ε`` operator on the witness subset over the whole vertex
        set (O(n·|X'|) adjacency queries plus one densification pass), and
        return the resulting set.
        """
        oracle = AdjacencyOracle(graph)
        witness = list(witness_subset)
        if not witness:
            return ApproximateFindResult(frozenset(), 0.0, 0)
        eps = self.epsilon
        inner_eps = 2.0 * eps * eps

        k_set = [
            v
            for v in oracle.nodes
            if near_clique.meets_fraction(
                oracle.degree_into(v, witness), len(witness), inner_eps
            )
        ]
        k_frozen = set(k_set)
        t_set = [
            v
            for v in k_set
            if near_clique.meets_fraction(
                oracle.degree_into(v, k_set), len(k_set), eps
            )
        ]
        del k_frozen
        density = near_clique.density(graph, t_set)
        return ApproximateFindResult(
            members=frozenset(t_set), density=density, queries=oracle.queries
        )

    # ------------------------------------------------------------------
    def test_with_confidence(
        self, graph: nx.Graph, repetitions: int = 3
    ) -> TesterVerdict:
        """Majority vote over independent repetitions (error reduction)."""
        verdicts = [self.test(graph) for _ in range(max(1, repetitions))]
        accepts = [v for v in verdicts if v.accepted]
        queries = sum(v.queries for v in verdicts)
        majority = len(accepts) * 2 > len(verdicts)
        exemplar = max(
            accepts if majority and accepts else verdicts,
            key=lambda v: (v.witness_fraction, v.witness_density),
        )
        return TesterVerdict(
            accepted=majority,
            queries=queries,
            witness_subset=exemplar.witness_subset,
            witness_fraction=exemplar.witness_fraction,
            witness_density=exemplar.witness_density,
        )
