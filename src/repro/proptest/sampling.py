"""Adjacency-query oracle for the dense-graph property-testing model.

In the dense-graph model the basic action of a tester is to ask "is the pair
(u, v) an edge?".  Complexity is measured in the number of such queries; the
:class:`AdjacencyOracle` wraps a graph, answers queries, and counts them
(deduplicating repeats, since a sensible tester caches answers).
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

import networkx as nx


class AdjacencyOracle:
    """Query-counting adjacency oracle over a fixed graph."""

    def __init__(self, graph: nx.Graph) -> None:
        self._graph = graph
        self._nodes = sorted(graph.nodes())
        self._asked: Set[Tuple[int, int]] = set()
        self.queries = 0

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices of the underlying graph."""
        return len(self._nodes)

    @property
    def nodes(self) -> List[int]:
        return list(self._nodes)

    def is_edge(self, u: int, v: int) -> bool:
        """Answer one adjacency query (repeat queries are not re-charged)."""
        if u == v:
            return False
        key = (u, v) if u < v else (v, u)
        if key not in self._asked:
            self._asked.add(key)
            self.queries += 1
        return self._graph.has_edge(u, v)

    def degree_into(self, v: int, targets: Iterable[int]) -> int:
        """``|Γ(v) ∩ targets|`` via individual queries."""
        return sum(1 for u in targets if u != v and self.is_edge(v, u))

    # ------------------------------------------------------------------
    def sample_vertices(
        self, count: int, rng: random.Random, replace: bool = False
    ) -> List[int]:
        """A uniform vertex sample (without replacement unless asked)."""
        if count <= 0:
            return []
        if replace or count > len(self._nodes):
            return [rng.choice(self._nodes) for _ in range(count)]
        return rng.sample(self._nodes, count)

    def pair_density(self, members: Sequence[int], rng: random.Random, pairs: int) -> float:
        """Estimate the Definition 1 density of *members* from random pairs."""
        members = list(members)
        if len(members) <= 1:
            return 1.0
        hits = 0
        for _ in range(max(1, pairs)):
            u, v = rng.sample(members, 2)
            if self.is_edge(u, v):
                hits += 1
        return hits / float(max(1, pairs))

    def exact_density(self, members: Iterable[int]) -> float:
        """Exact Definition 1 density (charges one query per unordered pair)."""
        members = sorted(set(members))
        size = len(members)
        if size <= 1:
            return 1.0
        present = 0
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                if self.is_edge(u, v):
                    present += 1
        return 2.0 * present / float(size * (size - 1))
