"""Convergecast primitives: aggregating information up a spanning tree.

Two flavours are needed by ``DistNearClique``:

* :class:`ConvergecastCollectProtocol` — every participant's identifier is
  collected at the root of its tree (exploration Step 2 of the paper, before
  the root sends the component membership back down).  Identifiers are
  pipelined one per round per edge, so the round complexity is
  O(|component| + depth), matching the pipelining argument in the proof of
  Lemma 5.1.

* :class:`ConvergecastSumProtocol` — every participant holds a dictionary of
  per-key integer counters; the sums over each tree are computed at the root
  (exploration Step 4c and decision Step 1, where the keys are subset
  indices and the counters are memberships in :math:`K_{2\\epsilon^2}(X)` or
  :math:`T_\\epsilon(X)`).  A node forwards its partial sums only after all
  its children have reported, and streams one ``(key, partial sum)`` pair per
  round.

Both protocols require the tree structure produced by
:class:`repro.primitives.bfs_tree.MinIdBFSTreeProtocol` followed by
:class:`repro.primitives.bfs_tree.ParentNotificationProtocol`, and must be
run with ``reuse_contexts=True`` so that they can read it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.congest.message import Inbound, Message, id_bits_for, KIND_TAG_BITS
from repro.congest.node import NodeContext, Protocol
from repro.congest.pipeline import (
    ARTIFACT_BFS_TREE,
    ARTIFACT_COMPONENT_MAP,
    ARTIFACT_TREE_CHILDREN,
    PhaseEffects,
)
from repro.primitives.bfs_tree import (
    KEY_CHILDREN,
    KEY_PARENT,
    KEY_PARTICIPANT,
    KEY_ROOT,
)
from repro.primitives.pipelines import Outbox

_ID_ITEM = "cc.id"
_ID_DONE = "cc.id_done"
_SUM_ITEM = "cc.sum"
_SUM_DONE = "cc.sum_done"

#: State key holding the identifiers collected at a root.
KEY_COLLECTED = "cc_collected"
#: State key holding the per-key sums computed at a root.
KEY_SUMS = "cc_sums"
#: Input state key for :class:`ConvergecastSumProtocol` (per-node counters).
KEY_LOCAL_COUNTERS = "cc_local_counters"


def _id_message(node_id: int, n: int) -> Message:
    return Message(
        kind=_ID_ITEM,
        payload=(node_id,),
        bits=KIND_TAG_BITS + id_bits_for(n),
    )


def _sum_message(key: int, value: int, n: int) -> Message:
    # A key is a subset index (at most |S_i| bits); a value is a counter
    # bounded by n.  Both are polynomially bounded, hence O(log n) bits for
    # the parameter regimes of the paper.
    key_bits = max(1, int(key).bit_length())
    return Message(
        kind=_SUM_ITEM,
        payload=(key, value),
        bits=KIND_TAG_BITS + key_bits + id_bits_for(max(n, value + 1)),
    )


class ConvergecastCollectProtocol(Protocol):
    """Collect all participant identifiers of each tree at its root."""

    name = "convergecast-collect"
    quiesce_terminates = True

    def __init__(self, participant_key: str = KEY_PARTICIPANT) -> None:
        self.participant_key = participant_key

    def _participates(self, ctx: NodeContext) -> bool:
        return bool(ctx.state.get(self.participant_key))

    def effects(self) -> PhaseEffects:
        return PhaseEffects(
            reads=(
                self.participant_key,
                KEY_PARENT,
                KEY_CHILDREN,
                KEY_COLLECTED,
                "_cc_waiting_children",
                "_cc_seen",
                "_cc_done_sent",
                Outbox.STATE_KEY,
            ),
            writes=(
                KEY_COLLECTED,
                "_cc_waiting_children",
                "_cc_seen",
                "_cc_done_sent",
                Outbox.STATE_KEY,
            ),
            consumes=(ARTIFACT_BFS_TREE, ARTIFACT_TREE_CHILDREN),
            produces=(ARTIFACT_COMPONENT_MAP,),
        )

    def on_start(self, ctx: NodeContext) -> None:
        if not self._participates(ctx):
            ctx.halt()
            return
        children = ctx.state.get(KEY_CHILDREN, [])
        ctx.state["_cc_waiting_children"] = set(children)
        ctx.state["_cc_seen"] = {ctx.node_id}
        ctx.state["_cc_done_sent"] = False
        ctx.state[KEY_COLLECTED] = [ctx.node_id]
        parent = ctx.state.get(KEY_PARENT)
        outbox = Outbox.for_ctx(ctx)
        if parent is not None:
            outbox.push(parent, _id_message(ctx.node_id, ctx.n))

    def on_round(self, ctx: NodeContext, inbox: List[Inbound]) -> None:
        if not self._participates(ctx):
            return
        parent = ctx.state.get(KEY_PARENT)
        outbox = Outbox.for_ctx(ctx)
        seen = ctx.state["_cc_seen"]
        waiting = ctx.state["_cc_waiting_children"]

        for inbound in inbox:
            if inbound.kind == _ID_ITEM:
                (node_id,) = inbound.payload
                if node_id not in seen:
                    seen.add(node_id)
                    ctx.state[KEY_COLLECTED].append(node_id)
                    if parent is not None:
                        outbox.push(parent, _id_message(node_id, ctx.n))
            elif inbound.kind == _ID_DONE:
                waiting.discard(inbound.sender)

        done_sent = ctx.state["_cc_done_sent"]
        if parent is not None and not done_sent and not waiting and outbox.pending_for(parent) == 0:
            outbox.push(parent, Message(kind=_ID_DONE, payload=None, bits=KIND_TAG_BITS + 1))
            ctx.state["_cc_done_sent"] = True
        outbox.flush()
        ctx.state[KEY_COLLECTED].sort()

    def collect_output(self, ctx: NodeContext) -> Optional[List[int]]:
        if not self._participates(ctx):
            return None
        if ctx.state.get(KEY_PARENT) is None:
            return sorted(ctx.state["_cc_seen"])
        return None


class ConvergecastSumProtocol(Protocol):
    """Sum per-key integer counters over each tree at its root.

    Every participant must have ``ctx.state[KEY_LOCAL_COUNTERS]`` set to a
    ``dict`` mapping integer keys to integer counts before the protocol
    starts (an absent entry is treated as an empty dictionary).  On
    termination the root of every tree holds the component-wide sums in
    ``ctx.state[KEY_SUMS]``.
    """

    name = "convergecast-sum"
    quiesce_terminates = True

    def __init__(
        self,
        participant_key: str = KEY_PARTICIPANT,
        counters_key: str = KEY_LOCAL_COUNTERS,
        sums_key: str = KEY_SUMS,
    ) -> None:
        self.participant_key = participant_key
        self.counters_key = counters_key
        self.sums_key = sums_key

    def _participates(self, ctx: NodeContext) -> bool:
        return bool(ctx.state.get(self.participant_key))

    def effects(self) -> PhaseEffects:
        return PhaseEffects(
            reads=(
                self.participant_key,
                self.counters_key,
                self.sums_key,
                KEY_PARENT,
                KEY_CHILDREN,
                "_cs_sums",
                "_cs_waiting",
                "_cs_flushed",
                Outbox.STATE_KEY,
            ),
            writes=(
                self.sums_key,
                "_cs_sums",
                "_cs_waiting",
                "_cs_flushed",
                Outbox.STATE_KEY,
            ),
            consumes=(ARTIFACT_BFS_TREE, ARTIFACT_TREE_CHILDREN),
        )

    def on_start(self, ctx: NodeContext) -> None:
        if not self._participates(ctx):
            ctx.halt()
            return
        local = dict(ctx.state.get(self.counters_key, {}))
        children = ctx.state.get(KEY_CHILDREN, [])
        ctx.state["_cs_sums"] = local
        ctx.state["_cs_waiting"] = set(children)
        ctx.state["_cs_flushed"] = False
        ctx.state[self.sums_key] = None

    def on_round(self, ctx: NodeContext, inbox: List[Inbound]) -> None:
        if not self._participates(ctx):
            return
        parent = ctx.state.get(KEY_PARENT)
        outbox = Outbox.for_ctx(ctx)
        sums: Dict[int, int] = ctx.state["_cs_sums"]
        waiting = ctx.state["_cs_waiting"]

        for inbound in inbox:
            if inbound.kind == _SUM_ITEM:
                key, value = inbound.payload
                sums[key] = sums.get(key, 0) + value
            elif inbound.kind == _SUM_DONE:
                waiting.discard(inbound.sender)

        if not waiting and not ctx.state["_cs_flushed"]:
            ctx.state["_cs_flushed"] = True
            if parent is None:
                ctx.state[self.sums_key] = dict(sums)
            else:
                for key in sorted(sums):
                    outbox.push(parent, _sum_message(key, sums[key], ctx.n))
                outbox.push(
                    parent,
                    Message(kind=_SUM_DONE, payload=None, bits=KIND_TAG_BITS + 1),
                )
        if parent is None and ctx.state["_cs_flushed"]:
            # Late contributions cannot arrive once every child reported, but
            # keep the root's published view current for observability.
            ctx.state[self.sums_key] = dict(sums)
        outbox.flush()

    def collect_output(self, ctx: NodeContext) -> Optional[Dict[int, int]]:
        if not self._participates(ctx):
            return None
        if ctx.state.get(KEY_PARENT) is None:
            published = ctx.state.get(self.sums_key)
            return dict(published) if published is not None else dict(ctx.state["_cs_sums"])
        return None
