"""Reusable distributed building blocks.

The exploration and decision stages of ``DistNearClique`` (Section 4 of the
paper) are built from a small number of classic CONGEST primitives:

* rooted BFS spanning-tree construction per connected component, rooted at
  the component's minimum identifier (exploration Step 1);
* learning one's children in the tree (needed for convergecast);
* convergecast — collecting identifiers, or summing per-key counters, up the
  tree with pipelining (exploration Steps 2 and 4c, decision Step 1);
* broadcast — streaming a list of values down the tree (exploration Steps 2
  and 4d, decision Steps 2 and 4);
* min-identifier flooding (leader election), used on its own by tests and by
  the shingles baseline analysis.

All primitives operate on an arbitrary subset of *participant* nodes (the
sampled set S in the paper); non-participants halt immediately and the
primitive behaves as if it were run on the induced subgraph G[S].  Because a
node of S belongs to exactly one connected component of G[S], a single run of
each primitive simultaneously serves every component.
"""

from repro.primitives.bfs_tree import (
    BFSTreeOutput,
    MinIdBFSTreeProtocol,
    ParentNotificationProtocol,
)
from repro.primitives.broadcast import TreeBroadcastProtocol
from repro.primitives.convergecast import (
    ConvergecastCollectProtocol,
    ConvergecastSumProtocol,
)
from repro.primitives.leader_election import MinIdFloodingProtocol
from repro.primitives.pipelines import Outbox

__all__ = [
    "BFSTreeOutput",
    "MinIdBFSTreeProtocol",
    "ParentNotificationProtocol",
    "TreeBroadcastProtocol",
    "ConvergecastCollectProtocol",
    "ConvergecastSumProtocol",
    "MinIdFloodingProtocol",
    "Outbox",
]
