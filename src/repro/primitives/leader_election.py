"""Minimum-identifier flooding (leader election).

A classic CONGEST primitive: every participant repeatedly forwards the
smallest identifier it has heard of; after at most diameter rounds every node
in a connected participant component agrees on the component's minimum
identifier.  ``DistNearClique`` roots its BFS trees at this minimum
identifier (the flooding is folded into
:class:`repro.primitives.bfs_tree.MinIdBFSTreeProtocol`); the standalone
protocol here is used by tests, by the shingles-baseline analysis, and as a
simple first example of the simulator API.
"""

from __future__ import annotations

from typing import List, Optional

from repro.congest.message import Inbound, Message, id_bits_for, KIND_TAG_BITS
from repro.congest.node import NodeContext, Protocol
from repro.primitives.bfs_tree import KEY_PARTICIPANT

_CANDIDATE = "le.candidate"

#: State key holding the elected leader (per participant).
KEY_LEADER = "leader"


def _candidate_message(leader: int, n: int) -> Message:
    return Message(
        kind=_CANDIDATE,
        payload=(leader,),
        bits=KIND_TAG_BITS + id_bits_for(n),
    )


class MinIdFloodingProtocol(Protocol):
    """Elect the minimum identifier of each connected participant component."""

    name = "min-id-flooding"
    quiesce_terminates = True

    def __init__(self, participant_key: str = KEY_PARTICIPANT) -> None:
        self.participant_key = participant_key

    def _participates(self, ctx: NodeContext) -> bool:
        return bool(ctx.state.get(self.participant_key))

    def on_start(self, ctx: NodeContext) -> None:
        if not self._participates(ctx):
            ctx.halt()
            return
        ctx.state[KEY_LEADER] = ctx.node_id
        ctx.send_all(_candidate_message(ctx.node_id, ctx.n))

    def on_round(self, ctx: NodeContext, inbox: List[Inbound]) -> None:
        if not self._participates(ctx):
            return
        best = ctx.state[KEY_LEADER]
        improved = False
        for inbound in inbox:
            if inbound.kind != _CANDIDATE:
                continue
            (candidate,) = inbound.payload
            if candidate < best:
                best = candidate
                improved = True
        if improved:
            ctx.state[KEY_LEADER] = best
            ctx.send_all(_candidate_message(best, ctx.n))

    def collect_output(self, ctx: NodeContext) -> Optional[int]:
        if not self._participates(ctx):
            return None
        return ctx.state.get(KEY_LEADER)
