"""BFS spanning-tree construction rooted at the minimum identifier.

Exploration Step 1 of ``DistNearClique`` constructs, for every connected
component of the sampled subgraph G[S], a BFS spanning tree rooted at the
component's smallest identifier.  This module provides that construction for
an arbitrary participant set:

* :class:`MinIdBFSTreeProtocol` — flooding of ``(root candidate, distance)``
  offers; on termination every participant knows its component's root (which
  doubles as the component identifier), its parent pointer and its depth.
* :class:`ParentNotificationProtocol` — a follow-up protocol in which every
  non-root participant informs its parent, so that parents learn their
  children (needed for convergecast).

Both protocols use O(log n)-bit messages (an identifier plus a distance
counter) and terminate by network quiescence; the flooding stabilises after
at most diameter-of-component rounds, which is bounded by |S| as used in the
proof of Lemma 5.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.congest.message import Inbound, Message, id_bits_for, KIND_TAG_BITS
from repro.congest.node import NodeContext, Protocol
from repro.congest.pipeline import (
    ARTIFACT_BFS_TREE,
    ARTIFACT_LEADER,
    ARTIFACT_TREE_CHILDREN,
    PhaseEffects,
)

#: State keys written by the protocols in this module.
KEY_PARTICIPANT = "participant"
KEY_ROOT = "tree_root"
KEY_PARENT = "tree_parent"
KEY_DEPTH = "tree_depth"
KEY_CHILDREN = "tree_children"

_OFFER = "bfs.offer"
_CHILD = "bfs.child"


@dataclass(frozen=True)
class BFSTreeOutput:
    """Per-node result of the BFS tree construction."""

    root: int
    parent: Optional[int]
    depth: int

    @property
    def is_root(self) -> bool:
        return self.parent is None


def _offer_message(root: int, depth: int, n: int) -> Message:
    """An offer carries one identifier and one distance counter."""
    return Message(
        kind=_OFFER,
        payload=(root, depth),
        bits=KIND_TAG_BITS + 2 * id_bits_for(n),
    )


class MinIdBFSTreeProtocol(Protocol):
    """Build a min-ID-rooted BFS tree in every participant component.

    Participation is read from ``ctx.state[participant_key]`` (missing or
    falsy means the node does not participate).  Non-participants halt
    immediately and ignore all traffic, so the protocol behaves exactly as if
    it were executed on the induced subgraph G[S].
    """

    name = "min-id-bfs-tree"
    quiesce_terminates = True

    def __init__(self, participant_key: str = KEY_PARTICIPANT) -> None:
        self.participant_key = participant_key

    # ------------------------------------------------------------------
    def _participates(self, ctx: NodeContext) -> bool:
        return bool(ctx.state.get(self.participant_key))

    def effects(self) -> PhaseEffects:
        return PhaseEffects(
            reads=(self.participant_key, KEY_ROOT, KEY_PARENT, KEY_DEPTH),
            writes=(KEY_ROOT, KEY_PARENT, KEY_DEPTH),
            produces=(ARTIFACT_BFS_TREE, ARTIFACT_LEADER),
        )

    def on_start(self, ctx: NodeContext) -> None:
        if not self._participates(ctx):
            ctx.halt()
            return
        ctx.state[KEY_ROOT] = ctx.node_id
        ctx.state[KEY_PARENT] = None
        ctx.state[KEY_DEPTH] = 0
        ctx.send_all(_offer_message(ctx.node_id, 0, ctx.n))

    def on_round(self, ctx: NodeContext, inbox: List[Inbound]) -> None:
        if not self._participates(ctx):
            return
        best_root = ctx.state[KEY_ROOT]
        best_depth = ctx.state[KEY_DEPTH]
        best_parent = ctx.state[KEY_PARENT]
        changed = False
        for inbound in inbox:
            if inbound.kind != _OFFER:
                continue
            offered_root, offered_depth = inbound.payload
            candidate_depth = offered_depth + 1
            better_root = offered_root < best_root
            shorter_path = offered_root == best_root and candidate_depth < best_depth
            if better_root or shorter_path:
                best_root = offered_root
                best_depth = candidate_depth
                best_parent = inbound.sender
                changed = True
        if changed:
            ctx.state[KEY_ROOT] = best_root
            ctx.state[KEY_DEPTH] = best_depth
            ctx.state[KEY_PARENT] = best_parent
            ctx.send_all(_offer_message(best_root, best_depth, ctx.n))

    def collect_output(self, ctx: NodeContext) -> Optional[BFSTreeOutput]:
        if not self._participates(ctx):
            return None
        return BFSTreeOutput(
            root=ctx.state[KEY_ROOT],
            parent=ctx.state[KEY_PARENT],
            depth=ctx.state[KEY_DEPTH],
        )


class ParentNotificationProtocol(Protocol):
    """Let every tree parent learn the identities of its children.

    Must run after :class:`MinIdBFSTreeProtocol` on the same contexts
    (``reuse_contexts=True``): it reads the parent pointers written by the
    tree construction and writes ``ctx.state["tree_children"]``.
    """

    name = "bfs-parent-notification"
    quiesce_terminates = True

    def __init__(self, participant_key: str = KEY_PARTICIPANT) -> None:
        self.participant_key = participant_key

    def _participates(self, ctx: NodeContext) -> bool:
        return bool(ctx.state.get(self.participant_key))

    def effects(self) -> PhaseEffects:
        return PhaseEffects(
            reads=(self.participant_key, KEY_PARENT, KEY_CHILDREN),
            writes=(KEY_CHILDREN,),
            consumes=(ARTIFACT_BFS_TREE,),
            produces=(ARTIFACT_TREE_CHILDREN,),
        )

    def on_start(self, ctx: NodeContext) -> None:
        if not self._participates(ctx):
            ctx.halt()
            return
        ctx.state[KEY_CHILDREN] = []
        parent = ctx.state.get(KEY_PARENT)
        if parent is not None:
            ctx.send(
                parent,
                Message(
                    kind=_CHILD,
                    payload=(ctx.node_id,),
                    bits=KIND_TAG_BITS + id_bits_for(ctx.n),
                ),
            )

    def on_round(self, ctx: NodeContext, inbox: List[Inbound]) -> None:
        if not self._participates(ctx):
            return
        for inbound in inbox:
            if inbound.kind == _CHILD:
                ctx.state[KEY_CHILDREN].append(inbound.sender)
        ctx.state[KEY_CHILDREN].sort()

    def collect_output(self, ctx: NodeContext) -> Optional[List[int]]:
        if not self._participates(ctx):
            return None
        return list(ctx.state.get(KEY_CHILDREN, []))
