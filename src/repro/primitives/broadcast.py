"""Tree broadcast: streaming a list of values from each root to its tree.

Used by exploration Step 2 (the root sends the component membership back
down), Step 4d (the root distributes the sizes |K_{2ε²}(X)|) and decision
Steps 2 and 4 of ``DistNearClique``.  Values are pipelined one per round per
edge; by the pipelining argument of Lemma 5.1 a broadcast of m values over a
tree of depth h completes in O(m + h) rounds.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.congest.message import Inbound, Message, id_bits_for, KIND_TAG_BITS
from repro.congest.node import NodeContext, Protocol
from repro.congest.pipeline import (
    ARTIFACT_BFS_TREE,
    ARTIFACT_TREE_CHILDREN,
    PhaseEffects,
)
from repro.primitives.bfs_tree import KEY_CHILDREN, KEY_PARENT, KEY_PARTICIPANT
from repro.primitives.pipelines import Outbox

_ITEM = "bc.item"
_DONE = "bc.done"

#: Input state key: the list of values held by a root before the broadcast.
KEY_BROADCAST_INPUT = "bc_input"
#: Output state key: the list of values received by every participant.
KEY_BROADCAST_OUTPUT = "bc_output"


def _item_message(value: Any, n: int) -> Message:
    """Encode one broadcast value.

    Values are integers or small tuples of integers (identifiers, counters,
    subset indices); each component is charged at identifier width so that
    message-size accounting is an honest upper bound for experiment E6.
    """
    if isinstance(value, tuple):
        payload: Any = value
        bits = KIND_TAG_BITS + sum(
            max(id_bits_for(n), int(abs(part)).bit_length() + 1) for part in value
        )
    else:
        payload = (value,)
        bits = KIND_TAG_BITS + max(id_bits_for(n), int(abs(value)).bit_length() + 1)
    return Message(kind=_ITEM, payload=payload, bits=bits)


class TreeBroadcastProtocol(Protocol):
    """Stream each root's value list to every node of its tree.

    Roots must hold the list to broadcast in ``ctx.state[input_key]``; every
    participant (roots included) ends with the full list, in the root's
    order, in ``ctx.state[output_key]``.
    """

    name = "tree-broadcast"
    quiesce_terminates = True

    def __init__(
        self,
        participant_key: str = KEY_PARTICIPANT,
        input_key: str = KEY_BROADCAST_INPUT,
        output_key: str = KEY_BROADCAST_OUTPUT,
    ) -> None:
        self.participant_key = participant_key
        self.input_key = input_key
        self.output_key = output_key

    def _participates(self, ctx: NodeContext) -> bool:
        return bool(ctx.state.get(self.participant_key))

    def effects(self) -> PhaseEffects:
        return PhaseEffects(
            reads=(
                self.participant_key,
                self.input_key,
                self.output_key,
                KEY_PARENT,
                KEY_CHILDREN,
                Outbox.STATE_KEY,
            ),
            writes=(self.output_key, Outbox.STATE_KEY),
            consumes=(ARTIFACT_BFS_TREE, ARTIFACT_TREE_CHILDREN),
        )

    def on_start(self, ctx: NodeContext) -> None:
        if not self._participates(ctx):
            ctx.halt()
            return
        parent = ctx.state.get(KEY_PARENT)
        children = ctx.state.get(KEY_CHILDREN, [])
        outbox = Outbox.for_ctx(ctx)
        ctx.state[self.output_key] = []
        if parent is None:
            values = list(ctx.state.get(self.input_key, []))
            ctx.state[self.output_key] = list(values)
            for child in children:
                for value in values:
                    outbox.push(child, _item_message(value, ctx.n))
                outbox.push(
                    child, Message(kind=_DONE, payload=None, bits=KIND_TAG_BITS + 1)
                )

    def on_round(self, ctx: NodeContext, inbox: List[Inbound]) -> None:
        if not self._participates(ctx):
            return
        children = ctx.state.get(KEY_CHILDREN, [])
        outbox = Outbox.for_ctx(ctx)
        received: List[Any] = ctx.state[self.output_key]
        for inbound in inbox:
            if inbound.kind == _ITEM:
                payload = inbound.payload
                value: Any = payload[0] if len(payload) == 1 else tuple(payload)
                received.append(value)
                for child in children:
                    outbox.push(child, _item_message(value, ctx.n))
            elif inbound.kind == _DONE:
                for child in children:
                    outbox.push(
                        child,
                        Message(kind=_DONE, payload=None, bits=KIND_TAG_BITS + 1),
                    )
        outbox.flush()

    def collect_output(self, ctx: NodeContext) -> Optional[List[Any]]:
        if not self._participates(ctx):
            return None
        return list(ctx.state.get(self.output_key, []))
