"""Pipelining helpers for CONGEST protocols.

The CONGEST model allows a single O(log n)-bit message per edge direction per
round, so any protocol step that needs to transmit more than a constant
amount of information to a neighbour must *pipeline* it: queue the pieces and
emit one per round.  The paper's complexity analysis (proof of Lemma 5.1)
relies on this repeatedly ("using pipelining once again...").

:class:`Outbox` encapsulates the queueing discipline so that protocol code
can enqueue freely and simply call :meth:`Outbox.flush` once per round.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, Tuple

from repro.congest.message import Message
from repro.congest.node import NodeContext


class Outbox:
    """Per-neighbour FIFO queues drained at one message per round.

    The outbox is stored in the node's state dictionary so that it survives
    across the phases of a composite protocol; use :meth:`for_ctx` to obtain
    the (single) outbox of a node.
    """

    STATE_KEY = "__outbox"

    def __init__(self, ctx: NodeContext) -> None:
        self._ctx = ctx
        self._queues: Dict[int, Deque[Message]] = {}

    # ------------------------------------------------------------------
    @classmethod
    def for_ctx(cls, ctx: NodeContext) -> "Outbox":
        """Return the node's outbox, creating it on first use.

        The outbox lives in ``ctx.state`` and therefore travels whenever
        per-node state is copied — the async engine's pre-run snapshot, the
        sharded engine's process-backend round trip — so the context
        binding is (re-)established here rather than trusted from the
        copy: a queued-but-unsent pipeline must drain into the context
        that is actually being executed, not into the snapshot it was
        copied from.
        """
        outbox = ctx.state.get(cls.STATE_KEY)
        if outbox is None:
            outbox = cls(ctx)
            ctx.state[cls.STATE_KEY] = outbox
        elif outbox._ctx is not ctx:
            outbox._ctx = ctx
        return outbox

    def __getstate__(self):
        # Only the queues travel; the context binding would drag a stale
        # NodeContext copy through every pickle and is repaired by
        # :meth:`for_ctx` on first use after a round trip.
        return self._queues

    def __setstate__(self, queues) -> None:
        self._ctx = None  # rebound by for_ctx
        self._queues = queues

    # ------------------------------------------------------------------
    def push(self, neighbor: int, message: Message) -> None:
        """Queue *message* for *neighbor* (sent in some future round)."""
        self._queues.setdefault(neighbor, deque()).append(message)

    def push_many(self, neighbor: int, messages: Iterable[Message]) -> None:
        queue = self._queues.setdefault(neighbor, deque())
        queue.extend(messages)

    def push_all(self, message: Message, exclude: Iterable[int] = ()) -> None:
        """Queue *message* for every neighbour except those in *exclude*."""
        excluded = set(exclude)
        for neighbor in self._ctx.neighbors:
            if neighbor not in excluded:
                self.push(neighbor, message)

    # ------------------------------------------------------------------
    def flush(self) -> int:
        """Send at most one queued message per neighbour; return #sent."""
        sent = 0
        for neighbor, queue in self._queues.items():
            if queue:
                self._ctx.send(neighbor, queue.popleft())
                sent += 1
        return sent

    def pending(self) -> bool:
        """True when any queue still holds messages."""
        return any(queue for queue in self._queues.values())

    def pending_for(self, neighbor: int) -> int:
        """Number of messages still queued for *neighbor*."""
        queue = self._queues.get(neighbor)
        return len(queue) if queue else 0

    def total_pending(self) -> int:
        return sum(len(queue) for queue in self._queues.values())


def chunk_id_list(ids: Iterable[int]) -> Tuple[int, ...]:
    """Return *ids* as a canonical (sorted, deduplicated) tuple.

    Protocols that stream a set of identifiers over several rounds use a
    canonical order so that senders and receivers agree on stream positions
    without transmitting indices.
    """
    return tuple(sorted(set(ids)))
