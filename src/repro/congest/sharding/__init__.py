"""Sharded CONGEST execution: graph partitioning plus a parallel engine.

The paper's algorithm is local by design — every node's work depends only
on its neighbourhood — which is exactly the structure a sharded executor
exploits: partition the network into ``k`` regions, step each region's
round independently, and exchange only the messages that cross a region
boundary at the round barrier.  This package provides:

:mod:`repro.congest.sharding.partition`
    :func:`partition_network` splits a network into ``k`` shards over its
    CSR arrays (deterministic, seeded; ``"contiguous"`` and ``"bfs"``
    strategies) and returns a :class:`ShardPlan` recording owned nodes,
    boundary edges and cut statistics.

:mod:`repro.congest.sharding.engine`
    :class:`ShardedEngine` (``engine="sharded"``) executes a protocol shard
    by shard — reusing the batched engine's CSR/inbox-buffer machinery per
    shard — under one of three backends (``CongestConfig.shard_backend``):
    the serial deterministic mode (what the differential harness runs), a
    GIL-bound thread pool (``CongestConfig.shard_workers``), or one worker
    process per shard for true multi-core execution.  Bit-identical to
    :class:`repro.congest.engine.ReferenceEngine` by the engine contract,
    for every shard count, strategy and backend.

:mod:`repro.congest.sharding.wire`
    The packed wire format boundary traffic travels in between worker
    processes: flat arrays plus one payload byte blob per bucket, message
    kinds interned to small integers per channel.

:mod:`repro.congest.sharding.workers`
    The worker-process side of the ``"process"`` backend, its coordinator,
    the re-armable worker pool and the persistent ``ProcessSession`` that
    keeps pool plus shared-memory CSR mapping alive across the phases of a
    composite pipeline (``CongestConfig.session_mode == "persistent"``).

:mod:`repro.congest.sharding.shm`
    The shared-memory CSR segment (``SharedCSR``) a session's workers
    attach to: one mapping of the id/adjacency/owner tables serving every
    phase, with unlink guaranteed on session close and guarded on crash.

Importing this package registers the engine; the registry in
:mod:`repro.congest.engine` imports it lazily so ``engine="sharded"`` works
no matter which module a caller reaches first.
"""

from repro.congest.sharding.engine import (
    SHARD_BACKENDS,
    SessionPhaseStats,
    ShardedEngine,
    ShardingStats,
)
from repro.congest.sharding.partition import (
    PARTITION_STRATEGIES,
    ShardPlan,
    cached_partition,
    invalidate_partition_cache,
    partition_network,
    repair_plan,
    shard_fingerprints,
)
from repro.congest.sharding.shm import SharedCSR
from repro.congest.sharding.wire import WireBatch, WireDecoder, WireEncoder

__all__ = [
    "PARTITION_STRATEGIES",
    "SHARD_BACKENDS",
    "SessionPhaseStats",
    "SharedCSR",
    "ShardPlan",
    "ShardedEngine",
    "ShardingStats",
    "WireBatch",
    "WireDecoder",
    "WireEncoder",
    "cached_partition",
    "invalidate_partition_cache",
    "partition_network",
    "repair_plan",
    "shard_fingerprints",
]
