"""Sharded CONGEST execution: graph partitioning plus a parallel engine.

The paper's algorithm is local by design — every node's work depends only
on its neighbourhood — which is exactly the structure a sharded executor
exploits: partition the network into ``k`` regions, step each region's
round independently, and exchange only the messages that cross a region
boundary at the round barrier.  This package provides:

:mod:`repro.congest.sharding.partition`
    :func:`partition_network` splits a network into ``k`` shards over its
    CSR arrays (deterministic, seeded; ``"contiguous"`` and ``"bfs"``
    strategies) and returns a :class:`ShardPlan` recording owned nodes,
    boundary edges and cut statistics.

:mod:`repro.congest.sharding.engine`
    :class:`ShardedEngine` (``engine="sharded"``) executes a protocol shard
    by shard — reusing the batched engine's CSR/inbox-buffer machinery per
    shard — with a serial deterministic mode (the default, used by the
    differential harness) and a thread-pool mode
    (``CongestConfig.shard_workers``).  Bit-identical to
    :class:`repro.congest.engine.ReferenceEngine` by the engine contract,
    for every shard count and strategy.

Importing this package registers the engine; the registry in
:mod:`repro.congest.engine` imports it lazily so ``engine="sharded"`` works
no matter which module a caller reaches first.
"""

from repro.congest.sharding.engine import ShardedEngine, ShardingStats
from repro.congest.sharding.partition import (
    PARTITION_STRATEGIES,
    ShardPlan,
    partition_network,
)

__all__ = [
    "PARTITION_STRATEGIES",
    "ShardPlan",
    "ShardedEngine",
    "ShardingStats",
    "partition_network",
]
