"""Packed wire format for cross-shard boundary traffic.

The process backend of :class:`repro.congest.sharding.engine.ShardedEngine`
exchanges each round's boundary messages between worker processes through
pipes.  Pickling a list of per-message objects (``Inbound`` wrapping
``Message``) would dominate the round barrier — every object drags its class
reference and per-field overhead through the pickler — so boundary buckets
travel in a *packed* form instead: flat integer arrays for the per-delivery
structure, one compact byte string for the payloads, and message *kinds*
replaced by small integers via a per-run interning table.

Layout
------
A bucket of deliveries (all messages one source shard produced for one
destination shard in one round, in send order) becomes a :class:`WireBatch`:

``receivers`` / ``message_refs``
    Two parallel ``array('q')`` columns, one entry per delivery: the dense
    CSR index of the receiver and the index of the delivered message in the
    batch's message table.  A message broadcast to *k* boundary receivers
    appears once in the table and *k* times in these columns — the same
    interning the in-process engines get from shared ``Inbound`` wrappers,
    preserved across the process boundary.

``senders`` / ``kind_ids`` / ``bits``
    The message table, ``array('q')`` columns, one entry per distinct
    message object: the sender's node id, the interned kind, and the bit
    charge (carried explicitly because :class:`repro.congest.message.Message`
    permits an explicit ``bits`` override — ``make_id_message`` charges
    identifiers at Theta(log n) regardless of the concrete integer).

``payloads``
    One ``bytes`` string: the table's payloads encoded back to back with
    :func:`encode_payload` (tag byte + varints / IEEE doubles / UTF-8).

``new_kinds``
    Kind strings first seen by this channel's encoder, in first-use order.
    Encoder and decoder assign ids by appending to their table, so a
    channel's tables stay synchronized as long as batches are decoded in
    the order they were encoded — which the per-round barrier guarantees.
    An interned kind costs one varint per message instead of a string.

Every value a protocol may legally put on the wire round-trips exactly:
the payload vocabulary is ``None``, ``bool``, ``int`` (arbitrary
precision), ``float`` (bit-exact, including NaN and signed zeros), ``str``
and nested tuples thereof — the same vocabulary
:func:`repro.congest.message.estimate_payload_bits` accepts.  Send order,
bit estimates and interning survive the round trip; the property suite in
``tests/test_wire.py`` pins all three.
"""

from __future__ import annotations

import struct
from array import array
from typing import Dict, List, NamedTuple, Sequence, Tuple

from repro.congest.errors import WireCorruptionError
from repro.congest.message import Inbound, Message

__all__ = [
    "WireBatch",
    "WireDecoder",
    "WireEncoder",
    "decode_payload",
    "encode_payload",
]

#: Payload tag bytes (one per vocabulary type; tuples carry an item count).
_TAG_NONE = 0
_TAG_FALSE = 1
_TAG_TRUE = 2
_TAG_INT = 3
_TAG_FLOAT = 4
_TAG_STR = 5
_TAG_TUPLE = 6

_pack_double = struct.Struct(">d").pack
_unpack_double = struct.Struct(">d").unpack_from


def _append_uvarint(out: bytearray, value: int) -> None:
    """LEB128 unsigned varint (7 bits per byte, high bit = continuation)."""
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_uvarint(buf: bytes, offset: int) -> Tuple[int, int]:
    value = 0
    shift = 0
    while True:
        byte = buf[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7


def encode_payload(payload, out: bytearray) -> None:
    """Append the packed encoding of *payload* to *out*.

    Accepts exactly the vocabulary of
    :func:`repro.congest.message.estimate_payload_bits`; anything else
    raises ``TypeError`` (protocols cannot smuggle richer objects through
    the process boundary than through the in-process engines).
    """
    if payload is None:
        out.append(_TAG_NONE)
    elif payload is True:
        out.append(_TAG_TRUE)
    elif payload is False:
        out.append(_TAG_FALSE)
    elif isinstance(payload, bool):  # bool subclasses (never hit in practice)
        out.append(_TAG_TRUE if payload else _TAG_FALSE)
    elif isinstance(payload, int):
        # Zigzag maps signed to unsigned so small negatives stay short;
        # Python ints are arbitrary precision and LEB128 has no width cap.
        out.append(_TAG_INT)
        _append_uvarint(out, (payload << 1) if payload >= 0 else ((-payload << 1) - 1))
    elif isinstance(payload, float):
        out.append(_TAG_FLOAT)
        out += _pack_double(payload)
    elif isinstance(payload, str):
        encoded = payload.encode("utf-8", "surrogatepass")
        out.append(_TAG_STR)
        _append_uvarint(out, len(encoded))
        out += encoded
    elif isinstance(payload, tuple):
        out.append(_TAG_TUPLE)
        _append_uvarint(out, len(payload))
        for item in payload:
            encode_payload(item, out)
    else:
        raise TypeError(
            "unsupported payload type %r; CONGEST messages may only carry "
            "None, bool, int, float, str or tuples thereof"
            % type(payload).__name__
        )


def decode_payload(buf: bytes, offset: int):
    """Decode one payload from *buf* at *offset*; returns ``(value, offset)``."""
    tag = buf[offset]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_INT:
        raw, offset = _read_uvarint(buf, offset)
        return (raw >> 1) ^ -(raw & 1), offset
    if tag == _TAG_FLOAT:
        return _unpack_double(buf, offset)[0], offset + 8
    if tag == _TAG_STR:
        length, offset = _read_uvarint(buf, offset)
        return buf[offset:offset + length].decode("utf-8", "surrogatepass"), offset + length
    if tag == _TAG_TUPLE:
        count, offset = _read_uvarint(buf, offset)
        items = []
        for _ in range(count):
            item, offset = decode_payload(buf, offset)
            items.append(item)
        return tuple(items), offset
    raise ValueError("corrupt wire payload: unknown tag %d at offset %d" % (tag, offset - 1))


class WireBatch(NamedTuple):
    """One source shard's boundary deliveries to one destination, packed."""

    new_kinds: Tuple[str, ...]
    receivers: array  # 'q', dense receiver index per delivery
    message_refs: array  # 'q', message-table index per delivery
    senders: array  # 'q', sender node id per table entry
    kind_ids: array  # 'q', interned kind per table entry
    bits: array  # 'q', bit charge per table entry
    payloads: bytes  # packed payloads of the table entries, back to back

    @property
    def deliveries(self) -> int:
        """Number of (receiver, message) deliveries carried by the batch."""
        return len(self.receivers)

    def wire_bytes(self) -> int:
        """Approximate on-the-wire size of the packed columns, in bytes.

        Counts the flat arrays, the payload blob and the interning deltas —
        not pickle framing — so it is the figure the E15 benchmark reports
        as boundary traffic per round.
        """
        return (
            8 * (len(self.receivers) + len(self.message_refs))
            + 8 * (len(self.senders) + len(self.kind_ids) + len(self.bits))
            + len(self.payloads)
            + sum(len(kind) for kind in self.new_kinds)
        )


class WireEncoder:
    """Encoder for one (source shard → destination shard) channel.

    Kind interning is per channel and append-only: the first batch that
    carries a new kind ships the string once in ``new_kinds``; the paired
    :class:`WireDecoder` appends it to its own table at decode time, so ids
    agree without any out-of-band synchronization.
    """

    __slots__ = ("_kind_ids",)

    def __init__(self) -> None:
        self._kind_ids: Dict[str, int] = {}

    def encode(
        self, receivers: Sequence[int], inbounds: Sequence[Inbound]
    ) -> WireBatch:
        """Pack parallel (receiver index, Inbound) lists into a batch.

        Delivery order is preserved exactly; repeated ``Inbound`` objects
        (one broadcast interned by the drain) collapse to one message-table
        entry referenced from multiple deliveries.
        """
        kind_ids = self._kind_ids
        new_kinds: List[str] = []
        table_index: Dict[int, int] = {}
        receiver_column = array("q", receivers)
        refs = array("q")
        senders = array("q")
        kinds = array("q")
        bits = array("q")
        payload_blob = bytearray()
        for inbound in inbounds:
            key = id(inbound)
            ref = table_index.get(key)
            if ref is None:
                ref = table_index[key] = len(senders)
                message = inbound.message
                kind = message.kind
                kind_id = kind_ids.get(kind)
                if kind_id is None:
                    kind_id = kind_ids[kind] = len(kind_ids)
                    new_kinds.append(kind)
                senders.append(inbound.sender)
                kinds.append(kind_id)
                bits.append(message.bits)
                encode_payload(message.payload, payload_blob)
            refs.append(ref)
        return WireBatch(
            new_kinds=tuple(new_kinds),
            receivers=receiver_column,
            message_refs=refs,
            senders=senders,
            kind_ids=kinds,
            bits=bits,
            payloads=bytes(payload_blob),
        )


class WireDecoder:
    """Decoder for one (source shard → destination shard) channel."""

    __slots__ = ("_kinds",)

    def __init__(self) -> None:
        self._kinds: List[str] = []

    def decode(self, batch: WireBatch) -> Tuple[List[int], List[Inbound]]:
        """Unpack a batch into the engine's parallel delivery lists.

        Returns ``(receiver_indices, inbounds)`` in the batch's send order;
        deliveries sharing a message-table entry share one reconstructed
        :class:`repro.congest.message.Inbound`, mirroring the sender-side
        interning.
        """
        self._kinds.extend(batch.new_kinds)
        kinds = self._kinds
        blob = batch.payloads
        offset = 0
        table: List[Inbound] = []
        try:
            for sender, kind_id, bits in zip(
                batch.senders, batch.kind_ids, batch.bits
            ):
                payload, offset = decode_payload(blob, offset)
                table.append(
                    Inbound(
                        sender=sender,
                        message=Message(
                            kind=kinds[kind_id], payload=payload, bits=bits
                        ),
                    )
                )
            return list(batch.receivers), [
                table[ref] for ref in batch.message_refs
            ]
        except (ValueError, IndexError, KeyError, struct.error, UnicodeDecodeError) as exc:
            # Structural damage (unknown tag, truncated varint/blob,
            # out-of-range kind or table reference) is a transport failure,
            # not a protocol error — surface it as the retryable
            # infrastructure type.  Note the table extension above already
            # happened; a corrupt batch aborts the worker, and a supervised
            # retry replays on a *fresh* pool whose codecs restart in sync,
            # so the desynchronized decoder is never reused.
            raise WireCorruptionError(str(exc) or type(exc).__name__) from exc
