"""Graph partitioning for sharded CONGEST execution.

A :class:`ShardPlan` splits a :class:`repro.congest.network.Network` into
``k`` shards over the network's dense CSR index (see
:meth:`repro.congest.network.Network.csr`): every node is *owned* by exactly
one shard, an edge whose endpoints live in different shards is a *boundary*
(cut) edge, and the plan records the cut statistics that determine how much
cross-shard traffic a sharded execution will pay per round.

The paper's algorithm is local by design — each node's work depends only on
its neighbourhood — so any partition is *correct*; the strategy only moves
the cut fraction, never the outputs.  Two deterministic seeded strategies
ship today:

``"contiguous"``
    Split the dense index ``0..n-1`` into ``k`` near-equal contiguous
    blocks.  Oblivious to the topology (the seed is unused), but free to
    compute and a good match for workloads whose node ids already carry
    locality (generated planted families, relabelled edge lists).

``"bfs"``
    Grow ``k`` regions by balanced round-robin breadth-first search from
    ``k`` seed nodes drawn with a seeded RNG.  Each region claims one node
    per turn up to a capacity of ``ceil(n / k)``, so the shards stay
    balanced while following the topology; nodes no region can reach
    (disconnected components, capacity-locked pockets) are assigned to the
    smallest shard in ascending index order.  Deterministic for a fixed
    ``(network, k, seed)``.

``"bfs+refine"``
    The ``"bfs"`` plan followed by one greedy boundary-refinement sweep in
    the Fiduccia–Mattheyses style: every boundary node is scored by its
    *gain* — cut edges removed minus cut edges created if it moved to a
    neighbouring shard — and strictly-positive-gain moves are applied in
    descending gain order (each node moves at most once per sweep), with
    gains of affected neighbours recomputed as moves land.  A move must
    respect balance: the target stays within the ``ceil(n / k)`` capacity
    and the source keeps at least one node.  This is the strategy for real
    edge lists, where node ids carry no locality and plain ``"bfs"`` can
    cut more edges than ``"contiguous"`` (E14 measures the reduction).

All strategies are deterministic functions of the network's CSR arrays, so
a plan built twice for the same inputs is equal (``ShardPlan`` is a frozen
dataclass) — the property the differential harness relies on when it replays
a sharded run.
"""

from __future__ import annotations

import heapq
import math
import random
import weakref
import zlib
from array import array
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.congest.network import Network

#: Registry of partitioning strategies accepted by :func:`partition_network`.
PARTITION_STRATEGIES: Tuple[str, ...] = ("contiguous", "bfs", "bfs+refine")


@dataclass(frozen=True)
class ShardPlan:
    """An assignment of a network's nodes to ``k`` shards, plus cut stats.

    All node references are *dense CSR indices* (``0..n-1``), not node ids;
    the sharded engine works on the same dense index as the batched engine,
    and ids map to indices via
    :attr:`repro.congest.network.Network.node_index_of`.

    Attributes
    ----------
    strategy / seed:
        The inputs that produced this plan (the seed is recorded even for
        strategies that ignore it, so plans are self-describing).
    n_shards:
        The requested shard count ``k``.  Shards may be empty when ``k``
        exceeds the node count.
    owner:
        ``owner[i]`` is the shard that owns dense index ``i``.
    shards:
        ``shards[s]`` is the tuple of dense indices owned by shard ``s``,
        ascending.
    boundary_edges:
        The cut: undirected edges ``(u, v)`` with ``u < v`` (dense indices)
        whose endpoints live in different shards, ascending.
    internal_edges:
        Number of undirected edges with both endpoints in one shard.
    """

    strategy: str
    seed: int
    n_shards: int
    owner: Tuple[int, ...]
    shards: Tuple[Tuple[int, ...], ...]
    boundary_edges: Tuple[Tuple[int, int], ...] = field(repr=False)
    internal_edges: int = 0

    @property
    def n(self) -> int:
        """Number of nodes covered by the plan."""
        return len(self.owner)

    @property
    def cut_edges(self) -> int:
        """Number of undirected edges crossing a shard boundary."""
        return len(self.boundary_edges)

    @property
    def total_edges(self) -> int:
        return self.internal_edges + self.cut_edges

    @property
    def cut_fraction(self) -> float:
        """Fraction of edges in the cut (0.0 for an edgeless network)."""
        total = self.total_edges
        return (self.cut_edges / total) if total else 0.0

    @property
    def shard_sizes(self) -> Tuple[int, ...]:
        return tuple(len(owned) for owned in self.shards)

    def repair(
        self, network: Network, touched: Iterable[int]
    ) -> Tuple["ShardPlan", Tuple[int, ...]]:
        """Incremental repair after a delta; see :func:`repair_plan`."""
        return repair_plan(network, self, touched)

    def describe(self) -> str:
        """One-line human-readable summary (used by the E14 benchmark)."""
        return (
            "%s(k=%d, seed=%d): sizes=%s, cut %d/%d edges (%.1f%%)"
            % (
                self.strategy,
                self.n_shards,
                self.seed,
                list(self.shard_sizes),
                self.cut_edges,
                self.total_edges,
                100.0 * self.cut_fraction,
            )
        )


def _contiguous_owners(n: int, k: int) -> List[int]:
    """Near-equal contiguous blocks: the first ``n % k`` shards get one extra."""
    owner = [0] * n
    base, extra = divmod(n, k)
    index = 0
    for shard in range(k):
        size = base + (1 if shard < extra else 0)
        for _ in range(size):
            owner[index] = shard
            index += 1
    return owner


def _bfs_owners(network: Network, n: int, k: int, seed: int) -> List[int]:
    """Balanced round-robin multi-source BFS growth (see module docstring)."""
    owner = [-1] * n
    if n == 0:
        return owner
    _ids, indptr, indices = network.csr()
    rng = random.Random(seed)
    num_seeds = min(k, n)
    seed_nodes = sorted(rng.sample(range(n), num_seeds))
    capacity = int(math.ceil(n / float(num_seeds)))

    sizes = [0] * k
    queues: List[deque] = [deque((s,)) for s in seed_nodes]
    pending = True
    while pending:
        pending = False
        for shard in range(num_seeds):
            queue = queues[shard]
            if sizes[shard] >= capacity:
                queue.clear()
                continue
            # Claim (at most) one node this turn so regions grow in lockstep.
            while queue:
                candidate = queue.popleft()
                if owner[candidate] != -1:
                    continue
                owner[candidate] = shard
                sizes[shard] += 1
                for neighbor in indices[indptr[candidate]:indptr[candidate + 1]]:
                    if owner[neighbor] == -1:
                        queue.append(neighbor)
                break
            if queue:
                pending = True

    # Unreached nodes (components without a seed, capacity-locked pockets):
    # smallest shard first, ties to the lowest shard id — deterministic.
    for index in range(n):
        if owner[index] == -1:
            shard = min(range(k), key=lambda s: (sizes[s], s))
            owner[index] = shard
            sizes[shard] += 1
    return owner


def _refine_owners(
    network: Network,
    owner: List[int],
    k: int,
    candidates: Optional[List[int]] = None,
) -> List[int]:
    """One greedy FM-style boundary-refinement sweep over *owner* (in place).

    Candidates default to every node with at least one neighbour in another
    shard; a *candidates* list restricts the sweep's seed set to those
    nodes (incremental repair seeds it with the delta-touched region), with
    chained improvements still propagating to their neighbours as moves
    land.
    A candidate's *gain* for moving to shard ``t`` is ``(neighbours in t) -
    (neighbours in its own shard)`` — exactly the cut-edge reduction of the
    move.  Moves are applied best-gain-first (ties to the lower node index,
    then the lower target shard: deterministic) using a lazy heap whose
    entries are revalidated against the current assignment when popped;
    each applied move re-scores the mover's neighbours, so chains of
    improvements within one sweep are found.  Only strictly positive gains
    are applied — the cut shrinks monotonically, and since every node moves
    at most once the sweep terminates after at most ``n`` moves.

    Balance is respected with the usual FM tolerance: a move is legal only
    while the target shard stays within ``ceil(n / k) + max(1, 5% of n/k)``
    — the BFS growth capacity plus a small slack, without which a plan
    whose every shard sits exactly at capacity (the common BFS outcome)
    would have no legal move at all — and the source shard keeps at least
    one node.
    """
    _ids, indptr, indices = network.csr()
    n = len(owner)
    if n == 0 or k < 2:
        return owner
    base_capacity = int(math.ceil(n / float(min(k, n))))
    capacity = base_capacity + max(1, base_capacity // 20)
    sizes = [0] * k
    for shard in owner:
        sizes[shard] += 1

    def best_move(u: int):
        """(gain, target) of u's best legal move, or None."""
        home = owner[u]
        counts: Dict[int, int] = {}
        for v in indices[indptr[u]:indptr[u + 1]]:
            shard = owner[v]
            counts[shard] = counts.get(shard, 0) + 1
        internal = counts.get(home, 0)
        best = None
        for shard in sorted(counts):
            if shard == home or sizes[shard] >= capacity:
                continue
            gain = counts[shard] - internal
            if gain > 0 and (best is None or gain > best[0]):
                best = (gain, shard)
        return best

    heap: List[Tuple[int, int, int]] = []
    for u in (range(n) if candidates is None else candidates):
        home = owner[u]
        if any(owner[v] != home for v in indices[indptr[u]:indptr[u + 1]]):
            move = best_move(u)
            if move is not None:
                heapq.heappush(heap, (-move[0], u, move[1]))
    moved = [False] * n
    while heap:
        negated_gain, u, target = heapq.heappop(heap)
        if moved[u]:
            continue
        current = best_move(u)
        if current is None:
            continue
        if (-negated_gain, target) != current:
            # Stale entry (a neighbour moved since scoring): re-queue at
            # the current gain and let the heap order decide again.
            heapq.heappush(heap, (-current[0], u, current[1]))
            continue
        if sizes[owner[u]] <= 1:
            continue
        sizes[owner[u]] -= 1
        sizes[target] += 1
        owner[u] = target
        moved[u] = True
        for v in indices[indptr[u]:indptr[u + 1]]:
            if not moved[v]:
                move = best_move(v)
                if move is not None:
                    heapq.heappush(heap, (-move[0], v, move[1]))
    return owner


def partition_network(
    network: Network,
    shards: int,
    strategy: str = "contiguous",
    seed: int = 0,
) -> ShardPlan:
    """Split *network* into *shards* shards and return the :class:`ShardPlan`.

    Parameters
    ----------
    network:
        The network to partition; only its CSR arrays are read.
    shards:
        The shard count ``k`` (at least 1).  ``k`` may exceed the node
        count, in which case the surplus shards are empty.
    strategy:
        One of :data:`PARTITION_STRATEGIES`.
    seed:
        Seed of the partitioner's private RNG (``"bfs"`` seed placement).
        Plans are deterministic for a fixed ``(network, shards, strategy,
        seed)``.
    """
    if shards < 1:
        raise ValueError("shard count must be at least 1, got %r" % (shards,))
    if strategy not in PARTITION_STRATEGIES:
        raise ValueError(
            "unknown partition strategy %r; available strategies: %s"
            % (strategy, ", ".join(PARTITION_STRATEGIES))
        )

    _ids, indptr, indices = network.csr()
    n = len(_ids)
    if strategy == "contiguous":
        owner = _contiguous_owners(n, shards)
    else:
        owner = _bfs_owners(network, n, shards, seed)
        if strategy == "bfs+refine":
            owner = _refine_owners(network, owner, shards)

    return _plan_from_owner(network, owner, shards, strategy, seed)


def _plan_from_owner(
    network: Network,
    owner: List[int],
    shards: int,
    strategy: str,
    seed: int,
) -> ShardPlan:
    """Assemble a :class:`ShardPlan` from a complete owner assignment.

    Shared tail of :func:`partition_network` and :func:`repair_plan`: the
    owned lists and the cut statistics are always recomputed from the
    *current* CSR arrays, so a repaired plan's stats describe the
    post-delta topology.
    """
    _ids, indptr, indices = network.csr()
    n = len(_ids)
    owned: Dict[int, List[int]] = {shard: [] for shard in range(shards)}
    for index in range(n):
        owned[owner[index]].append(index)

    boundary: List[Tuple[int, int]] = []
    internal = 0
    for u in range(n):
        owner_u = owner[u]
        for v in indices[indptr[u]:indptr[u + 1]]:
            if v <= u:
                continue
            if owner_u == owner[v]:
                internal += 1
            else:
                boundary.append((u, v))

    return ShardPlan(
        strategy=strategy,
        seed=seed,
        n_shards=shards,
        owner=tuple(owner),
        shards=tuple(tuple(owned[shard]) for shard in range(shards)),
        boundary_edges=tuple(boundary),
        internal_edges=internal,
    )


def repair_plan(
    network: Network,
    plan: ShardPlan,
    touched: Iterable[int],
) -> Tuple[ShardPlan, Tuple[int, ...]]:
    """Incrementally repair *plan* after a delta touching *touched* indices.

    Instead of repartitioning from scratch, the FM-style gain sweep of
    ``"bfs+refine"`` is re-run *locally*: seeded only with the touched
    nodes and their current neighbours, so ownership outside the delta's
    neighbourhood moves only when a chain of strictly-improving moves
    reaches it (in practice: almost never, which is what keeps clean
    shards' fingerprints stable).  The cut statistics are recomputed
    against the post-delta CSR.

    Returns ``(new_plan, dirty_shards)``.  A shard is *dirty* when it owns
    a touched node (its adjacency rows changed — worker-held neighbour
    views are stale) or when the sweep moved any node into or out of it;
    every other shard's owned set and adjacency rows are unchanged, which
    :func:`shard_fingerprints` certifies.

    *touched* are dense CSR indices (node ids map via
    :attr:`repro.congest.network.Network.node_index_of`).
    """
    touched = sorted(set(touched))
    k = plan.n_shards
    owner = list(plan.owner)
    _ids, indptr, indices = network.csr()
    seeds = set(touched)
    for u in touched:
        seeds.update(indices[indptr[u]:indptr[u + 1]])
    if k >= 2 and seeds:
        _refine_owners(network, owner, k, candidates=sorted(seeds))

    dirty = {plan.owner[u] for u in touched}
    for u in range(plan.n):
        if owner[u] != plan.owner[u]:
            dirty.add(plan.owner[u])
            dirty.add(owner[u])

    new_plan = _plan_from_owner(network, owner, k, plan.strategy, plan.seed)
    return new_plan, tuple(sorted(dirty))


def shard_fingerprints(network: Network, plan: ShardPlan) -> Tuple[int, ...]:
    """Per-shard topology digests: membership plus each owned adjacency row.

    ``digest[s]`` covers shard *s*'s owned index set and the CSR adjacency
    row of every owned node, so it changes exactly when the shard gains or
    loses a node or one of its nodes gains or loses an edge — and stays
    bit-stable otherwise.  The incremental-service tests use this to
    *prove* that a delta plus repair left clean shards untouched.
    """
    _ids, indptr, indices = network.csr()
    digests = []
    for owned in plan.shards:
        crc = zlib.crc32(array("q", owned).tobytes())
        for u in owned:
            crc = zlib.crc32(indices[indptr[u]:indptr[u + 1]].tobytes(), crc)
        digests.append(crc)
    return tuple(digests)


#: Per-network memo of computed plans, stored as ``(fingerprint, plans)``
#: where the fingerprint is :meth:`repro.congest.network.Network.csr_fingerprint`
#: at memoisation time.  A network's topology is *supposed* to be immutable
#: after construction, but the underlying graph object is reachable through
#: ``Network.graph`` — a caller that mutates it would otherwise keep being
#: served plans for the old topology from this memo forever.  Keying the
#: entry by the fingerprint turns that staleness into a recompute (and
#: execution sessions additionally refuse to continue on a mutated network,
#: because their worker pools and shared-memory mappings hold the old CSR).
#: Keying weakly keeps retired networks collectable; plans are frozen, so
#: sharing them is safe.
_PLAN_CACHE: "weakref.WeakKeyDictionary[Network, Tuple[Tuple[int, ...], Dict[Tuple[int, str, int], ShardPlan]]]" = (
    weakref.WeakKeyDictionary()
)


def cached_partition(
    network: Network,
    shards: int,
    strategy: str = "contiguous",
    seed: int = 0,
    fingerprint: Optional[Tuple[int, ...]] = None,
) -> ShardPlan:
    """Memoised :func:`partition_network`.

    The sharded engine partitions once per protocol execution; a composite
    pipeline (the 14-phase ``DistNearClique`` runner) executes many
    protocols on one network, so the plan is computed once and reused.  The
    memo is keyed by the network's identity *and* its CSR fingerprint: if
    the visible topology diverges from the one the memo was built for, the
    stale plans are dropped and the partition is recomputed.  A caller that
    already holds the current fingerprint (a session opening) may pass it
    to skip the O(n) recomputation.

    The fingerprint costs one O(n) degree pass per call — deliberately:
    a cheaper counts-only probe would wave count-preserving mutations (an
    edge swapped for another) through to the stale plan, which is exactly
    the staleness class the fingerprint key exists to catch (pinned by
    ``TestPartitionCacheStaleness``).
    """
    if fingerprint is None:
        fingerprint = network.csr_fingerprint()
    entry = _PLAN_CACHE.get(network)
    if entry is None or entry[0] != fingerprint:
        entry = _PLAN_CACHE[network] = (fingerprint, {})
    per_network = entry[1]
    key = (shards, strategy, seed)
    plan = per_network.get(key)
    if plan is None:
        plan = per_network[key] = partition_network(
            network, shards, strategy=strategy, seed=seed
        )
    return plan


def invalidate_partition_cache(network: Network) -> None:
    """Drop every memoised plan for *network*.

    Called by execution sessions when they detect that the network mutated
    between phases (the CSR fingerprint changed), so no later caller can be
    served a plan computed for the pre-mutation topology.
    """
    _PLAN_CACHE.pop(network, None)
