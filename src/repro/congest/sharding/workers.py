"""Worker processes for the sharded engine's ``"process"`` backend.

One long-lived worker process per non-empty shard: the worker receives its
shard's contexts and routing tables once at startup, is *armed* with a
protocol and configuration, then steps its frontier every round, exchanging
only *boundary* traffic with the coordinator at the round barrier — packed
by :mod:`repro.congest.sharding.wire` into flat arrays instead of pickled
per-message objects.  The coordinator (:class:`ProcessShardedRun`) keeps
the exact round-loop structure of the in-process sharded run: per-shard
:class:`repro.congest.metrics.RoundMetrics` partials are folded in ascending
shard order at the barrier, and termination, quiescence, the stall counter
and the round cap are evaluated centrally on the aggregated view — so the
process boundary is invisible to the engine contract (same outputs, same
round counts, same metrics, same exception types).

Protocol of one execution (all traffic over one duplex pipe per worker)::

    coordinator                         worker
    -----------                         ------
    init payload  ────────────────────▶ build harness (contexts + tables)
    ("arm", protocol, config, ...) ───▶ build stepper, reset shard state
    ("start",)    ────────────────────▶ on_start + drain owned nodes
                  ◀──────────────────── ("ok", metrics, pending, open, batches)
    ("round", r, batches) ────────────▶ deliver + step + drain
                  ◀──────────────────── ("ok", metrics, pending, open, batches)
    ...                                 ...
    ("finish", r) ────────────────────▶ collect outputs + context state
                  ◀──────────────────── ("done", outputs, states, traffic)
    (worker stays; next "arm" starts the next execute, EOF exits)

Worker pools come in two lifetimes.  The default is **per-execute**: the
pool is spawned and reaped inside one ``execute`` call, as PR 4 shipped it.
A persistent :class:`ProcessSession` (``CongestConfig.session_mode ==
"persistent"``) instead keeps one :class:`_WorkerPool` alive across the
``execute`` calls of a composite pipeline and **re-arms** it between
phases: the ``("arm", ...)`` command above carries the next protocol, the
model-rule knobs and the context *deltas* (``_reset_for_new_protocol``
plus any per-call inputs), so neither processes nor per-node state are
re-shipped for ``reuse_contexts`` phases.  The session's routing tables
live in one :mod:`multiprocessing.shared_memory` CSR mapping
(:mod:`repro.congest.sharding.shm`) attached once per worker.  A fresh
context build, or any ``build_contexts`` call outside the session
(detected via :attr:`repro.congest.network.Network.context_epoch`), falls
back to a pool respawn — under fork that re-ships the contexts by memory
inheritance, which is exactly the per-execute cost, paid only when state
actually diverged.  The epoch observes ``build_contexts`` calls, not
writes: state fed to a session's phases must travel through
``per_node_inputs`` / ``global_inputs`` or a ``build_contexts`` call (as
every caller in this package does); poking a live context's ``state``
dict directly between phases is invisible to any engine-side check and
unsupported in persistent sessions.

A model-rule violation inside a worker (``CongestionViolation``,
``MessageSizeViolation``, ``ProtocolError``...) is pickled back and
re-raised by the coordinator with its original type.  A worker that dies
without reporting — hard crash, ``os._exit``, unpicklable exception — is
detected at the next ``recv`` (the pipe returns EOF) and surfaces as
:class:`repro.congest.errors.ShardWorkerError` instead of leaving the
barrier waiting on a corpse.  A worker that is alive but stuck in
protocol code is indistinguishable from a legitimately slow round, so by
default it is *not* timed out (see the ``ShardWorkerError`` docstring);
``CongestConfig.round_timeout`` opts into a coordinator-side **barrier
watchdog** — every barrier then collects reports through
``multiprocessing.connection.wait`` against one per-round deadline, and
a worker missing it raises
:class:`repro.congest.errors.ShardWorkerTimeout` carrying a liveness
probe of the missing workers (hung vs silently dead).  Workers are
daemonic and the pools context-managed: closing a pool closes the pipes
(unblocking any worker still waiting on a command) and joins, escalating
to ``terminate`` only for processes that ignore the EOF within
``CongestConfig.worker_join_timeout`` seconds — except after a watchdog
timeout, where still-alive workers are known-stuck and terminated
straight away.  The teardown guarantee is *per lifetime*: an ``execute``
call never leaks per-execute workers, and a session never leaks its pool
or its shared-memory segment past ``close`` — including violation and
worker-crash paths, where the session tears the pool down immediately
rather than waiting for the context exit.

Supervised retry and degradation
--------------------------------
A persistent :class:`ProcessSession` given a
``CongestConfig.retry_policy`` supervises its executes: a
:class:`~repro.congest.errors.ShardWorkerError` (timeouts included) no
longer aborts the phase — the session tears the pool down, respawns it
fresh and **replays the phase from the parent's contexts**, which are
bit-identical to the phase's start because the harvest below folds
worker state back only after *every* worker reported.  After exhausting
``max_attempts`` the session (by default) *degrades*: the phase — and
every later phase of the session — completes on the serial in-process
sharded backend, bit-identical by the engine contract and immune to
worker-process failures.  Every failure and the supervisor's decision is
recorded as a
:class:`~repro.congest.sharding.engine.RecoveryEvent` on the session's
stats.  Deterministic fault injection for all of these paths lives in
:mod:`repro.congest.sharding.faults` (``CongestConfig.fault_plan``).

State round trip
----------------
The engine contract includes composite pipelines that chain protocols over
the same contexts (``reuse_contexts=True``), so after the final round every
worker ships back the mutable face of each owned context — ``state``,
``output``, halted flag, globals and the private RNG state — and the
coordinator folds it into the parent's context objects in place.  The cost
of that round trip is one pickle per run, not per round; everything a
protocol may put in per-node state must therefore be picklable (true for
every protocol in this package).  Sessions rely on the fold-back too: it
keeps the parent contexts authoritative between phases, which is what lets
a light re-arm ship only deltas.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import threading
import time
import weakref
from array import array
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.congest.config import CongestConfig
from repro.congest.engine import CongestSession, RunResult
from repro.congest.errors import (
    ProtocolError,
    ShardWorkerError,
    ShardWorkerTimeout,
)
from repro.congest.metrics import RoundMetrics, RunMetrics
from repro.congest.network import Network
from repro.congest.node import NodeContext, Protocol
from repro.congest.sharding.engine import (
    RecoveryEvent,
    ShardingStats,
    _ShardedRun,
    _ShardState,
    _ShardStepper,
    coordinator_should_stop,
    merge_startup_metrics,
)
from repro.congest.sharding.faults import FaultInjector
from repro.congest.sharding.partition import (
    ShardPlan,
    cached_partition,
    invalidate_partition_cache,
    repair_plan,
)
from repro.congest.sharding.shm import SharedCSR
from repro.congest.sharding.wire import WireBatch, WireDecoder, WireEncoder

__all__ = ["ProcessSession", "ProcessShardedRun"]

#: Default seconds a worker gets to exit after its pipe is closed before
#: the pool escalates to ``terminate``.  Generous: a healthy worker exits
#: on EOF immediately; only a worker stuck in protocol code ever waits
#: this long.  Configurable per run via ``CongestConfig.worker_join_timeout``
#: (this constant is its default value).
_JOIN_TIMEOUT = 5.0

#: Parent-side pipe ends of every live worker of every pool in this
#: process.  Fork-started children inherit every fd open at fork time —
#: including the coordinator ends of *other* pools (a concurrent session,
#: an overlapping per-execute run) — and any child holding such a write
#: end would defeat that pool's EOF-based teardown (its workers would sit
#: out the join timeout and be terminated).  Each fork therefore snapshots
#: this registry and the child closes the whole set first thing.  Entries
#: are weak references (no GC callbacks — dead entries are pruned under
#: the lock at the next snapshot): a session abandoned without ``close``
#: must stay collectable, and collecting its conns closes their fds,
#: which EOFs its workers — the pre-registry safety net, preserved.
_LIVE_PARENT_CONNS: "Dict[int, weakref.ref]" = {}
_LIVE_PARENT_CONNS_LOCK = threading.Lock()

def _reset_after_fork() -> None:  # pragma: no cover - runs in fork children
    # The spawn path forks while holding the lock; a *different* pool's
    # fork landing in that window would hand the child a held lock.  No
    # worker code touches the registry, but reset both anyway so nothing
    # in a child can ever block on or act through the parent's registry.
    global _LIVE_PARENT_CONNS_LOCK
    _LIVE_PARENT_CONNS_LOCK = threading.Lock()
    _LIVE_PARENT_CONNS.clear()


if hasattr(os, "register_at_fork"):  # POSIX; spawn children re-import anyway
    os.register_at_fork(after_in_child=_reset_after_fork)


def _snapshot_parent_conns() -> Tuple:
    """Live registered conns; prunes dead entries.  Caller holds the lock."""
    alive = []
    dead = []
    for key, ref in _LIVE_PARENT_CONNS.items():
        conn = ref()
        if conn is None:
            dead.append(key)
        else:
            alive.append(conn)
    for key in dead:
        del _LIVE_PARENT_CONNS[key]
    return tuple(alive)


def _close_and_unregister_parent_conn(conn) -> None:
    """Atomically retire a coordinator pipe end from the registry.

    Pop and close must happen under one lock hold: unregistering first
    and closing after releasing would open a window where a concurrent
    pool's fork snapshots the registry without this conn while its fd is
    still open — the forked worker would then hold an untracked write end
    and defeat this pool's EOF-based teardown.
    """
    with _LIVE_PARENT_CONNS_LOCK:
        _LIVE_PARENT_CONNS.pop(id(conn), None)
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


def _mp_context():
    """``fork`` when the platform offers it (cheap startup), else default.

    The fork start method also makes the per-worker init payload — the
    shard's contexts, the routing tables — free to ship: it travels as a
    ``Process`` argument, which fork passes by copy-on-write memory
    inheritance instead of pickling (measurably the dominant setup cost at
    n in the thousands: per-node RNG states alone pickle to ~2.5 KB each).
    Under spawn the same argument is pickled by ``Process.start``, which is
    simply the explicit-shipping behaviour.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _pack_rng_state(state) -> Tuple:
    """Compact a ``random.Random`` state for the wire.

    The default Mersenne state is ``(3, <625-tuple of uint32>, gauss)``;
    pickling 625 individual ints per node dominates the finish-time state
    round trip, so the tuple is flattened to one ``bytes`` object.  Any
    other shape (subclassed generators) passes through unpacked.
    """
    if state[0] == 3 and len(state[1]) == 625:
        return ("mt3", array("I", state[1]).tobytes(), state[2])
    return ("raw", state)


def _unpack_rng_state(packed: Tuple):
    if packed[0] == "mt3":
        internal = array("I")
        internal.frombytes(packed[1])
        return (3, tuple(internal), packed[2])
    return packed[1]


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _WorkerHarness:
    """One shard's round machinery inside its worker process.

    The harness is built once per worker lifetime from the static init
    payload (contexts, routing tables — either inline or attached from the
    session's shared-memory CSR segment) and re-armed per ``execute`` with
    the protocol and configuration; the inbox buffers and the per-channel
    wire codecs survive re-arms, so a session phase allocates no per-node
    structures.
    """

    def __init__(self, init: Dict[str, Any]) -> None:
        n = init["n"]
        shm_name = init.get("shm_name")
        if shm_name is not None:
            # Session mode: the id/owner tables live in the shared CSR
            # mapping; attach once and unpack the hot tables locally.
            self.shared = SharedCSR.attach(shm_name)
            self.index_of: Dict[int, int] = self.shared.build_index_of()
            self.owner: Sequence[int] = list(self.shared.owner)
        else:
            self.shared = None
            self.index_of = init["index_of"]
            self.owner = init["owner"]
        ctx_list: List[Optional[NodeContext]] = [None] * n
        for dense_index, ctx in init["contexts"].items():
            ctx_list[dense_index] = ctx
        self.ctx_list = ctx_list
        self.shard_index: int = init["shard_index"]
        self.owned: Tuple[int, ...] = tuple(init["owned"])
        self.n_shards: int = init["n_shards"]
        self.ordered_delivery: bool = init["ordered_delivery"]
        self.inbox_buffers: List[List] = [[] for _ in ctx_list]
        # One wire channel per (this shard → destination) and per
        # (source → this shard); kind-interning tables stay synchronized
        # because batches travel and decode in round order — across every
        # execute of a session, since encoder and decoder persist together.
        self.encoders: Dict[int, WireEncoder] = {}
        self.decoders: Dict[int, WireDecoder] = {}
        self.stepper: Optional[_ShardStepper] = None
        self.shard: Optional[_ShardState] = None
        #: Deterministic fault injection (``CongestConfig.fault_plan``),
        #: rebuilt lazily at arm time; ``None`` whenever the armed config
        #: carries no plan — the universal production case.
        self.injector: Optional[FaultInjector] = None
        #: Fused-group continuation: protocols still to run after the
        #: currently armed one (``arm_sequence``), self-armed worker-side
        #: right after each ``finish-light`` report so the next phase's
        #: arm overlaps the coordinator's fold.
        self._queue: List[Protocol] = []
        self._queue_config: Optional[CongestConfig] = None

    # ------------------------------------------------------------------
    def arm(
        self,
        protocol: Protocol,
        config: CongestConfig,
        reset: bool,
        global_inputs: Optional[Dict[str, Any]],
        per_node_state: Optional[Dict[int, Dict[str, Any]]],
    ) -> None:
        """Prepare one ``execute``: protocol, knobs, context deltas.

        ``reset=False`` is the arm right after a (re)spawn, when the
        inherited contexts are already current.  ``reset=True`` is a
        session's light re-arm: replay exactly what the parent's
        ``build_contexts(fresh=False)`` did — ``_reset_for_new_protocol``
        plus the per-call inputs — on the worker-held contexts.
        """
        ctx_list = self.ctx_list
        if reset:
            for i in self.owned:
                ctx = ctx_list[i]
                ctx._reset_for_new_protocol()
                if global_inputs:
                    ctx.globals.update(global_inputs)
            if per_node_state:
                index_of = self.index_of
                for node_id, inputs in per_node_state.items():
                    ctx_list[index_of[node_id]].state.update(inputs)
        self.stepper = _ShardStepper(
            protocol=protocol,
            config=config,
            ctx_list=ctx_list,
            index_of=self.index_of,
            owner=self.owner,
            ordered_delivery=self.ordered_delivery,
            inbox_buffers=self.inbox_buffers,
        )
        self.shard = _ShardState(self.shard_index, self.owned, self.n_shards)
        plan = getattr(config, "fault_plan", None)
        if plan is None:
            self.injector = None
        else:
            # Keep the injector (and with it the fired set) across light
            # re-arms of the *same* plan, so a phase-bound spec cannot
            # re-fire when its phase is re-armed on this worker; a changed
            # plan (a retry re-threading the attempt cursor) rebuilds.
            if self.injector is None or self.injector.plan != plan:
                self.injector = FaultInjector(plan, self.shard_index)
            self.injector.begin_phase(protocol.name)

    # ------------------------------------------------------------------
    def _report(self, rm: RoundMetrics) -> Tuple:
        """Pack one round's results for the coordinator."""
        shard = self.shard
        batches: List[Tuple[int, WireBatch]] = []
        out_buckets = shard.out_buckets
        for destination, (indices, inbounds) in enumerate(out_buckets):
            if not indices:
                continue
            encoder = self.encoders.get(destination)
            if encoder is None:
                encoder = self.encoders[destination] = WireEncoder()
            batches.append((destination, encoder.encode(indices, inbounds)))
            out_buckets[destination] = ([], [])
        stepper = self.stepper
        if stepper.fast_finished:
            open_nodes = len(shard.frontier)
        else:
            finished = stepper.protocol.finished
            ctx_list = stepper.ctx_list
            open_nodes = sum(
                1 for i in shard.owned if not finished(ctx_list[i])
            )
        packed_metrics = (
            rm.messages_sent,
            rm.bits_sent,
            rm.max_message_bits,
            rm.edges_used,
            rm.active_nodes,
        )
        return (
            "ok",
            packed_metrics,
            len(shard.pending_index),
            open_nodes,
            batches,
        )

    def start(self) -> Tuple:
        return self._report(self.stepper.start_shard(self.shard))

    def step(
        self, rounds: int, incoming: Sequence[Tuple[int, WireBatch]]
    ) -> Tuple:
        shard = self.shard
        injector = self.injector
        for source, batch in incoming:
            if injector is not None:
                batch = injector.corrupt_batch(batch, rounds)
            decoder = self.decoders.get(source)
            if decoder is None:
                decoder = self.decoders[source] = WireDecoder()
            shard.remote_from[source] = decoder.decode(batch)
        return self._report(self.stepper.step_shard(shard, rounds))

    def finish(self, rounds: int) -> Tuple:
        stepper = self.stepper
        ctx_list = stepper.ctx_list
        protocol = stepper.protocol
        outputs: Dict[int, Any] = {}
        states: Dict[int, Tuple] = {}
        for i in self.shard.owned:
            ctx = ctx_list[i]
            ctx._round = rounds
            outputs[ctx.node_id] = protocol.collect_output(ctx)
            states[ctx.node_id] = (
                ctx.state,
                ctx.output,
                ctx._halted,
                ctx.globals,
                _pack_rng_state(ctx._rng.getstate())
                if ctx._rng is not None
                else None,
            )
        traffic = (self.shard.local_messages, self.shard.remote_messages)
        return ("done", outputs, states, traffic)

    # ------------------------------------------------------------------
    def arm_sequence(
        self,
        protocols: Sequence[Protocol],
        config: CongestConfig,
        reset: bool,
        global_inputs: Optional[Dict[str, Any]],
        per_node_state: Optional[Dict[int, Dict[str, Any]]],
    ) -> None:
        """Arm a fused phase group: one ship, ``len(protocols)`` phases.

        The first protocol is armed exactly like :meth:`arm`; the rest are
        queued, and :meth:`arm_next_queued` promotes them one at a time
        right after each ``finish-light`` report — the re-arms the
        pipeline compiler elides never cross the pipe.
        """
        self._queue = list(protocols[1:])
        self._queue_config = config
        self.arm(protocols[0], config, reset, global_inputs, per_node_state)

    def arm_next_queued(self) -> bool:
        """Self-arm the next queued protocol of a fused group, if any.

        The light re-arm replays ``_reset_for_new_protocol`` on the
        worker-held contexts (``reset=True``), exactly what the parent's
        ``build_contexts(fresh=False)`` would have done between unfused
        phases — no global or per-node input deltas exist mid-group.
        """
        if not self._queue:
            return False
        protocol = self._queue.pop(0)
        self.arm(protocol, self._queue_config, True, None, None)
        return True

    def finish_light(self, rounds: int) -> Tuple:
        """Like :meth:`finish`, but keep the context state worker-side.

        Mid-group harvest of a fused run: outputs and traffic still travel
        (per-phase results and accounting stay bit-identical), but the
        per-node state stays here — the next queued phase re-arms on it,
        and only the group-final ``finish`` folds it back to the parent.
        """
        stepper = self.stepper
        ctx_list = stepper.ctx_list
        protocol = stepper.protocol
        outputs: Dict[int, Any] = {}
        for i in self.shard.owned:
            ctx = ctx_list[i]
            ctx._round = rounds
            outputs[ctx.node_id] = protocol.collect_output(ctx)
        traffic = (self.shard.local_messages, self.shard.remote_messages)
        return ("done", outputs, {}, traffic)


def _send_error(conn, exc: BaseException) -> None:
    """Ship an exception to the coordinator, degrading to text if needed."""
    try:
        conn.send(("error", exc))
    except Exception:
        try:
            conn.send(("error_text", type(exc).__name__, str(exc)))
        except Exception:  # pragma: no cover - pipe already gone
            pass


def _worker_main(conn, init: Dict[str, Any], inherited_peers=()) -> None:
    """Entry point of one worker process (module-level: spawn-safe).

    *init* — the shard's contexts and routing tables — arrives as a process
    argument: free under fork (memory inheritance), pickled by ``start``
    under spawn.  The protocol object arrives over the pipe with each
    ``arm``, so "process-backend protocols must be picklable" holds on
    every platform.  The worker survives ``finish`` — a session re-arms it
    for the next phase — and exits on EOF (pool teardown) or "abort".

    *inherited_peers* are weak references to the parent-side pipe ends
    this fork-started child inherited by fd duplication — its own pipe's
    coordinator end and those of every other live pool at fork time.  They
    are closed first thing: otherwise the coordinator closing *its* copy
    would never EOF the worker's ``recv`` (the worker itself would be
    keeping the write end alive), turning every pool teardown into a
    join-timeout-and-terminate and leaving crash-orphaned workers blocked
    forever.  Weak because the tuple also lives in the *parent's*
    ``Process`` object until the pool is reaped — strong references there
    would pin an abandoned session's conns and defeat the GC safety net
    the registry's weak entries exist for.  In the child every target is
    alive by construction: it was strongly held on the forking thread's
    stack at fork time, and that stack is part of the child's snapshot.
    """
    for peer_ref in inherited_peers:
        peer = peer_ref()
        if peer is not None:  # pragma: no branch - see docstring
            peer.close()
    try:
        try:
            harness = _WorkerHarness(init)
        except BaseException as exc:
            # A failed harness build (shm attach race, corrupt init) must
            # reach the coordinator as the real exception, not as a bare
            # "died without reporting" EOF.
            _send_error(conn, exc)
            return
        while True:
            try:
                command = conn.recv()
            except (EOFError, OSError):
                break  # coordinator went away; nothing left to do
            except BaseException as exc:
                # A command that fails to *unpickle* (a protocol whose
                # import/__setstate__ raises in this process, spawn-mode
                # module mismatches) must reach the coordinator as the
                # real exception, not as a bare broken pipe.
                _send_error(conn, exc)
                break
            op = command[0]
            try:
                if op == "arm":
                    harness.arm(
                        command[1], command[2], command[3], command[4], command[5]
                    )
                    if harness.injector is not None and harness.injector.fire("arm"):
                        break  # injected eof: close the pipe and exit
                    continue  # no response: the coordinator pipelines start
                if op == "arm-seq":
                    harness.arm_sequence(
                        command[1], command[2], command[3], command[4], command[5]
                    )
                    if harness.injector is not None and harness.injector.fire("arm"):
                        break
                    continue  # no response, like "arm"
                if op == "finish-light":
                    injector = harness.injector
                    if injector is not None and injector.fire("finish"):
                        break
                    response = harness.finish_light(command[1])
                    # Report *first*, then self-arm the next queued phase:
                    # the elided re-arm overlaps the coordinator's output
                    # merge instead of delaying its barrier.
                    try:
                        conn.send(response)
                    except (BrokenPipeError, OSError):
                        break
                    if harness.arm_next_queued():
                        injector = harness.injector
                        if injector is not None and injector.fire("arm"):
                            break  # injected eof, same as a shipped arm
                    continue
                injector = harness.injector
                if op == "start":
                    if injector is not None and injector.fire("start"):
                        break
                    response = harness.start()
                elif op == "round":
                    if injector is not None and injector.fire("round", command[1]):
                        break
                    response = harness.step(command[1], command[2])
                elif op == "finish":
                    if injector is not None and injector.fire("finish"):
                        break
                    # Report and stay armed-able: a session's next execute
                    # re-arms this same process.
                    response = harness.finish(command[1])
                else:  # "abort" or anything unrecognized: exit quietly
                    break
            except BaseException as exc:
                _send_error(conn, exc)
                break
            try:
                conn.send(response)
            except (BrokenPipeError, OSError):
                break  # coordinator aborted mid-report
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------
class _WorkerHandle:
    __slots__ = ("shard_index", "process", "conn")

    def __init__(self, shard_index: int, process, conn) -> None:
        self.shard_index = shard_index
        self.process = process
        self.conn = conn


def _reap(
    handles: List[_WorkerHandle],
    join_timeout: Optional[float] = None,
    force: bool = False,
) -> None:
    """Tear down workers: close pipes, join, escalate to terminate.

    Closing the pipe first unblocks any worker waiting in ``recv`` (it
    exits on the EOF); a worker that ignores the EOF past *join_timeout*
    (``CongestConfig.worker_join_timeout``; ``None`` keeps the 5 s
    default) is terminated.  *force* skips the grace period for workers
    already known to be stuck — the barrier watchdog's teardown path,
    where waiting the join timeout on a worker that just missed a round
    deadline would only stack delays.  ``Process.close`` releases the fds
    eagerly rather than at garbage collection, which keeps
    ``active_children()`` truthful — the leak regressions in
    ``tests/test_sharding.py`` rely on it.
    """
    if join_timeout is None:
        join_timeout = _JOIN_TIMEOUT
    for handle in handles:
        _close_and_unregister_parent_conn(handle.conn)
    for handle in handles:
        if force and handle.process.is_alive():
            handle.process.terminate()
        handle.process.join(timeout=join_timeout)
        if handle.process.is_alive():  # pragma: no cover - stuck worker
            handle.process.terminate()
            handle.process.join()
        handle.process.close()


def _spawn_workers(
    plan: ShardPlan,
    ids: Sequence[int],
    index_of: Dict[int, int],
    ordered_delivery: bool,
    contexts: Dict[int, NodeContext],
    shared_csr: Optional[SharedCSR] = None,
) -> List[_WorkerHandle]:
    """Start one worker process per non-empty shard of *plan*.

    The shard's contexts always ride as a ``Process`` argument (inherited
    for free under fork, pickled by ``start`` under spawn).  The routing
    tables ride inline unless *shared_csr* is given, in which case workers
    attach to the session's shared-memory mapping by name instead — one
    mapping serving every spawn and every phase of the session.
    """
    context = _mp_context()
    fork_start = context.get_start_method() == "fork"
    handles: List[_WorkerHandle] = []
    init_common: Dict[str, Any] = {
        "n": len(ids),
        "n_shards": plan.n_shards,
        "ordered_delivery": ordered_delivery,
    }
    if shared_csr is not None:
        init_common["shm_name"] = shared_csr.name
    else:
        init_common["index_of"] = index_of
        init_common["owner"] = plan.owner
    for shard_index, owned in enumerate(plan.shards):
        if not owned:
            continue
        init = dict(init_common)
        init.update(
            shard_index=shard_index,
            owned=owned,
            contexts={i: contexts[ids[i]] for i in owned},
        )
        # Under fork the child inherits every parent-side pipe end open at
        # fork time — its own, those of earlier siblings, and those of any
        # *other* live pool in this process (module registry); hand the
        # full set over so the child can close them, or EOF-based teardown
        # cannot work (see _worker_main).  Pipe creation, the registry
        # snapshot, the fork itself and the registration all happen under
        # the registry lock, so no fork anywhere in the process can
        # observe a live-but-unregistered coordinator end.  Under spawn no
        # fds are inherited.
        start_error: Optional[Exception] = None
        with _LIVE_PARENT_CONNS_LOCK:
            parent_conn, child_conn = context.Pipe(duplex=True)
            # ``live`` keeps the snapshot strongly referenced on this
            # stack across the fork; the child receives only weak refs
            # (see _worker_main) so the parent-side Process args cannot
            # pin another pool's conns.
            live = _snapshot_parent_conns() + (parent_conn,)
            inherited_peers = (
                tuple(weakref.ref(conn) for conn in live)
                if fork_start
                else ()
            )
            process = context.Process(
                target=_worker_main,
                args=(child_conn, init, inherited_peers),
                name="repro-shard-%d" % shard_index,
                daemon=True,
            )
            try:
                process.start()
            except Exception as exc:  # spawn-mode pickling failures
                start_error = exc
            else:
                _LIVE_PARENT_CONNS[id(parent_conn)] = weakref.ref(parent_conn)
        if start_error is not None:
            parent_conn.close()
            child_conn.close()
            _reap(handles)
            raise ShardWorkerError(
                "failed to ship shard %d to its worker process: %s "
                "(process-backend per-node state must be picklable)"
                % (shard_index, start_error)
            ) from start_error
        child_conn.close()
        handles.append(_WorkerHandle(shard_index, process, parent_conn))
    return handles


def _raise_buffered_error(conn, shard_index: int) -> None:
    """Re-raise an error report a dead worker left in the pipe, if any.

    A worker that fails *between* barriers — harness build, arm — ships
    the exception and exits; the coordinator only notices at its next
    ``send`` (broken pipe).  The real error is still buffered on the pipe,
    and raising it beats a generic "worker died" that hides the cause.
    Returns silently when nothing useful is buffered.
    """
    try:
        if not conn.poll(0.05):
            return
        message = conn.recv()
    except (EOFError, OSError):
        return
    if not message:
        return
    if message[0] == "error":
        raise message[1]
    if message[0] == "error_text":
        raise ShardWorkerError(
            "worker process for shard %d failed with unpicklable %s: %s"
            % (shard_index, message[1], message[2])
        )


class _WorkerPool:
    """Owns the worker processes of one execution or one session.

    Two lifetimes share this class.  Used as a context manager it is the
    per-execute pool PR 4 shipped: every exit path of the ``with`` runs
    :meth:`close`, so no worker outlives the ``execute`` call that spawned
    it (the engine registry shares one ``ShardedEngine`` singleton across
    all callers, so pool lifetime must never attach to the engine).  A
    persistent session holds the pool directly across executes and calls
    :meth:`rearm` between phases; the session's own close paths — context
    exit, violations, worker deaths — call :meth:`close`, which preserves
    the same teardown guarantee at session scope.
    """

    def __init__(
        self,
        handles: List[_WorkerHandle],
        join_timeout: float = _JOIN_TIMEOUT,
    ) -> None:
        self.handles = handles
        self.join_timeout = join_timeout
        self.closed = False

    # ------------------------------------------------------------------
    def rearm(
        self,
        protocol: Protocol,
        config: CongestConfig,
        reset: bool = True,
        global_inputs: Optional[Dict[str, Any]] = None,
        per_shard_state: Optional[Dict[int, Dict[int, Dict[str, Any]]]] = None,
        no_reset_shards: frozenset = frozenset(),
    ) -> None:
        """Arm every worker for the next ``execute``.

        The first arm after a spawn passes ``reset=False`` (the inherited
        contexts are current); a session's light re-arm passes
        ``reset=True`` plus the per-call input deltas, routed per shard.
        After a *partial* respawn (delta absorption) the pool is mixed:
        surviving workers need the reset replay while the freshly spawned
        dirty-shard workers inherited already-reset contexts — their shard
        indices arrive in *no_reset_shards*.  A failed ship — an
        unpicklable protocol, a dead worker — surfaces as
        :class:`ShardWorkerError`; callers tear the pool down on it.
        """
        for handle in self.handles:
            inputs = (
                per_shard_state.get(handle.shard_index)
                if per_shard_state
                else None
            )
            shard_reset = reset and handle.shard_index not in no_reset_shards
            try:
                handle.conn.send(
                    ("arm", protocol, config, shard_reset, global_inputs, inputs)
                )
            except Exception as exc:
                if isinstance(exc, (BrokenPipeError, OSError)):
                    _raise_buffered_error(handle.conn, handle.shard_index)
                raise ShardWorkerError(
                    "failed to ship the protocol to the shard %d worker: %s "
                    "(process-backend protocols and per-node state must be "
                    "picklable)" % (handle.shard_index, exc)
                ) from exc

    # ------------------------------------------------------------------
    def rearm_sequence(
        self,
        protocols: Sequence[Protocol],
        config: CongestConfig,
        reset: bool = True,
        global_inputs: Optional[Dict[str, Any]] = None,
        per_shard_state: Optional[Dict[int, Dict[int, Dict[str, Any]]]] = None,
        no_reset_shards: frozenset = frozenset(),
    ) -> None:
        """Arm every worker for a fused phase group in one ship.

        Mirrors :meth:`rearm`, but the whole protocol sequence crosses the
        pipe once; workers self-arm each follow-on phase after reporting
        the previous one (``finish-light``), so the group costs one pool
        re-arm however many phases it fuses.
        """
        protocols = list(protocols)
        for handle in self.handles:
            inputs = (
                per_shard_state.get(handle.shard_index)
                if per_shard_state
                else None
            )
            shard_reset = reset and handle.shard_index not in no_reset_shards
            try:
                handle.conn.send(
                    (
                        "arm-seq",
                        protocols,
                        config,
                        shard_reset,
                        global_inputs,
                        inputs,
                    )
                )
            except Exception as exc:
                if isinstance(exc, (BrokenPipeError, OSError)):
                    _raise_buffered_error(handle.conn, handle.shard_index)
                raise ShardWorkerError(
                    "failed to ship the fused phase group to the shard %d "
                    "worker: %s (process-backend protocols and per-node "
                    "state must be picklable)" % (handle.shard_index, exc)
                ) from exc

    # ------------------------------------------------------------------
    def close(self, force: bool = False) -> None:
        """Reap every worker (idempotent).

        *force* skips the EOF grace period and terminates still-alive
        workers straight away — used after a barrier-watchdog timeout,
        when an alive worker is known-stuck, not merely slow to exit.
        """
        if self.closed:
            return
        self.closed = True
        _reap(self.handles, self.join_timeout, force=force)

    def __enter__(self) -> "_WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(force=isinstance(exc, ShardWorkerTimeout))


class ProcessShardedRun:
    """One process-backed sharded execution (the ``"process"`` backend).

    Mirrors the in-process ``_ShardedRun`` coordinator loop exactly —
    startup barrier, per-round fold in ascending shard order, the same
    termination / quiescence / stall / round-cap decisions — but the
    shards live in worker processes and boundary buckets cross the barrier
    as packed :class:`repro.congest.sharding.wire.WireBatch` columns.

    By default the run spawns, arms and reaps its own per-execute pool.  A
    :class:`ProcessSession` passes its persistent (already armed) *pool*
    instead; the run then only drives the round loop and leaves pool
    lifetime to the session.

    Attributes
    ----------
    boundary_bytes / barrier_rounds:
        Packed boundary traffic shipped over the run and the number of
        barriers (startup plus one per round); feeds
        :class:`repro.congest.sharding.engine.ShardingStats` and the
        E15/E16 benchmarks' bytes-per-round reports.
    setup_seconds:
        Coordinator-side time spent spawning and arming the per-execute
        pool (zero when a session supplied the pool — the session accounts
        its own setup).
    """

    def __init__(
        self,
        network: Network,
        protocol: Protocol,
        config: CongestConfig,
        contexts: Dict[int, NodeContext],
        plan: ShardPlan,
        pool: Optional[_WorkerPool] = None,
        fold_contexts: bool = True,
    ) -> None:
        self.network = network
        self.protocol = protocol
        self.config = config
        self.contexts = contexts
        self.plan = plan
        self.pool = pool
        #: ``False`` for every phase of a fused group except the last: the
        #: harvest ships outputs and traffic only (``finish-light``); the
        #: per-node state stays worker-side for the self-armed next phase
        #: and is folded back by the group-final phase's full ``finish``.
        self.fold_contexts = fold_contexts
        ids, _indptr, _indices = network.csr()
        self.ids = ids
        self.index_of = network.node_index_of
        self.ordered_delivery = _ShardStepper.ranges_are_ordered(plan)
        self.quiesce_ok = bool(getattr(protocol, "quiesce_terminates", False))
        self.fast_finished = type(protocol).finished is Protocol.finished
        self.boundary_bytes = 0
        self.barrier_rounds = 0
        self.setup_seconds = 0.0
        self._traffic: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------
    def traffic_totals(self) -> Tuple[int, int]:
        """(protocol messages, cross-shard messages) over the whole run."""
        local = sum(pair[0] for pair in self._traffic)
        remote = sum(pair[1] for pair in self._traffic)
        return local + remote, remote

    # ------------------------------------------------------------------
    def _send(self, handle: _WorkerHandle, command: Tuple) -> None:
        """Send a command, surfacing a dead worker as the documented error.

        A worker can die *between* barriers (OOM kill, segfault) with its
        last report already buffered — the next send then hits a broken
        pipe, which must surface as :class:`ShardWorkerError` like every
        other worker-death path, not as a raw ``OSError`` that escapes the
        ``CongestError`` hierarchy callers catch uniformly.
        """
        try:
            handle.conn.send(command)
        except (BrokenPipeError, OSError) as exc:
            _raise_buffered_error(handle.conn, handle.shard_index)
            raise ShardWorkerError(
                "worker process for shard %d (pid %s) died before %r"
                % (handle.shard_index, handle.process.pid, command[0])
            ) from exc

    def _recv(self, handle: _WorkerHandle) -> Tuple:
        try:
            message = handle.conn.recv()
        except (EOFError, OSError):
            raise ShardWorkerError(
                "worker process for shard %d (pid %s) died without reporting"
                % (handle.shard_index, handle.process.pid)
            ) from None
        except Exception as exc:
            # The report pickled on the worker side but failed to decode
            # here — e.g. a protocol's custom exception whose __init__
            # takes structured arguments but whose default reduction
            # replays the formatted message (the trap this package's own
            # violations dodge via __reduce__).  Surface the decode
            # failure instead of letting an unrelated TypeError mask it.
            raise ShardWorkerError(
                "report from the shard %d worker could not be decoded: %s: %s"
                % (handle.shard_index, type(exc).__name__, exc)
            ) from exc
        op = message[0]
        if op == "error":
            raise message[1]
        if op == "error_text":
            raise ShardWorkerError(
                "worker process for shard %d failed with unpicklable "
                "%s: %s" % (handle.shard_index, message[1], message[2])
            )
        return message

    @staticmethod
    def _raise_timeout(
        pending: Sequence[_WorkerHandle], timeout: float
    ) -> None:
        """Missed deadline: probe the stragglers' liveness and raise."""
        shard_indices = sorted(h.shard_index for h in pending)
        alive = sorted(
            h.shard_index for h in pending if h.process.is_alive()
        )
        raise ShardWorkerTimeout(shard_indices, timeout, alive_shards=alive)

    def _collect(self, handles: List[_WorkerHandle]) -> List[Tuple]:
        """One report per handle, in handle order — the barrier's recv side.

        Without ``CongestConfig.round_timeout`` this is the original
        blocking loop (zero overhead on the watchdog-free path).  With a
        timeout set, reports are gathered through
        ``multiprocessing.connection.wait`` against one deadline for the
        whole barrier; workers still missing at the deadline surface as
        :class:`ShardWorkerTimeout` with a liveness probe (hung vs dead).
        Either way, error reports and EOFs raise from :meth:`_recv` with
        their documented types.
        """
        timeout = self.config.round_timeout
        if timeout is None:
            return [self._recv(handle) for handle in handles]
        deadline = time.monotonic() + timeout
        pending = {handle.conn: handle for handle in handles}
        collected: Dict[int, Tuple] = {}
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._raise_timeout(list(pending.values()), timeout)
            ready = multiprocessing.connection.wait(
                list(pending), timeout=remaining
            )
            if not ready:
                self._raise_timeout(list(pending.values()), timeout)
            for conn in ready:
                handle = pending.pop(conn)
                collected[handle.shard_index] = self._recv(handle)
        return [collected[handle.shard_index] for handle in handles]

    def _barrier(
        self,
        handles: List[_WorkerHandle],
        into: RoundMetrics,
        routed: Dict[int, List[Tuple[int, WireBatch]]],
    ) -> Tuple[int, int]:
        """Collect one round's reports in ascending shard order.

        Folds the packed metrics partials into *into*, stages each outbound
        batch for its destination worker in *routed*, and returns
        ``(in_flight, open_nodes)`` — pending local deliveries plus routed
        boundary deliveries, and the surviving frontier size (or unfinished
        count on the compatibility path).
        """
        in_flight = 0
        open_nodes = 0
        barrier_bytes = 0
        for handle, message in zip(handles, self._collect(handles)):
            _op, packed, pending_local, shard_open, batches = message
            messages_sent, bits_sent, max_bits, edges_used, active = packed
            into.messages_sent += messages_sent
            into.bits_sent += bits_sent
            into.edges_used += edges_used
            into.active_nodes += active
            if max_bits > into.max_message_bits:
                into.max_message_bits = max_bits
            in_flight += pending_local
            open_nodes += shard_open
            for destination, batch in batches:
                routed.setdefault(destination, []).append(
                    (handle.shard_index, batch)
                )
                in_flight += batch.deliveries
                barrier_bytes += batch.wire_bytes()
        self.boundary_bytes += barrier_bytes
        self.barrier_rounds += 1
        return in_flight, open_nodes

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        if self.pool is not None:
            # Session-managed pool: already spawned and armed; lifetime
            # (including error teardown) belongs to the session.
            return self._drive(self.pool.handles)
        started = time.perf_counter()
        handles = _spawn_workers(
            self.plan,
            self.ids,
            self.index_of,
            self.ordered_delivery,
            self.contexts,
        )
        with _WorkerPool(handles, self.config.worker_join_timeout) as pool:
            pool.rearm(self.protocol, self.config, reset=False)
            self.setup_seconds = time.perf_counter() - started
            return self._drive(pool.handles)

    def _drive(self, handles: List[_WorkerHandle]) -> RunResult:
        # The termination decisions and the round-1 startup-metrics merge
        # are the shared helpers of sharding/engine.py — evaluated here on
        # worker-reported aggregates, in _ShardedRun on local state — so
        # the engine contract's round counts cannot drift between the
        # coordinators.
        config = self.config
        metrics = RunMetrics()
        rounds = 0
        for handle in handles:
            self._send(handle, ("start",))
        startup_metrics = RoundMetrics(round_index=0)
        routed: Dict[int, List[Tuple[int, WireBatch]]] = {}
        in_flight, open_nodes = self._barrier(
            handles, startup_metrics, routed
        )
        startup_metrics.edges_used = 0  # startup edges are not counted
        startup_metrics.active_nodes = 0

        silent_rounds = 0
        while True:
            stop, silent_rounds = coordinator_should_stop(
                open_nodes == 0,
                in_flight,
                rounds,
                silent_rounds,
                self.quiesce_ok,
                config.max_rounds,
                self.protocol.name,
            )
            if stop:
                break

            rounds += 1
            round_metrics = RoundMetrics(round_index=rounds)
            if rounds == 1:
                merge_startup_metrics(round_metrics, startup_metrics)
            outgoing, routed = routed, {}
            for handle in handles:
                self._send(
                    handle,
                    ("round", rounds, outgoing.get(handle.shard_index, [])),
                )
            in_flight, open_nodes = self._barrier(
                handles, round_metrics, routed
            )
            metrics.absorb_round(round_metrics, config.record_round_metrics)

        # Harvest: outputs plus the mutable context state, folded back
        # into the parent's context objects so composite pipelines
        # (reuse_contexts=True) chain across engines transparently.  The
        # fold is transactional: every report is received (through the
        # watchdog-aware _collect) *before* any worker state touches the
        # parent's contexts, so a worker failing at finish leaves them
        # bit-identical to the phase start — the invariant that makes a
        # supervised retry's replay safe.
        merged_outputs: Dict[int, Any] = {}
        harvest = "finish" if self.fold_contexts else "finish-light"
        for handle in handles:
            self._send(handle, (harvest, rounds))
        reports = self._collect(handles)
        for report in reports:
            _op, outputs, states, traffic = report
            merged_outputs.update(outputs)
            self._traffic.append(traffic)
            for node_id, packed_state in states.items():
                state, output, halted, globals_, rng_state = packed_state
                ctx = self.contexts[node_id]
                ctx.state.clear()
                ctx.state.update(state)
                ctx.output = output
                ctx._halted = halted
                ctx._round = rounds
                ctx._outgoing = {}
                ctx.globals.clear()
                ctx.globals.update(globals_)
                if rng_state is not None and ctx._rng is not None:
                    ctx._rng.setstate(_unpack_rng_state(rng_state))

        outputs = {node_id: merged_outputs[node_id] for node_id in self.contexts}
        return RunResult(outputs=outputs, metrics=metrics, contexts=self.contexts)


# ----------------------------------------------------------------------
# Persistent sessions
# ----------------------------------------------------------------------
class ProcessSession(CongestSession):
    """A persistent process-backend session: one pool, one shm CSR mapping.

    Opened by :meth:`repro.congest.sharding.engine.ShardedEngine.open_session`
    when ``CongestConfig.session_mode == "persistent"`` resolves with the
    ``"process"`` backend.  The shard plan is fixed at open time; across
    the session's ``execute`` calls:

    * the worker pool survives and is **re-armed** per phase — for a
      ``reuse_contexts`` execute only the protocol, the model-rule knobs
      and the per-call input deltas cross the pipes;
    * the CSR/owner tables live in one shared-memory segment
      (:class:`repro.congest.sharding.shm.SharedCSR`) created at first
      spawn and unlinked at close — on every close path, with atexit and
      resource-tracker guards for abnormal exits;
    * a fresh context build, or a ``build_contexts`` call outside the
      session (detected via
      :attr:`repro.congest.network.Network.context_epoch`), respawns the
      pool so worker state never diverges from the parent's — direct
      writes to a live context's ``state`` dict are the one thing no
      engine-side check can see (module docstring), so session callers
      must feed state through inputs or ``build_contexts``;
    * any error escaping an ``execute`` — model violations, worker deaths —
      tears the pool down *immediately*; the next ``execute`` (if any)
      starts a fresh pool, and ``close`` is then a no-op for workers;
    * a network whose CSR fingerprint changed mid-session is reconciled
      against the network's delta ledger: a change fully explained by
      :meth:`repro.congest.network.Network.apply_delta` calls is *absorbed*
      — the shard plan is repaired incrementally around the touched nodes,
      the shm mapping rebuilt, and only dirty shards' workers respawned at
      the next execute — while any unexplained change (a direct graph
      mutation behind the API) invalidates the partition memo and raises,
      because the plan, the mapping and the worker routing tables all
      describe a topology nobody can account for.

    Per-phase partials and session totals (boundary bytes, barrier rounds,
    setup seconds, shm bytes) are exposed as :attr:`stats`, a
    :class:`repro.congest.sharding.engine.ShardingStats`.
    """

    #: Worker-held context state is the source of truth between a fused
    #: group's phases: the parent's contexts are only folded at group end,
    #: so parent-side state replay (e.g. an artifact-cache restore) would
    #: silently desync the pool.  Callers gate such replays on this flag.
    worker_state_authoritative = True

    def __init__(
        self,
        engine,
        network: Network,
        config: CongestConfig,
        shards: int,
        strategy: str,
        partition_seed: int,
    ) -> None:
        super().__init__(engine, network, config)
        self.stats = ShardingStats()
        self._shards = shards
        self._strategy = strategy
        self._partition_seed = partition_seed
        self._fingerprint = network.csr_fingerprint()
        self.plan = cached_partition(
            network,
            shards,
            strategy=strategy,
            seed=partition_seed,
            fingerprint=self._fingerprint,
        )
        self.stats.plans.append(self.plan)
        ids, _indptr, _indices = network.csr()
        self._ids = ids
        self._ordered = _ShardStepper.ranges_are_ordered(self.plan)
        self._pool: Optional[_WorkerPool] = None
        self.shared_csr: Optional[SharedCSR] = None
        #: ``network.context_epoch`` as of the last execute whose fold-back
        #: synchronised parent and worker context state; ``None`` until the
        #: first execute completes.
        self._epoch: Optional[int] = None
        #: ``network.delta_epoch`` watermark: ledger entries above it are
        #: deltas this session has not yet absorbed.
        self._delta_epoch: int = network.delta_epoch
        #: Shards whose workers must be respawned at the next execute
        #: because an absorbed delta dirtied them (``None``: no partial
        #: respawn pending).
        self._dirty_shards: Optional[Tuple[int, ...]] = None
        #: ``(touched_indices, dirty_shards)`` of the last absorbed delta,
        #: or ``None``; regression tests and the service's stats read it.
        self.last_repair: Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]] = None
        #: Shard indices whose worker was (re)spawned by the last execute
        #: (empty tuple: light re-arm only) — the "recomputed only the
        #: dirty shard" assertion the acceptance tests make.
        self.last_respawned_shards: Tuple[int, ...] = ()
        #: Count of deltas absorbed via incremental repair.
        self.repairs: int = 0
        #: True once supervised retry exhausted its attempts and the
        #: session fell back to the serial in-process sharded backend —
        #: sticky for the rest of the session (the condition that killed
        #: the pool repeatedly is not expected to clear between phases).
        self._degraded: bool = False

    # ------------------------------------------------------------------
    def _check_config(self, config: CongestConfig) -> None:
        """Reject per-call overrides that conflict with the fixed plan."""
        shards, strategy, backend = self.engine.resolve_structure(config)
        if (shards, strategy, backend) != (
            self._shards,
            self._strategy,
            "process",
        ):
            raise ValueError(
                "per-call config resolves to %r shards / %r strategy / %r "
                "backend, but this session was opened with %r / %r / "
                "'process'; structural knobs are fixed for a session's "
                "lifetime" % (
                    shards,
                    strategy,
                    backend,
                    self._shards,
                    self._strategy,
                )
            )

    def _teardown_pool(self, force: bool = False) -> None:
        if self._pool is not None:
            pool, self._pool = self._pool, None
            pool.close(force=force)

    # ------------------------------------------------------------------
    def execute(
        self,
        protocol: Protocol,
        *,
        config: Optional[CongestConfig] = None,
        global_inputs: Optional[Dict[str, Any]] = None,
        per_node_inputs: Optional[Dict[int, Dict[str, Any]]] = None,
        reuse_contexts: bool = False,
    ) -> RunResult:
        if self.closed:
            raise ProtocolError("execute on a closed CongestSession")
        # Fail fast on *every* escaping error — config rejection, a bad
        # per-node input, model violations, worker deaths: the pool is
        # torn down here, not deferred to close(), so the teardown
        # guarantee holds after any failed execute.  The next execute (if
        # any) respawns.
        try:
            return self._execute(
                protocol,
                config if config is not None else self.config,
                global_inputs,
                per_node_inputs,
                reuse_contexts,
            )
        except BaseException as exc:
            # A watchdog timeout marks still-alive workers as known-stuck:
            # terminate them immediately instead of granting the EOF grace
            # period they would sit out anyway.
            self._teardown_pool(force=isinstance(exc, ShardWorkerTimeout))
            raise

    def _execute(
        self,
        protocol: Protocol,
        config: CongestConfig,
        global_inputs: Optional[Dict[str, Any]],
        per_node_inputs: Optional[Dict[int, Dict[str, Any]]],
        reuse_contexts: bool,
    ) -> RunResult:
        self._check_config(config)
        network = self.network
        fingerprint = network.csr_fingerprint()
        if fingerprint != self._fingerprint:
            # Repairable iff the divergence is fully explained by deltas
            # applied through Network.apply_delta since the session's
            # watermark; anything else is an external structural override
            # (a direct graph mutation behind the API) and stays fatal —
            # the plan, the shm mapping and the worker routing tables all
            # describe a topology nobody can account for.
            if not self._absorb_delta(fingerprint):
                invalidate_partition_cache(network)
                raise ProtocolError(
                    "the network mutated during an execution session: its CSR "
                    "fingerprint no longer matches the shard plan the session "
                    "was opened with, and the change is not explained by "
                    "Network.apply_delta (the partition memo has been "
                    "invalidated; open a new session on a freshly built "
                    "Network, or mutate through apply_delta so the session "
                    "can repair incrementally)"
                )

        # Contexts mutated outside the session (a direct build_contexts
        # call between phases) make worker-held state stale; detect via the
        # epoch and fall back to a respawn, which re-ships them.
        external = self._epoch is None or network.context_epoch != self._epoch
        contexts = network.build_contexts(
            global_inputs=global_inputs,
            per_node_inputs=per_node_inputs,
            fresh=not reuse_contexts,
        )

        if self._degraded or not any(self.plan.shards):
            # Serial fallback: an empty network has nothing to keep a pool
            # for, and a degraded session has proven it cannot keep one.
            return self._run_serial(protocol, config, contexts)

        # Supervised retry: each attempt runs the phase on a pool; a
        # ShardWorkerError (timeouts included) with a retry_policy set
        # tears the pool down and *replays the phase* — the fingerprint /
        # delta / epoch reconciliation and build_contexts above ran once,
        # and the parent's contexts are bit-identical to the phase start
        # because the harvest folds worker state back only after every
        # worker reported.  The respawned pool re-ships those pristine
        # contexts (reset=False path), so the replay is deterministic by
        # the engine contract.  Wire-codec interning state is per pool,
        # so a retry must always respawn the *whole* pool: a partial
        # respawn would desynchronize surviving encoders from fresh
        # decoders.
        plan_faults = config.fault_plan
        attempt = 0
        while True:
            attempt_config = config
            if plan_faults is not None and plan_faults.attempt != attempt:
                attempt_config = replace(
                    config, fault_plan=plan_faults.for_attempt(attempt)
                )
            try:
                return self._execute_on_pool(
                    protocol,
                    attempt_config,
                    global_inputs,
                    per_node_inputs,
                    reuse_contexts,
                    external,
                    contexts,
                )
            except ShardWorkerError as exc:
                timed_out = isinstance(exc, ShardWorkerTimeout)
                self._teardown_pool(force=timed_out)
                policy = config.retry_policy
                if policy is None:
                    raise
                if attempt + 1 < policy.max_attempts:
                    action = "retry"
                elif policy.degrade:
                    action = "degrade"
                else:
                    action = "abort"
                self.stats.observe_recovery(
                    RecoveryEvent(
                        phase=protocol.name,
                        error="%s: %s" % (type(exc).__name__, exc),
                        action=action,
                        attempt=attempt,
                        timed_out=timed_out,
                    )
                )
                if action == "abort":
                    raise
                if action == "degrade":
                    self._degraded = True
                    if self.shared_csr is not None:
                        shared, self.shared_csr = self.shared_csr, None
                        shared.destroy()
                    return self._run_serial(protocol, config, contexts)
                attempt += 1
                delay = policy.delay_before(attempt)
                if delay > 0:
                    time.sleep(delay)

    def _run_serial(
        self,
        protocol: Protocol,
        config: CongestConfig,
        contexts: Dict[int, NodeContext],
    ) -> RunResult:
        """Complete one phase on the serial in-process sharded backend.

        The degradation target (and the empty-network path): bit-identical
        to the pool by the engine contract, immune to worker-process
        failures.  Any fault plan is stripped — the plan describes
        *worker* faults, and re-simulating the failure the session just
        degraded away from would defeat the ladder's whole point.
        """
        if getattr(config, "fault_plan", None) is not None:
            config = replace(config, fault_plan=None)
        run = _ShardedRun(
            network=self.network,
            protocol=protocol,
            config=config,
            contexts=contexts,
            plan=self.plan,
            workers=0,
        )
        result = run.run()
        self._epoch = self.network.context_epoch
        total, cross = run.traffic_totals()
        self.stats.observe_phase(protocol.name, total, cross, 0, 0, 0.0)
        return result

    def _execute_on_pool(
        self,
        protocol: Protocol,
        config: CongestConfig,
        global_inputs: Optional[Dict[str, Any]],
        per_node_inputs: Optional[Dict[int, Dict[str, Any]]],
        reuse_contexts: bool,
        external: bool,
        contexts: Dict[int, NodeContext],
    ) -> RunResult:
        """One attempt of one phase on the (spawned or re-armed) pool."""
        network = self.network
        setup_started = time.perf_counter()
        if self._pool is None or not reuse_contexts or external:
            self._teardown_pool()
            self._dirty_shards = None
            if self.shared_csr is None:
                self.shared_csr = SharedCSR.create(network, self.plan)
                self.stats.shm_bytes = self.shared_csr.nbytes
            handles = _spawn_workers(
                self.plan,
                self._ids,
                network.node_index_of,
                self._ordered,
                contexts,
                shared_csr=self.shared_csr,
            )
            self._pool = _WorkerPool(handles, config.worker_join_timeout)
            self._pool.rearm(protocol, config, reset=False)
            self.last_respawned_shards = tuple(
                handle.shard_index for handle in handles
            )
        elif self._dirty_shards is not None:
            # Mid-pipeline delta absorption: only the dirty shards'
            # workers are respawned (their contexts' neighbour views and
            # adjacency rows changed); clean shards keep their processes
            # and replay the usual reset re-arm.
            dirty, self._dirty_shards = self._dirty_shards, None
            if self.shared_csr is None:
                self.shared_csr = SharedCSR.create(network, self.plan)
                self.stats.shm_bytes = self.shared_csr.nbytes
            self._respawn_shards(dirty, contexts)
            self._pool.rearm(
                protocol,
                config,
                reset=True,
                global_inputs=global_inputs,
                per_shard_state=self._split_inputs(per_node_inputs),
                no_reset_shards=frozenset(dirty),
            )
            self.last_respawned_shards = tuple(dirty)
        else:
            self._pool.rearm(
                protocol,
                config,
                reset=True,
                global_inputs=global_inputs,
                per_shard_state=self._split_inputs(per_node_inputs),
            )
            self.last_respawned_shards = ()
        self.stats.rearms += 1
        setup_seconds = time.perf_counter() - setup_started

        run = ProcessShardedRun(
            network=network,
            protocol=protocol,
            config=config,
            contexts=contexts,
            plan=self.plan,
            pool=self._pool,
        )
        result = run.run()
        self._epoch = network.context_epoch
        total, cross = run.traffic_totals()
        self.stats.observe_phase(
            protocol.name,
            total,
            cross,
            run.boundary_bytes,
            run.barrier_rounds,
            setup_seconds,
        )
        return result

    # ------------------------------------------------------------------
    def execute_fused(
        self,
        protocols: Sequence[Protocol],
        *,
        config: Optional[CongestConfig] = None,
        reuse_contexts: bool = True,
    ) -> List[RunResult]:
        """Run a fused phase group: one pool re-arm for the whole group.

        The protocol sequence is shipped once (``arm-seq``); workers
        self-arm each follow-on phase right after its predecessor's
        ``finish-light`` report, overlapping the elided re-arm with the
        coordinator's output merge.  Context state stays worker-side until
        the group-final phase's full ``finish`` folds it back — so each
        phase still runs the exact round loop, metrics and outputs it
        would have run unfused, and a mid-group failure leaves the
        parent's contexts bit-identical to the group start (a supervised
        retry replays the *whole group* transactionally).
        """
        if self.closed:
            raise ProtocolError("execute_fused on a closed CongestSession")
        protocols = list(protocols)
        if not protocols:
            return []
        if len(protocols) == 1:
            return [
                self.execute(
                    protocols[0], config=config, reuse_contexts=reuse_contexts
                )
            ]
        try:
            return self._execute_fused(
                protocols,
                config if config is not None else self.config,
                reuse_contexts,
            )
        except BaseException as exc:
            self._teardown_pool(force=isinstance(exc, ShardWorkerTimeout))
            raise

    def _execute_fused(
        self,
        protocols: List[Protocol],
        config: CongestConfig,
        reuse_contexts: bool,
    ) -> List[RunResult]:
        self._check_config(config)
        network = self.network
        fingerprint = network.csr_fingerprint()
        if fingerprint != self._fingerprint:
            if not self._absorb_delta(fingerprint):
                invalidate_partition_cache(network)
                raise ProtocolError(
                    "the network mutated during an execution session: its CSR "
                    "fingerprint no longer matches the shard plan the session "
                    "was opened with, and the change is not explained by "
                    "Network.apply_delta (the partition memo has been "
                    "invalidated; open a new session on a freshly built "
                    "Network, or mutate through apply_delta so the session "
                    "can repair incrementally)"
                )
        external = self._epoch is None or network.context_epoch != self._epoch
        contexts = network.build_contexts(fresh=not reuse_contexts)

        if self._degraded or not any(self.plan.shards):
            return self._run_serial_group(protocols, config, contexts)

        plan_faults = config.fault_plan
        attempt = 0
        while True:
            attempt_config = config
            if plan_faults is not None and plan_faults.attempt != attempt:
                attempt_config = replace(
                    config, fault_plan=plan_faults.for_attempt(attempt)
                )
            try:
                return self._fused_on_pool(
                    protocols, attempt_config, reuse_contexts, external, contexts
                )
            except ShardWorkerError as exc:
                timed_out = isinstance(exc, ShardWorkerTimeout)
                self._teardown_pool(force=timed_out)
                policy = config.retry_policy
                if policy is None:
                    raise
                if attempt + 1 < policy.max_attempts:
                    action = "retry"
                elif policy.degrade:
                    action = "degrade"
                else:
                    action = "abort"
                self.stats.observe_recovery(
                    RecoveryEvent(
                        phase="+".join(p.name for p in protocols),
                        error="%s: %s" % (type(exc).__name__, exc),
                        action=action,
                        attempt=attempt,
                        timed_out=timed_out,
                    )
                )
                if action == "abort":
                    raise
                if action == "degrade":
                    self._degraded = True
                    if self.shared_csr is not None:
                        shared, self.shared_csr = self.shared_csr, None
                        shared.destroy()
                    return self._run_serial_group(protocols, config, contexts)
                attempt += 1
                delay = policy.delay_before(attempt)
                if delay > 0:
                    time.sleep(delay)

    def _run_serial_group(
        self,
        protocols: List[Protocol],
        config: CongestConfig,
        contexts: Dict[int, NodeContext],
    ) -> List[RunResult]:
        """Degradation target of a fused group: phase-by-phase, serial.

        The parent's contexts are bit-identical to the group start when
        this runs (the group-final fold never happened), so replaying the
        whole group serially is exactly the unfused composite — including
        the ``build_contexts(fresh=False)`` reset replay between phases.
        """
        results: List[RunResult] = []
        for i, protocol in enumerate(protocols):
            if i:
                contexts = self.network.build_contexts(fresh=False)
            results.append(self._run_serial(protocol, config, contexts))
        return results

    def _fused_on_pool(
        self,
        protocols: List[Protocol],
        config: CongestConfig,
        reuse_contexts: bool,
        external: bool,
        contexts: Dict[int, NodeContext],
    ) -> List[RunResult]:
        """One attempt of one fused group on the (spawned or re-armed) pool.

        Per-phase stats are buffered and flushed only after the group-final
        fold: a mid-group failure then records nothing, so a retry's replay
        cannot double-count phases that completed before the failure.
        """
        network = self.network
        setup_started = time.perf_counter()
        if self._pool is None or not reuse_contexts or external:
            self._teardown_pool()
            self._dirty_shards = None
            if self.shared_csr is None:
                self.shared_csr = SharedCSR.create(network, self.plan)
                self.stats.shm_bytes = self.shared_csr.nbytes
            handles = _spawn_workers(
                self.plan,
                self._ids,
                network.node_index_of,
                self._ordered,
                contexts,
                shared_csr=self.shared_csr,
            )
            self._pool = _WorkerPool(handles, config.worker_join_timeout)
            self._pool.rearm_sequence(protocols, config, reset=False)
            self.last_respawned_shards = tuple(
                handle.shard_index for handle in handles
            )
        elif self._dirty_shards is not None:
            dirty, self._dirty_shards = self._dirty_shards, None
            if self.shared_csr is None:
                self.shared_csr = SharedCSR.create(network, self.plan)
                self.stats.shm_bytes = self.shared_csr.nbytes
            self._respawn_shards(dirty, contexts)
            self._pool.rearm_sequence(
                protocols,
                config,
                reset=True,
                no_reset_shards=frozenset(dirty),
            )
            self.last_respawned_shards = tuple(dirty)
        else:
            self._pool.rearm_sequence(protocols, config, reset=True)
            self.last_respawned_shards = ()
        self.stats.rearms += 1
        self.stats.fused_phases += len(protocols) - 1
        setup_seconds = time.perf_counter() - setup_started

        results: List[RunResult] = []
        phase_stats: List[Tuple] = []
        last = len(protocols) - 1
        for i, protocol in enumerate(protocols):
            run = ProcessShardedRun(
                network=network,
                protocol=protocol,
                config=config,
                contexts=contexts,
                plan=self.plan,
                pool=self._pool,
                fold_contexts=i == last,
            )
            results.append(run.run())
            total, cross = run.traffic_totals()
            phase_stats.append(
                (
                    protocol.name,
                    total,
                    cross,
                    run.boundary_bytes,
                    run.barrier_rounds,
                    setup_seconds if i == 0 else 0.0,
                )
            )
        self._epoch = network.context_epoch
        for packed in phase_stats:
            self.stats.observe_phase(*packed)
        return results

    # ------------------------------------------------------------------
    def _absorb_delta(self, fingerprint: Tuple[int, int, int, int]) -> bool:
        """Reconcile the session with deltas applied via ``apply_delta``.

        Returns True when the fingerprint change is fully explained by the
        network's delta ledger above this session's watermark — in which
        case the shard plan is repaired *incrementally* around the touched
        nodes (:func:`repro.congest.sharding.partition.repair_plan`), the
        shared-memory CSR mapping is scheduled for rebuild, and only the
        dirty shards' workers are marked for respawn (full respawn when
        ownership moved, since every worker's routing tables embed the
        owner array).  Returns False — leaving the session untouched — for
        any divergence the ledger cannot account for.
        """
        network = self.network
        pending = network.deltas_since(self._delta_epoch)
        if not pending or pending[-1].fingerprint_after != fingerprint:
            return False
        index_of = network.node_index_of
        touched = tuple(
            sorted({index_of[v] for record in pending for v in record.touched})
        )
        # Plans memoised for the pre-delta topology must never be served
        # again; the repaired plan below belongs to the session, not the
        # global memo (a fresh caller recomputes from scratch).
        invalidate_partition_cache(network)
        old_plan = self.plan
        new_plan, dirty = repair_plan(network, old_plan, touched)
        self.plan = new_plan
        self._ordered = _ShardStepper.ranges_are_ordered(new_plan)
        self._fingerprint = fingerprint
        self._delta_epoch = network.delta_epoch
        self.stats.plans.append(new_plan)
        self.repairs += 1
        self.last_repair = (touched, dirty)
        # The mapping packs the CSR arrays, which just changed; drop it and
        # let the next spawn rebuild.  Unlink is safe while clean workers
        # stay attached — their mapping lives until they exit, and they
        # only ever read the id/owner tables, which are unchanged whenever
        # they are kept.
        if self.shared_csr is not None:
            shared, self.shared_csr = self.shared_csr, None
            shared.destroy()
        if self._pool is not None and new_plan.owner == old_plan.owner:
            self._dirty_shards = dirty
        else:
            # Ownership moved (or no pool yet): surviving workers would
            # hold stale owner tables, so everyone respawns.
            self._teardown_pool()
            self._dirty_shards = None
        return True

    def _respawn_shards(
        self, dirty: Tuple[int, ...], contexts: Dict[int, NodeContext]
    ) -> None:
        """Replace the workers of *dirty* shards, keeping every other one.

        Only valid when the plan's owner array is unchanged (checked by the
        caller via :meth:`_absorb_delta`): surviving workers keep their
        id→index and owner tables and their attachment to the retired shm
        segment, both still accurate.  The dirty shards' new workers attach
        the rebuilt segment and inherit the parent's (already patched and
        reset) contexts.
        """
        pool = self._pool
        dirty_set = set(dirty)
        keep = [h for h in pool.handles if h.shard_index not in dirty_set]
        drop = [h for h in pool.handles if h.shard_index in dirty_set]
        _reap(drop, pool.join_timeout)
        masked = replace(
            self.plan,
            shards=tuple(
                owned if shard in dirty_set else ()
                for shard, owned in enumerate(self.plan.shards)
            ),
        )
        fresh = _spawn_workers(
            masked,
            self._ids,
            self.network.node_index_of,
            self._ordered,
            contexts,
            shared_csr=self.shared_csr,
        )
        pool.handles = sorted(
            keep + fresh, key=lambda handle: handle.shard_index
        )

    # ------------------------------------------------------------------
    def _split_inputs(
        self, per_node_inputs: Optional[Dict[int, Dict[str, Any]]]
    ) -> Optional[Dict[int, Dict[int, Dict[str, Any]]]]:
        """Route per-node inputs to the shard that owns each node.

        Only reached after ``build_contexts`` accepted the same dict, so
        every id is known here.
        """
        if not per_node_inputs:
            return None
        index_of = self.network.node_index_of
        owner = self.plan.owner
        per_shard: Dict[int, Dict[int, Dict[str, Any]]] = {}
        for node_id, inputs in per_node_inputs.items():
            per_shard.setdefault(owner[index_of[node_id]], {})[node_id] = inputs
        return per_shard

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear down the pool and unlink the shared mapping (idempotent)."""
        if self.closed:
            return
        self.closed = True
        try:
            self._teardown_pool()
        finally:
            if self.shared_csr is not None:
                shared, self.shared_csr = self.shared_csr, None
                shared.destroy()
