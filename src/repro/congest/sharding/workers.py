"""Worker processes for the sharded engine's ``"process"`` backend.

One long-lived worker process per non-empty shard: the worker receives its
shard's contexts, the routing tables and the protocol once at startup, then
steps its frontier every round, exchanging only *boundary* traffic with the
coordinator at the round barrier — packed by
:mod:`repro.congest.sharding.wire` into flat arrays instead of pickled
per-message objects.  The coordinator (:class:`ProcessShardedRun`) keeps the
exact round-loop structure of the in-process sharded run: per-shard
:class:`repro.congest.metrics.RoundMetrics` partials are folded in ascending
shard order at the barrier, and termination, quiescence, the stall counter
and the round cap are evaluated centrally on the aggregated view — so the
process boundary is invisible to the engine contract (same outputs, same
round counts, same metrics, same exception types).

Protocol of one run (all traffic over one duplex pipe per worker)::

    coordinator                         worker
    -----------                         ------
    init payload  ────────────────────▶ build stepper + shard state
    ("start",)    ────────────────────▶ on_start + drain owned nodes
                  ◀──────────────────── ("ok", metrics, pending, open, batches)
    ("round", r, batches) ────────────▶ deliver + step + drain
                  ◀──────────────────── ("ok", metrics, pending, open, batches)
    ...                                 ...
    ("finish", r) ────────────────────▶ collect outputs + context state
                  ◀──────────────────── ("done", outputs, states, traffic)

A model-rule violation inside a worker (``CongestionViolation``,
``MessageSizeViolation``, ``ProtocolError``...) is pickled back and
re-raised by the coordinator with its original type.  A worker that dies
without reporting — hard crash, ``os._exit``, unpicklable exception — is
detected at the next ``recv`` (the pipe returns EOF) and surfaces as
:class:`repro.congest.errors.ShardWorkerError` instead of leaving the
barrier waiting on a corpse; a worker that is alive but stuck in protocol
code is deliberately *not* timed out, because it is indistinguishable from
a legitimately slow round (see the ``ShardWorkerError`` docstring).
Workers are daemonic and context-managed: every exit path of ``run``
closes the pipes (unblocking any worker still waiting on a command) and
joins, escalating to ``terminate`` only for processes that ignore the
EOF, so an ``execute`` call never leaks processes.

State round trip
----------------
The engine contract includes composite pipelines that chain protocols over
the same contexts (``reuse_contexts=True``), so after the final round every
worker ships back the mutable face of each owned context — ``state``,
``output``, halted flag, globals and the private RNG state — and the
coordinator folds it into the parent's context objects in place.  The cost
of that round trip is one pickle per run, not per round; everything a
protocol may put in per-node state must therefore be picklable (true for
every protocol in this package).
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
from array import array
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.congest.config import CongestConfig
from repro.congest.engine import RunResult
from repro.congest.errors import ShardWorkerError
from repro.congest.metrics import RoundMetrics, RunMetrics
from repro.congest.network import Network
from repro.congest.node import NodeContext, Protocol
from repro.congest.sharding.engine import (
    _ShardState,
    _ShardStepper,
    coordinator_should_stop,
    merge_startup_metrics,
)
from repro.congest.sharding.partition import ShardPlan
from repro.congest.sharding.wire import WireBatch, WireDecoder, WireEncoder

__all__ = ["ProcessShardedRun"]

#: Seconds a worker gets to exit after its pipe is closed before the pool
#: escalates to ``terminate``.  Generous: a healthy worker exits on EOF
#: immediately; only a worker stuck in protocol code ever waits this long.
_JOIN_TIMEOUT = 5.0


def _mp_context():
    """``fork`` when the platform offers it (cheap startup), else default.

    The fork start method also makes the per-worker init payload — the
    shard's contexts, the routing tables — free to ship: it travels as a
    ``Process`` argument, which fork passes by copy-on-write memory
    inheritance instead of pickling (measurably the dominant setup cost at
    n in the thousands: per-node RNG states alone pickle to ~2.5 KB each).
    Under spawn the same argument is pickled by ``Process.start``, which is
    simply the explicit-shipping behaviour.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _pack_rng_state(state) -> Tuple:
    """Compact a ``random.Random`` state for the wire.

    The default Mersenne state is ``(3, <625-tuple of uint32>, gauss)``;
    pickling 625 individual ints per node dominates the finish-time state
    round trip, so the tuple is flattened to one ``bytes`` object.  Any
    other shape (subclassed generators) passes through unpacked.
    """
    if state[0] == 3 and len(state[1]) == 625:
        return ("mt3", array("I", state[1]).tobytes(), state[2])
    return ("raw", state)


def _unpack_rng_state(packed: Tuple):
    if packed[0] == "mt3":
        internal = array("I")
        internal.frombytes(packed[1])
        return (3, tuple(internal), packed[2])
    return packed[1]


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _WorkerHarness:
    """One shard's round machinery inside its worker process."""

    def __init__(self, init: Dict[str, Any], protocol: Protocol) -> None:
        # The stepper is the same class the in-process backends use; only
        # this shard's slots of the dense context list are populated.
        ctx_list: List[Optional[NodeContext]] = [None] * init["n"]
        for dense_index, ctx in init["contexts"].items():
            ctx_list[dense_index] = ctx
        self.stepper = _ShardStepper(
            protocol=protocol,
            config=init["config"],
            ctx_list=ctx_list,
            index_of=init["index_of"],
            owner=init["owner"],
            ordered_delivery=init["ordered_delivery"],
        )
        self.shard = _ShardState(
            init["shard_index"], init["owned"], init["n_shards"]
        )
        # One wire channel per (this shard → destination) and per
        # (source → this shard); kind-interning tables stay synchronized
        # because batches travel and decode in round order.
        self.encoders: Dict[int, WireEncoder] = {}
        self.decoders: Dict[int, WireDecoder] = {}

    # ------------------------------------------------------------------
    def _report(self, rm: RoundMetrics) -> Tuple:
        """Pack one round's results for the coordinator."""
        shard = self.shard
        batches: List[Tuple[int, WireBatch]] = []
        out_buckets = shard.out_buckets
        for destination, (indices, inbounds) in enumerate(out_buckets):
            if not indices:
                continue
            encoder = self.encoders.get(destination)
            if encoder is None:
                encoder = self.encoders[destination] = WireEncoder()
            batches.append((destination, encoder.encode(indices, inbounds)))
            out_buckets[destination] = ([], [])
        stepper = self.stepper
        if stepper.fast_finished:
            open_nodes = len(shard.frontier)
        else:
            finished = stepper.protocol.finished
            ctx_list = stepper.ctx_list
            open_nodes = sum(
                1 for i in shard.owned if not finished(ctx_list[i])
            )
        packed_metrics = (
            rm.messages_sent,
            rm.bits_sent,
            rm.max_message_bits,
            rm.edges_used,
            rm.active_nodes,
        )
        return (
            "ok",
            packed_metrics,
            len(shard.pending_index),
            open_nodes,
            batches,
        )

    def start(self) -> Tuple:
        return self._report(self.stepper.start_shard(self.shard))

    def step(
        self, rounds: int, incoming: Sequence[Tuple[int, WireBatch]]
    ) -> Tuple:
        shard = self.shard
        for source, batch in incoming:
            decoder = self.decoders.get(source)
            if decoder is None:
                decoder = self.decoders[source] = WireDecoder()
            shard.remote_from[source] = decoder.decode(batch)
        return self._report(self.stepper.step_shard(shard, rounds))

    def finish(self, rounds: int) -> Tuple:
        stepper = self.stepper
        ctx_list = stepper.ctx_list
        protocol = stepper.protocol
        outputs: Dict[int, Any] = {}
        states: Dict[int, Tuple] = {}
        for i in self.shard.owned:
            ctx = ctx_list[i]
            ctx._round = rounds
            outputs[ctx.node_id] = protocol.collect_output(ctx)
            states[ctx.node_id] = (
                ctx.state,
                ctx.output,
                ctx._halted,
                ctx.globals,
                _pack_rng_state(ctx._rng.getstate())
                if ctx._rng is not None
                else None,
            )
        traffic = (self.shard.local_messages, self.shard.remote_messages)
        return ("done", outputs, states, traffic)


def _send_error(conn, exc: BaseException) -> None:
    """Ship an exception to the coordinator, degrading to text if needed."""
    try:
        conn.send(("error", exc))
    except Exception:
        try:
            conn.send(("error_text", type(exc).__name__, str(exc)))
        except Exception:  # pragma: no cover - pipe already gone
            pass


def _worker_main(conn, init: Dict[str, Any]) -> None:
    """Entry point of one worker process (module-level: spawn-safe).

    *init* — the shard's contexts and routing tables — arrives as a process
    argument: free under fork (memory inheritance), pickled by ``start``
    under spawn.  The protocol object alone still arrives over the pipe, so
    "process-backend protocols must be picklable" holds on every platform.
    """
    harness: Optional[_WorkerHarness] = None
    try:
        while True:
            try:
                command = conn.recv()
            except (EOFError, OSError):
                break  # coordinator went away; nothing left to do
            op = command[0]
            try:
                if op == "init":
                    harness = _WorkerHarness(init, command[1])
                    continue  # no response: the coordinator pipelines start
                if op == "start":
                    response = harness.start()
                elif op == "round":
                    response = harness.step(command[1], command[2])
                elif op == "finish":
                    conn.send(harness.finish(command[1]))
                    break
                else:  # "abort" or anything unrecognized: exit quietly
                    break
            except BaseException as exc:
                _send_error(conn, exc)
                break
            try:
                conn.send(response)
            except (BrokenPipeError, OSError):
                break  # coordinator aborted mid-report
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------
class _WorkerHandle:
    __slots__ = ("shard_index", "process", "conn")

    def __init__(self, shard_index: int, process, conn) -> None:
        self.shard_index = shard_index
        self.process = process
        self.conn = conn


def _reap(handles: List[_WorkerHandle]) -> None:
    """Tear down workers: close pipes, join, escalate to terminate.

    Closing the pipe first unblocks any worker waiting in ``recv`` (it
    exits on the EOF); a worker that ignores the EOF past the join timeout
    is terminated.  ``Process.close`` releases the fds eagerly rather than
    at garbage collection, which keeps ``active_children()`` truthful —
    the per-execute leak regression in ``tests/test_sharding.py`` relies
    on it.
    """
    for handle in handles:
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
    for handle in handles:
        handle.process.join(timeout=_JOIN_TIMEOUT)
        if handle.process.is_alive():  # pragma: no cover - stuck worker
            handle.process.terminate()
            handle.process.join()
        handle.process.close()


class _WorkerPool:
    """Context manager owning the worker processes of one execution.

    Guarantees that no worker outlives the ``execute`` call that spawned
    it: every exit path runs :func:`_reap`.  The engine registry shares one
    ``ShardedEngine`` singleton across all callers, so pool lifetime must
    be bound to the run, never the engine.
    """

    def __init__(self, handles: List[_WorkerHandle]) -> None:
        self.handles = handles

    def __enter__(self) -> "_WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _reap(self.handles)


class ProcessShardedRun:
    """One process-backed sharded execution (the ``"process"`` backend).

    Mirrors the in-process ``_ShardedRun`` coordinator loop exactly —
    startup barrier, per-round fold in ascending shard order, the same
    termination / quiescence / stall / round-cap decisions — but the
    shards live in worker processes and boundary buckets cross the barrier
    as packed :class:`repro.congest.sharding.wire.WireBatch` columns.

    Attributes
    ----------
    boundary_bytes / barrier_rounds:
        Packed boundary traffic shipped over the run and the number of
        barriers (startup plus one per round); feeds
        :class:`repro.congest.sharding.engine.ShardingStats` and the E15
        benchmark's bytes-per-round report.
    """

    def __init__(
        self,
        network: Network,
        protocol: Protocol,
        config: CongestConfig,
        contexts: Dict[int, NodeContext],
        plan: ShardPlan,
    ) -> None:
        self.network = network
        self.protocol = protocol
        self.config = config
        self.contexts = contexts
        self.plan = plan
        ids, _indptr, _indices = network.csr()
        self.ids = ids
        self.index_of = network.node_index_of
        self.ordered_delivery = _ShardStepper.ranges_are_ordered(plan)
        self.quiesce_ok = bool(getattr(protocol, "quiesce_terminates", False))
        self.fast_finished = type(protocol).finished is Protocol.finished
        self.boundary_bytes = 0
        self.barrier_rounds = 0
        self._traffic: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------
    def traffic_totals(self) -> Tuple[int, int]:
        """(protocol messages, cross-shard messages) over the whole run."""
        local = sum(pair[0] for pair in self._traffic)
        remote = sum(pair[1] for pair in self._traffic)
        return local + remote, remote

    # ------------------------------------------------------------------
    def _spawn(self) -> List[_WorkerHandle]:
        context = _mp_context()
        handles: List[_WorkerHandle] = []
        ids = self.ids
        init_common = {
            "n": len(ids),
            "n_shards": self.plan.n_shards,
            "index_of": self.index_of,
            "owner": self.plan.owner,
            "ordered_delivery": self.ordered_delivery,
            "config": self.config,
        }
        for shard_index, owned in enumerate(self.plan.shards):
            if not owned:
                continue
            # The shard's contexts ride as a Process argument: inherited
            # for free under fork, pickled by start() under spawn.
            init = dict(init_common)
            init.update(
                shard_index=shard_index,
                owned=owned,
                contexts={i: self.contexts[ids[i]] for i in owned},
            )
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_worker_main,
                args=(child_conn, init),
                name="repro-shard-%d" % shard_index,
                daemon=True,
            )
            try:
                process.start()
            except Exception as exc:  # spawn-mode pickling failures
                _reap(handles)
                raise ShardWorkerError(
                    "failed to ship shard %d to its worker process: %s "
                    "(process-backend per-node state must be picklable)"
                    % (shard_index, exc)
                ) from exc
            child_conn.close()
            handles.append(_WorkerHandle(shard_index, process, parent_conn))
        return handles

    def _initialize(self, handles: List[_WorkerHandle]) -> None:
        """Ship each worker the protocol (called inside the pool context, so
        a failed ship — an unpicklable protocol, a dead worker — still tears
        every process down)."""
        for handle in handles:
            try:
                handle.conn.send(("init", self.protocol))
            except Exception as exc:
                raise ShardWorkerError(
                    "failed to ship the protocol to the shard %d worker: %s "
                    "(process-backend protocols and per-node state must be "
                    "picklable)" % (handle.shard_index, exc)
                ) from exc

    def _send(self, handle: _WorkerHandle, command: Tuple) -> None:
        """Send a command, surfacing a dead worker as the documented error.

        A worker can die *between* barriers (OOM kill, segfault) with its
        last report already buffered — the next send then hits a broken
        pipe, which must surface as :class:`ShardWorkerError` like every
        other worker-death path, not as a raw ``OSError`` that escapes the
        ``CongestError`` hierarchy callers catch uniformly.
        """
        try:
            handle.conn.send(command)
        except (BrokenPipeError, OSError) as exc:
            raise ShardWorkerError(
                "worker process for shard %d (pid %s) died before %r"
                % (handle.shard_index, handle.process.pid, command[0])
            ) from exc

    def _recv(self, handle: _WorkerHandle) -> Tuple:
        try:
            message = handle.conn.recv()
        except (EOFError, OSError):
            raise ShardWorkerError(
                "worker process for shard %d (pid %s) died without reporting"
                % (handle.shard_index, handle.process.pid)
            ) from None
        except Exception as exc:
            # The report pickled on the worker side but failed to decode
            # here — e.g. a protocol's custom exception whose __init__
            # takes structured arguments but whose default reduction
            # replays the formatted message (the trap this package's own
            # violations dodge via __reduce__).  Surface the decode
            # failure instead of letting an unrelated TypeError mask it.
            raise ShardWorkerError(
                "report from the shard %d worker could not be decoded: %s: %s"
                % (handle.shard_index, type(exc).__name__, exc)
            ) from exc
        op = message[0]
        if op == "error":
            raise message[1]
        if op == "error_text":
            raise ShardWorkerError(
                "worker process for shard %d failed with unpicklable "
                "%s: %s" % (handle.shard_index, message[1], message[2])
            )
        return message

    def _barrier(
        self,
        handles: List[_WorkerHandle],
        into: RoundMetrics,
        routed: Dict[int, List[Tuple[int, WireBatch]]],
    ) -> Tuple[int, int]:
        """Collect one round's reports in ascending shard order.

        Folds the packed metrics partials into *into*, stages each outbound
        batch for its destination worker in *routed*, and returns
        ``(in_flight, open_nodes)`` — pending local deliveries plus routed
        boundary deliveries, and the surviving frontier size (or unfinished
        count on the compatibility path).
        """
        in_flight = 0
        open_nodes = 0
        barrier_bytes = 0
        for handle in handles:
            _op, packed, pending_local, shard_open, batches = self._recv(handle)
            messages_sent, bits_sent, max_bits, edges_used, active = packed
            into.messages_sent += messages_sent
            into.bits_sent += bits_sent
            into.edges_used += edges_used
            into.active_nodes += active
            if max_bits > into.max_message_bits:
                into.max_message_bits = max_bits
            in_flight += pending_local
            open_nodes += shard_open
            for destination, batch in batches:
                routed.setdefault(destination, []).append(
                    (handle.shard_index, batch)
                )
                in_flight += batch.deliveries
                barrier_bytes += batch.wire_bytes()
        self.boundary_bytes += barrier_bytes
        self.barrier_rounds += 1
        return in_flight, open_nodes

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        # The termination decisions and the round-1 startup-metrics merge
        # are the shared helpers of sharding/engine.py — evaluated here on
        # worker-reported aggregates, in _ShardedRun on local state — so
        # the engine contract's round counts cannot drift between the
        # coordinators.
        config = self.config
        metrics = RunMetrics()
        rounds = 0
        with _WorkerPool(self._spawn()) as pool:
            handles = pool.handles
            self._initialize(handles)
            for handle in handles:
                self._send(handle, ("start",))
            startup_metrics = RoundMetrics(round_index=0)
            routed: Dict[int, List[Tuple[int, WireBatch]]] = {}
            in_flight, open_nodes = self._barrier(
                handles, startup_metrics, routed
            )
            startup_metrics.edges_used = 0  # startup edges are not counted
            startup_metrics.active_nodes = 0

            silent_rounds = 0
            while True:
                stop, silent_rounds = coordinator_should_stop(
                    open_nodes == 0,
                    in_flight,
                    rounds,
                    silent_rounds,
                    self.quiesce_ok,
                    config.max_rounds,
                    self.protocol.name,
                )
                if stop:
                    break

                rounds += 1
                round_metrics = RoundMetrics(round_index=rounds)
                if rounds == 1:
                    merge_startup_metrics(round_metrics, startup_metrics)
                outgoing, routed = routed, {}
                for handle in handles:
                    self._send(
                        handle,
                        ("round", rounds, outgoing.get(handle.shard_index, [])),
                    )
                in_flight, open_nodes = self._barrier(
                    handles, round_metrics, routed
                )
                metrics.absorb_round(round_metrics, config.record_round_metrics)

            # Harvest: outputs plus the mutable context state, folded back
            # into the parent's context objects so composite pipelines
            # (reuse_contexts=True) chain across engines transparently.
            merged_outputs: Dict[int, Any] = {}
            for handle in handles:
                self._send(handle, ("finish", rounds))
            for handle in handles:
                _op, outputs, states, traffic = self._recv(handle)
                merged_outputs.update(outputs)
                self._traffic.append(traffic)
                for node_id, packed_state in states.items():
                    state, output, halted, globals_, rng_state = packed_state
                    ctx = self.contexts[node_id]
                    ctx.state.clear()
                    ctx.state.update(state)
                    ctx.output = output
                    ctx._halted = halted
                    ctx._round = rounds
                    ctx._outgoing = {}
                    ctx.globals.clear()
                    ctx.globals.update(globals_)
                    if rng_state is not None and ctx._rng is not None:
                        ctx._rng.setstate(_unpack_rng_state(rng_state))

        outputs = {node_id: merged_outputs[node_id] for node_id in self.contexts}
        return RunResult(outputs=outputs, metrics=metrics, contexts=self.contexts)
