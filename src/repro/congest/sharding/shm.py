"""Shared-memory CSR segments for the process backend's sessions.

The process backend's workers need the network's dense-index tables — the
node-id column of the CSR, the adjacency arrays and the shard owner map —
to route messages.  Per-``execute`` pools receive them as spawn arguments
(free under fork, pickled under spawn, but paid again for every phase of a
composite pipeline).  A persistent session instead packs them **once**
into a single :mod:`multiprocessing.shared_memory` segment; every worker
of every phase attaches to the same mapping, so a 14-phase pipeline ships
the tables exactly once regardless of how often the pool is (re)spawned —
and under spawn start methods nothing is pickled at all.

The wire format's flat ``array('q')`` columns (:mod:`.wire`) are exactly
the shape a shared mapping wants, so the segment is one int64 vector::

    header  q[2]   n (nodes), m (directed CSR entries)
    ids     q[n]   node id at dense index i (ascending)
    indptr  q[n+1] CSR row pointers
    indices q[m]   CSR column indices (dense)
    owner   q[n]   owning shard of dense index i (the ShardPlan's owner)

Today's fork-started workers consume ``ids`` (unpacked into the id→index
routing dict) and ``owner``; the adjacency columns (``indptr`` /
``indices``) are mapped but unread, because each context ships its own
neighbour tuple by fork inheritance.  They are packed anyway — ~8·m bytes
once per session — because they are the payload the spawn-path and
context-slimming follow-ups consume (deriving ``neighbors`` from the
mapping instead of pickling it per context; see the ROADMAP's
"context state in shared memory" item), and growing the segment later
would force a layout version.

Lifetime and the unlink guarantee
---------------------------------
The session that calls :meth:`SharedCSR.create` owns the segment and must
call :meth:`SharedCSR.destroy` (sessions do, on every close path).  Two
further guards make the unlink hold on abnormal exits:

* every created segment is recorded in a module registry whose
  ``atexit`` hook unlinks anything still live at interpreter shutdown
  (a session abandoned without ``close`` leaks nothing past the process);
* a *hard* crash (``os._exit``, SIGKILL) skips ``atexit``, but
  ``SharedMemory(create=True)`` registers with the CPython resource
  tracker, a separate process that unlinks the segment when it observes
  the creator die — the regression test kills a creator with ``os._exit``
  and asserts the segment disappears.

Workers only ever :meth:`SharedCSR.attach`; attachments are *untracked*
(via ``track=False`` on Python 3.13+, by unregistering from the resource
tracker otherwise) so a worker's exit can neither unlink the segment out
from under its siblings nor double-count it in the tracker.
"""

from __future__ import annotations

import atexit
import os
import threading
from array import array
from multiprocessing import shared_memory
from typing import Dict, List

from repro.congest.network import Network
from repro.congest.sharding.partition import ShardPlan

__all__ = ["SharedCSR"]

#: Mappings created by this process that have not been destroyed yet,
#: unlinked by the ``atexit`` hook below as a last resort.  The registry
#: holds the owning :class:`SharedCSR` objects, not the raw segments: an
#: abandoned mapping still exports memoryviews into its buffer, and only
#: ``SharedCSR.destroy`` knows to release them before closing (a raw
#: ``segment.close()`` would raise ``BufferError`` and skip the unlink).
_LIVE_SEGMENTS: Dict[str, "SharedCSR"] = {}


def _unlink_leaked_segments() -> None:  # pragma: no cover - shutdown path
    for mapping in list(_LIVE_SEGMENTS.values()):
        try:
            mapping.destroy()
        except Exception:
            pass
    _LIVE_SEGMENTS.clear()


atexit.register(_unlink_leaked_segments)

#: Serializes segment creation against the pre-3.13 attach fallback below,
#: whose register-suppressing patch is process-global: a create overlapping
#: that window would silently skip its own resource-tracker registration
#: and lose the crash-unlink guarantee.
_TRACKER_PATCH_LOCK = threading.Lock()


def _reset_after_fork() -> None:  # pragma: no cover - runs in fork children
    # A fork can snapshot the lock in its held state (another thread mid
    # create/attach); the child would then deadlock on its first attach.
    # Fork children get a fresh lock and an empty creator registry — a
    # child never owns the parent's segments, so its inherited atexit hook
    # must not unlink them either.
    global _TRACKER_PATCH_LOCK
    _TRACKER_PATCH_LOCK = threading.Lock()
    _LIVE_SEGMENTS.clear()


if hasattr(os, "register_at_fork"):  # POSIX; spawn children re-import anyway
    os.register_at_fork(after_in_child=_reset_after_fork)


def _attach_untracked(name: str) -> "shared_memory.SharedMemory":
    """Attach to an existing segment without resource-tracker registration.

    Python 3.13 has ``track=False`` for exactly this.  Before that, POSIX
    ``SharedMemory(name=...)`` registers every *attach* with the resource
    tracker, whose cache is a set keyed by segment name — so a worker's
    attach would alias the creator's entry and the first unregister (from
    any process sharing the tracker) would strand the other, producing
    spurious KeyError noise at tracker shutdown.  Suppressing the register
    call during attach reproduces the 3.13 semantics: only the creator's
    registration exists, and only the creator's unlink clears it.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        from multiprocessing import resource_tracker

        with _TRACKER_PATCH_LOCK:
            original_register = resource_tracker.register
            resource_tracker.register = lambda *args, **kwargs: None
            try:
                return shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original_register


class SharedCSR:
    """One shared-memory mapping of a network's CSR plus the owner table.

    Construct through :meth:`create` (the session side, which owns the
    segment) or :meth:`attach` (the worker side, which only maps it).  The
    int64 columns are exposed as zero-copy ``memoryview`` casts; workers
    typically unpack ``ids`` into an id→index dict and ``owner`` into a
    list once per spawn — the point of the segment is that those bytes
    cross the process boundary as one mapping instead of one pickle per
    worker per phase.
    """

    def __init__(
        self, segment: "shared_memory.SharedMemory", n: int, m: int, owns: bool
    ) -> None:
        self._segment = segment
        self._owns = owns
        self._closed = False
        self.n = n
        self.m = m
        self._views: List[memoryview] = []
        base = memoryview(segment.buf)
        self._views.append(base)
        offset = 16  # header: q[2]
        self.ids = self._cast(base, offset, n)
        offset += 8 * n
        self.indptr = self._cast(base, offset, n + 1)
        offset += 8 * (n + 1)
        self.indices = self._cast(base, offset, m)
        offset += 8 * m
        self.owner = self._cast(base, offset, n)

    def _cast(self, base: memoryview, offset: int, count: int) -> memoryview:
        view = base[offset : offset + 8 * count].cast("q")
        self._views.append(view)
        return view

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, network: Network, plan: ShardPlan) -> "SharedCSR":
        """Pack *network*'s CSR and *plan*'s owner table into a new segment."""
        ids, indptr, indices = network.csr()
        n = len(ids)
        m = len(indices)
        columns = array("q", [n, m])
        columns.extend(ids)
        columns.extend(indptr)
        columns.extend(indices)
        columns.extend(plan.owner)
        raw = columns.tobytes()
        with _TRACKER_PATCH_LOCK:
            segment = shared_memory.SharedMemory(
                create=True, size=max(1, len(raw))
            )
        segment.buf[: len(raw)] = raw
        mapping = cls(segment, n, m, owns=True)
        _LIVE_SEGMENTS[segment.name] = mapping
        return mapping

    @classmethod
    def attach(cls, name: str) -> "SharedCSR":
        """Map an existing segment by name (worker side; never unlinks)."""
        segment = _attach_untracked(name)
        header = memoryview(segment.buf)[:16].cast("q")
        n, m = header[0], header[1]
        header.release()
        return cls(segment, n, m, owns=False)

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The segment name workers attach by."""
        return self._segment.name

    @property
    def nbytes(self) -> int:
        """Bytes of packed tables in the mapping (the E16 report figure)."""
        return 8 * (2 + self.n + (self.n + 1) + self.m + self.n)

    def build_index_of(self) -> Dict[int, int]:
        """The id → dense-index table, unpacked from the ``ids`` column."""
        ids = self.ids
        return {ids[i]: i for i in range(self.n)}

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the local mapping (does not unlink; idempotent)."""
        if self._closed:
            return
        self._closed = True
        for view in self._views:
            view.release()
        self._views = []
        self._segment.close()

    def __del__(self) -> None:
        # Views must be released before the segment's mmap can close;
        # without this, an abandoned mapping dies in whatever order the GC
        # picks and SharedMemory.__del__ raises "exported pointers exist".
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter shutdown
            pass

    def destroy(self) -> None:
        """Close and, if this side created the segment, unlink it.

        The unlink runs even when the close fails — removing the name is
        the part with cross-process consequences.
        """
        try:
            self.close()
        finally:
            if self._owns:
                self._owns = False
                _LIVE_SEGMENTS.pop(self._segment.name, None)
                try:
                    self._segment.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
