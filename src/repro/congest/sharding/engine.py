"""Partition-parallel execution of the synchronous round loop.

:class:`ShardedEngine` (``engine="sharded"``) splits the network into ``k``
shards with :func:`repro.congest.sharding.partition.partition_network` and
steps each shard's frontier independently within a round, exchanging the
messages that cross a shard boundary at the round barrier.  Per shard the
machinery is the :class:`repro.congest.engine.BatchedEngine` design — dense
CSR indices, reused inbox buffers, per-sender ``Inbound`` interning, an
incremental active frontier — restricted to the shard's owned nodes.

**The engine contract applies** (module docstring of
:mod:`repro.congest.engine`): outputs, round count and protocol
message/bit metrics — including the per-round trace — are bit-identical to
:class:`repro.congest.engine.ReferenceEngine` for every shard count,
strategy and execution backend, and the model rules raise the same
:class:`repro.congest.errors.MessageSizeViolation` /
:class:`repro.congest.errors.CongestionViolation` types from the shard-local
drain.  Two mechanisms make the partition invisible:

* *Inbox-order repair.*  Within one shard, nodes drain in ascending dense
  index, so a receiver's inbox arrives grouped by sender ascending — the
  contract order — for free.  Senders owned by *other* shards arrive at the
  barrier in source-shard order, so any inbox that received boundary mail is
  stably re-sorted by sender id before delivery (stability preserves the
  per-sender send order; a sender's messages all originate in one shard).
* *Barrier-time aggregation.*  Round metrics are accumulated per shard and
  folded in ascending shard order at the barrier — sums for message/bit
  counts, ``max`` for the message-size peak — so the global
  :class:`repro.congest.metrics.RoundMetrics` equals the reference's
  regardless of how the round's work was interleaved.  Termination (all
  frontiers empty, no messages in flight), quiescence and the stall counter
  are evaluated by the coordinator on the aggregated view, exactly like the
  single-shard engines.

Execution backends (``CongestConfig.shard_backend``)
----------------------------------------------------
``"thread"`` (the default)
    In-process execution.  ``shard_workers <= 1`` steps the shards
    sequentially in ascending shard order — fully deterministic, which is
    what the differential harness runs.  ``shard_workers >= 2`` steps the
    shards on a thread pool; shard state is disjoint by construction (a
    shard only touches the contexts and inbox buffers of the nodes it owns,
    and writes cross-shard messages into its own per-destination buckets),
    so the pool only changes wall-clock interleaving, never the result.
    Thread mode is GIL-bound: its wall-clock winnings are cache locality,
    not parallelism.

``"serial"``
    Force the sequential mode regardless of ``shard_workers``.

``"process"``
    True multi-core execution (:mod:`repro.congest.sharding.workers`): one
    long-lived worker process per non-empty shard owns that shard's
    contexts, CSR slice and inbox buffers for the whole run; only boundary
    traffic crosses the round barrier, packed by
    :mod:`repro.congest.sharding.wire` into flat arrays instead of pickled
    per-message objects.  Requires the protocol object and all per-node
    state to be picklable.  Model-rule violations cross the process
    boundary with their in-process exception types; a worker that dies
    without reporting raises
    :class:`repro.congest.errors.ShardWorkerError` instead of hanging the
    barrier.

Note that a *protocol* mutating shared instrumentation state in its
callbacks (for example a test harness appending to one global log) will
observe a nondeterministic interleaving under thread mode and fully
isolated per-worker copies under process mode; per-node outputs and metrics
remain bit-identical in every backend.  Pools of either kind are created
per ``execute`` call and torn down before it returns — the registry's
shared engine singleton never holds live workers.
"""

from __future__ import annotations

import operator
from concurrent.futures import ThreadPoolExecutor
from contextlib import ExitStack
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.congest.config import CongestConfig
from repro.congest.engine import (
    _EMPTY_INBOX,
    _STALL_LIMIT,
    CongestSession,
    Engine,
    RunResult,
    register_engine,
)
from repro.congest.errors import (
    CongestionViolation,
    MessageSizeViolation,
    ProtocolError,
    RoundLimitExceeded,
)
from repro.congest.message import Inbound
from repro.congest.metrics import RoundMetrics, RunMetrics
from repro.congest.network import Network
from repro.congest.node import NodeContext, Protocol
from repro.congest.sharding.faults import SimulatedFaults
from repro.congest.sharding.partition import (
    ShardPlan,
    cached_partition,
)

#: Execution backends accepted by ``CongestConfig.shard_backend`` and the
#: engine's ``backend=`` constructor argument.
SHARD_BACKENDS: Tuple[str, ...] = ("serial", "thread", "process")

#: Stable-sort key restoring the contract's ascending-sender inbox order
#: (C-implemented: this runs on every boundary inbox every round).
_sender_key = operator.attrgetter("sender")


def coordinator_should_stop(
    all_done: bool,
    in_flight: int,
    rounds: int,
    silent_rounds: int,
    quiesce_ok: bool,
    max_rounds: Optional[int],
    protocol_name: str,
) -> Tuple[bool, int]:
    """The sharded coordinators' termination decision, in one place.

    Evaluated at the top of every round on the barrier-aggregated view;
    shared verbatim by the in-process coordinator (:class:`_ShardedRun`)
    and the process-backend coordinator
    (:class:`repro.congest.sharding.workers.ProcessShardedRun`) so the
    engine contract's round counts cannot drift between them.  Returns
    ``(stop, new_silent_rounds)``; raises
    :class:`repro.congest.errors.ProtocolError` on a stall and
    :class:`repro.congest.errors.RoundLimitExceeded` at the round cap —
    mirroring the single-shard engines exactly.
    """
    if all_done and not in_flight:
        return True, silent_rounds
    if not in_flight and rounds > 0 and quiesce_ok:
        return True, silent_rounds
    if not in_flight and rounds > 0:
        silent_rounds += 1
        if silent_rounds >= _STALL_LIMIT:
            raise ProtocolError(
                "protocol %r stalled: no messages in flight, nodes "
                "not finished, after %d silent rounds"
                % (protocol_name, silent_rounds)
            )
    else:
        silent_rounds = 0
    if max_rounds is not None and rounds >= max_rounds:
        raise RoundLimitExceeded(max_rounds)
    return False, silent_rounds


def merge_startup_metrics(round_metrics: RoundMetrics, startup: RoundMetrics) -> None:
    """Fold round-0 (``on_start``) traffic into the first round's metrics.

    Messages queued during ``on_start`` are delivered in round 1 and
    accounted to it, exactly as in the single-shard engines; shared by both
    sharded coordinators.
    """
    round_metrics.messages_sent = startup.messages_sent
    round_metrics.bits_sent = startup.bits_sent
    round_metrics.max_message_bits = startup.max_message_bits


class _ShardState:
    """All mutable per-shard state of one sharded execution.

    A shard owns a subset of the dense indices; during a round it reads and
    writes only the contexts and inbox buffers of its owned nodes plus its
    own outbound buckets, which is the disjointness that makes thread-mode
    execution safe without locks — and process-mode execution possible with
    no shared memory at all.
    """

    __slots__ = (
        "index",
        "owned",
        "frontier",
        "pending_index",
        "pending_inbound",
        "remote_from",
        "out_buckets",
        "interned",
        "touched",
        "remote_messages",
        "local_messages",
    )

    def __init__(self, index: int, owned: Sequence[int], n_shards: int) -> None:
        self.index = index
        self.owned: Tuple[int, ...] = tuple(owned)
        self.frontier: List[int] = []
        # Shard-local deliveries (receiver owned by this shard), as the
        # batched engine's two parallel flat lists.
        self.pending_index: List[int] = []
        self.pending_inbound: List[Inbound] = []
        # Boundary deliveries routed *to* this shard at the last barrier,
        # kept grouped by source shard so delivery can walk the groups in
        # ascending sender order (see ``_ShardStepper.step_shard``).
        # Each group is two parallel flat lists (receiver index / Inbound),
        # like the local pending lists — no tuple per boundary message.
        self.remote_from: List[Tuple[List[int], List[Inbound]]] = [
            ([], []) for _ in range(n_shards)
        ]
        # Boundary messages produced by this shard, bucketed by destination,
        # in the same parallel-list shape.
        self.out_buckets: List[Tuple[List[int], List[Inbound]]] = [
            ([], []) for _ in range(n_shards)
        ]
        # Per-sender Inbound intern cache, reset every round (per shard:
        # senders are owned by exactly one shard).
        self.interned: Dict[int, Dict[int, Inbound]] = {}
        self.touched: List[int] = []
        self.remote_messages = 0
        self.local_messages = 0

    def out_bucket_total(self) -> int:
        return sum(len(indices) for indices, _ in self.out_buckets)

    def remote_total(self) -> int:
        return sum(len(indices) for indices, _ in self.remote_from)


@dataclass
class SessionPhaseStats:
    """One ``execute`` of a session, as the session's stats record it."""

    label: str
    protocol_messages: int
    cross_shard_messages: int
    boundary_bytes: int
    barrier_rounds: int
    setup_seconds: float


@dataclass
class RecoveryEvent:
    """One worker failure a supervised session observed, and its outcome.

    ``action`` is what the retry loop decided: ``"retry"`` (the phase was
    replayed on a fresh pool), ``"degrade"`` (attempts exhausted, the
    session fell back to the serial sharded backend) or ``"abort"`` (no
    policy, or a policy with ``degrade=False`` out of attempts — the error
    escaped to the caller).  ``attempt`` is the 0-based attempt that
    failed; ``timed_out`` marks failures surfaced by the barrier watchdog
    (:class:`repro.congest.errors.ShardWorkerTimeout`).
    """

    phase: str
    error: str
    action: str
    attempt: int
    timed_out: bool


class ShardingStats:
    """Cross-shard traffic accounting for one or more sharded executions.

    Populated by :class:`ShardedEngine` when constructed with
    ``collect_stats=True`` (the registry instance does not collect, keeping
    it stateless) and by persistent sessions, which expose an instance as
    :attr:`repro.congest.engine.CongestSession.stats`; the E14/E15/E16
    benchmarks use this to report the cut-edge message fraction per
    partitioner strategy, the serialized boundary traffic of the process
    backend, and the per-phase setup cost a session amortises.

    Attributes
    ----------
    boundary_bytes / barrier_rounds:
        Packed wire bytes shipped across round barriers and the number of
        barriers that shipped them.  Only the process backend serializes
        boundary traffic, so both stay zero for the in-process backends.
    setup_seconds:
        Coordinator-side seconds spent on per-``execute`` setup (worker
        spawn, arming) summed over the recorded runs — the figure the E16
        benchmark divides by phases.
    shm_bytes:
        Bytes of CSR/owner tables held in the session's shared-memory
        mapping (zero outside persistent process sessions).
    phases:
        Per-``execute`` partials (:class:`SessionPhaseStats`), appended by
        sessions in phase order; the counters above are the session totals.
    rearms / fused_phases:
        Pool-wide protocol ships (one per ``arm``/``arm-seq`` that crossed
        the pipes) and re-arms *elided* by the pipeline compiler's phase
        fusion (``len(group) - 1`` per fused group).  Under full fusion a
        composite's ``rearms`` stays strictly below its phase count — the
        invariant ``tests/test_sharding.py`` pins.
    worker_failures / timeouts / retries / degradations / recovery_events:
        The fault-tolerance ledger, populated by supervised persistent
        sessions via :meth:`observe_recovery`: every observed worker
        failure (``worker_failures``), how many were barrier-watchdog
        timeouts (``timeouts``), and how many led to a phase replay
        (``retries``) or to the session degrading to the serial backend
        (``degradations``).  ``recovery_events`` keeps the full
        per-failure :class:`RecoveryEvent` records in observation order —
        the service layer harvests them into its own
        :class:`repro.service.stats.ServiceStats` ledger.
    """

    def __init__(self) -> None:
        self.runs = 0
        self.protocol_messages = 0
        self.cross_shard_messages = 0
        self.boundary_bytes = 0
        self.barrier_rounds = 0
        self.setup_seconds = 0.0
        self.shm_bytes = 0
        self.rearms = 0
        self.fused_phases = 0
        self.worker_failures = 0
        self.timeouts = 0
        self.retries = 0
        self.degradations = 0
        self.recovery_events: List[RecoveryEvent] = []
        self.plans: List[ShardPlan] = []
        self.phases: List[SessionPhaseStats] = []

    @property
    def cross_shard_fraction(self) -> float:
        """Fraction of protocol messages that crossed a shard boundary."""
        if self.protocol_messages == 0:
            return 0.0
        return self.cross_shard_messages / self.protocol_messages

    @property
    def bytes_per_round(self) -> float:
        """Mean packed boundary bytes per round barrier (process backend)."""
        if self.barrier_rounds == 0:
            return 0.0
        return self.boundary_bytes / self.barrier_rounds

    @property
    def setup_seconds_per_phase(self) -> float:
        """Mean setup seconds per recorded phase (0.0 before any phase)."""
        if not self.phases:
            return 0.0
        return self.setup_seconds / len(self.phases)

    def observe_run(
        self,
        protocol_messages: int,
        cross_shard_messages: int,
        boundary_bytes: int,
        barrier_rounds: int,
        setup_seconds: float,
        plan: Optional[ShardPlan] = None,
    ) -> None:
        """Fold one execution into the session totals.

        The **only** accumulation path: :meth:`observe_phase` delegates
        here, and :meth:`ShardedEngine.execute` calls this directly, so one
        ``execute`` can never be added to the totals twice no matter which
        observer fires (the double-accounting risk when a stats-collecting
        engine and a session both observed the same run).
        """
        self.runs += 1
        self.protocol_messages += protocol_messages
        self.cross_shard_messages += cross_shard_messages
        self.boundary_bytes += boundary_bytes
        self.barrier_rounds += barrier_rounds
        self.setup_seconds += setup_seconds
        if plan is not None:
            self.plans.append(plan)

    def observe_phase(
        self,
        label: str,
        protocol_messages: int,
        cross_shard_messages: int,
        boundary_bytes: int,
        barrier_rounds: int,
        setup_seconds: float,
    ) -> None:
        """Record one session ``execute`` (partial plus session totals)."""
        self.observe_run(
            protocol_messages,
            cross_shard_messages,
            boundary_bytes,
            barrier_rounds,
            setup_seconds,
        )
        self.phases.append(
            SessionPhaseStats(
                label=label,
                protocol_messages=protocol_messages,
                cross_shard_messages=cross_shard_messages,
                boundary_bytes=boundary_bytes,
                barrier_rounds=barrier_rounds,
                setup_seconds=setup_seconds,
            )
        )

    def observe_recovery(self, event: RecoveryEvent) -> None:
        """Record one worker failure and the supervisor's decision."""
        self.worker_failures += 1
        if event.timed_out:
            self.timeouts += 1
        if event.action == "retry":
            self.retries += 1
        elif event.action == "degrade":
            self.degradations += 1
        self.recovery_events.append(event)


class _ShardStepper:
    """The per-shard round machinery, independent of where shards live.

    Everything a single shard needs to start, step and drain its owned
    nodes: the dense context list, the shared inbox buffers, the routing
    tables and the model-rule knobs.  The in-process coordinator
    (:class:`_ShardedRun`) holds one stepper for all shards; each worker
    process of the ``"process"`` backend
    (:mod:`repro.congest.sharding.workers`) holds a stepper whose
    ``ctx_list`` is populated only at its own shard's indices.
    """

    def __init__(
        self,
        protocol: Protocol,
        config: CongestConfig,
        ctx_list: List[Optional[NodeContext]],
        index_of: Dict[int, int],
        owner: Sequence[int],
        ordered_delivery: bool,
        inbox_buffers: Optional[List[List[Inbound]]] = None,
    ) -> None:
        self.protocol = protocol
        self.ctx_list = ctx_list
        self.index_of = index_of
        self.owner = owner
        self.ordered_delivery = ordered_delivery
        # A session worker re-arms a fresh stepper per phase but keeps its
        # (empty-between-runs) inbox buffers, so passing them in avoids n
        # list allocations per phase.
        self.inbox_buffers: List[List[Inbound]] = (
            inbox_buffers
            if inbox_buffers is not None
            else [[] for _ in ctx_list]
        )

        self.enforce = config.enforce_congestion
        budget = config.message_bit_budget
        self.budget = budget
        self.budget_limit: float = float("inf") if budget is None else budget
        self.fast_finished = type(protocol).finished is Protocol.finished

    @staticmethod
    def ranges_are_ordered(plan: ShardPlan) -> bool:
        """True when shard id ranges are disjoint and ascending.

        Always true for the contiguous strategy: delivering the per-source
        message groups in shard order then yields each inbox already in
        ascending-sender order, so no per-box sort is needed.
        """
        ranges = [(owned[0], owned[-1]) for owned in plan.shards if owned]
        return all(ranges[i][1] < ranges[i + 1][0] for i in range(len(ranges) - 1))

    # ------------------------------------------------------------------
    def drain(
        self,
        shard: _ShardState,
        ctx: NodeContext,
        round_index: int,
        rm: RoundMetrics,
        pairs: Optional[Set[Tuple[int, int]]],
    ) -> None:
        """Move one node's queued messages into the shard's delivery state.

        The batched engine's drain with one extra step: a receiver owned by
        another shard routes through the per-destination bucket exchanged at
        the barrier instead of the local pending lists.  Rule checks and
        accounting are identical.
        """
        sender = ctx.node_id
        outgoing = ctx._outgoing
        enforce = self.enforce
        budget_limit = self.budget_limit
        index_of = self.index_of
        owner = self.owner
        shard_index = shard.index
        out_buckets = shard.out_buckets
        append_index = shard.pending_index.append
        append_inbound = shard.pending_inbound.append
        messages_seen = 0
        bits_seen = 0
        remote_seen = 0
        max_bits = rm.max_message_bits
        cache = shard.interned.get(sender)
        if cache is None:
            cache = shard.interned[sender] = {}
        cache_get = cache.get
        for receiver, messages in outgoing.items():
            if enforce and len(messages) > 1:
                raise CongestionViolation(sender, receiver, round_index)
            receiver_index = index_of[receiver]
            destination = owner[receiver_index]
            for message in messages:
                bits = message.bits
                if bits > budget_limit:
                    raise MessageSizeViolation(
                        sender, receiver, bits, self.budget, round_index
                    )
                messages_seen += 1
                bits_seen += bits
                if bits > max_bits:
                    max_bits = bits
                message_id = id(message)
                inbound = cache_get(message_id)
                if inbound is None:
                    inbound = Inbound(sender=sender, message=message)
                    cache[message_id] = inbound
                if destination == shard_index:
                    append_index(receiver_index)
                    append_inbound(inbound)
                else:
                    remote_seen += 1
                    bucket_indices, bucket_inbound = out_buckets[destination]
                    bucket_indices.append(receiver_index)
                    bucket_inbound.append(inbound)
                if pairs is not None:
                    pairs.add((sender, receiver))
        outgoing.clear()
        rm.messages_sent += messages_seen
        rm.bits_sent += bits_seen
        rm.max_message_bits = max_bits
        shard.remote_messages += remote_seen
        shard.local_messages += messages_seen - remote_seen

    # ------------------------------------------------------------------
    def start_shard(self, shard: _ShardState) -> RoundMetrics:
        """Round 0 for one shard: ``on_start`` every owned node, then drain."""
        rm = RoundMetrics(round_index=0)
        ctx_list = self.ctx_list
        protocol = self.protocol
        for i in shard.owned:
            ctx = ctx_list[i]
            ctx._round = 0
            protocol.on_start(ctx)
        for i in shard.owned:
            ctx = ctx_list[i]
            if ctx._outgoing:
                self.drain(shard, ctx, 0, rm, None)
        if self.fast_finished:
            shard.frontier = [i for i in shard.owned if not ctx_list[i]._halted]
        return rm

    def step_shard(self, shard: _ShardState, rounds: int) -> RoundMetrics:
        """One round for one shard: deliver, invoke the frontier, drain."""
        rm = RoundMetrics(round_index=rounds)
        pairs: Optional[Set[Tuple[int, int]]] = None if self.enforce else set()
        buffers = self.inbox_buffers
        touched = shard.touched

        # --- delivery -----------------------------------------------------
        # Local pending and the barrier-routed boundary groups are walked in
        # ascending source-shard order; when the shard id ranges are ordered
        # (``ordered_delivery``) that *is* ascending-sender order and the
        # boxes come out contract-ordered for free.  Otherwise any box that
        # received boundary mail is stably re-sorted by sender id below —
        # stability keeps each sender's messages in send order (a sender's
        # messages all originate in one shard).
        remote_from = shard.remote_from
        own_index = shard.index
        dirty: Optional[Set[int]] = (
            None if self.ordered_delivery else set()
        )
        for source in range(len(remote_from)):
            if source == own_index:
                for receiver_index, inbound in zip(
                    shard.pending_index, shard.pending_inbound
                ):
                    box = buffers[receiver_index]
                    if not box:
                        touched.append(receiver_index)
                    box.append(inbound)
                continue
            group_indices, group_inbound = remote_from[source]
            if not group_indices:
                continue
            if dirty is None:
                for receiver_index, inbound in zip(group_indices, group_inbound):
                    box = buffers[receiver_index]
                    if not box:
                        touched.append(receiver_index)
                    box.append(inbound)
            else:
                for receiver_index, inbound in zip(group_indices, group_inbound):
                    box = buffers[receiver_index]
                    if not box:
                        touched.append(receiver_index)
                    box.append(inbound)
                    dirty.add(receiver_index)
            remote_from[source] = ([], [])
        if dirty:
            for receiver_index in dirty:
                box = buffers[receiver_index]
                if len(box) > 1:
                    box.sort(key=_sender_key)
        shard.pending_index = []
        shard.pending_inbound = []
        shard.interned.clear()

        # --- invoke + drain ------------------------------------------------
        ctx_list = self.ctx_list
        protocol = self.protocol
        on_round = protocol.on_round
        if self.fast_finished:
            frontier = shard.frontier
            rm.active_nodes = len(frontier)
            any_halted = False
            for i in frontier:
                ctx = ctx_list[i]
                ctx._round = rounds
                box = buffers[i]
                on_round(ctx, box if box else _EMPTY_INBOX)
                if ctx._halted:
                    any_halted = True
                if ctx._outgoing:
                    self.drain(shard, ctx, rounds, rm, pairs)
            if any_halted:
                shard.frontier = [
                    i for i in frontier if not ctx_list[i]._halted
                ]
        else:
            active = 0
            finished = protocol.finished
            for i in shard.owned:
                ctx = ctx_list[i]
                ctx._round = rounds
                if finished(ctx):
                    continue
                active += 1
                box = buffers[i]
                on_round(ctx, box if box else _EMPTY_INBOX)
                if ctx._outgoing:
                    self.drain(shard, ctx, rounds, rm, pairs)
            rm.active_nodes = active

        for i in touched:
            buffers[i].clear()
        del touched[:]

        rm.edges_used = (
            len(shard.pending_index) + shard.out_bucket_total()
            if pairs is None
            else len(pairs)
        )
        return rm


class _ShardedRun(_ShardStepper):
    """One in-process sharded execution (serial or thread-pool backend)."""

    def __init__(
        self,
        network: Network,
        protocol: Protocol,
        config: CongestConfig,
        contexts: Dict[int, NodeContext],
        plan: ShardPlan,
        workers: int,
    ) -> None:
        ids, _indptr, _indices = network.csr()
        super().__init__(
            protocol=protocol,
            config=config,
            ctx_list=[contexts[node_id] for node_id in ids],
            index_of=network.node_index_of,
            owner=plan.owner,
            ordered_delivery=self.ranges_are_ordered(plan),
        )
        self.network = network
        self.config = config
        self.contexts = contexts
        self.plan = plan
        self.quiesce_ok = bool(getattr(protocol, "quiesce_terminates", False))

        self.shards = [
            _ShardState(index, owned, plan.n_shards)
            for index, owned in enumerate(plan.shards)
        ]

        active = [shard for shard in self.shards if shard.owned]
        self.pool: Optional[ThreadPoolExecutor] = None
        self.pool_width = 0
        if workers >= 2 and len(active) >= 2:
            self.pool_width = min(workers, len(active))

    # ------------------------------------------------------------------
    #: A round whose estimated work (messages in flight plus nodes to
    #: invoke) falls below this is stepped inline even in thread mode: the
    #: cross-thread wakeups of a pool dispatch cost more than the round
    #: itself.  Heavy rounds — where parallelism can pay — still go to the
    #: pool, so the quiet convergecast tails of a protocol don't turn the
    #: barrier into pure overhead.
    POOL_MIN_WORK = 4096

    def _run_shards(self, step, work_hint: int) -> List[RoundMetrics]:
        """Apply *step* to every non-empty shard, serially or on the pool.

        Thread mode submits one task per *worker* (each stepping a
        round-robin chunk of shards), not one per shard, so a round costs
        ``pool_width`` wakeups regardless of the shard count.  Results are
        re-ordered by shard index before merging, so the folded metrics are
        mode-independent; a model-rule violation surfaces from whichever
        chunk raises first, with the same exception type as the serial
        mode.
        """
        active = [shard for shard in self.shards if shard.owned]
        if self.pool is None or work_hint < self.POOL_MIN_WORK:
            return [step(shard) for shard in active]
        width = self.pool_width
        chunks = [active[offset::width] for offset in range(width)]

        def run_chunk(chunk):
            return [(shard.index, step(shard)) for shard in chunk]

        futures = [
            self.pool.submit(run_chunk, chunk) for chunk in chunks if chunk
        ]
        indexed: List[Tuple[int, RoundMetrics]] = []
        for future in futures:
            indexed.extend(future.result())
        indexed.sort(key=operator.itemgetter(0))
        return [rm for _, rm in indexed]

    def _barrier(self, partials: List[RoundMetrics], into: RoundMetrics) -> int:
        """Fold shard metrics, route boundary buckets, count mail in flight."""
        for rm in partials:
            into.messages_sent += rm.messages_sent
            into.bits_sent += rm.bits_sent
            into.edges_used += rm.edges_used
            into.active_nodes += rm.active_nodes
            if rm.max_message_bits > into.max_message_bits:
                into.max_message_bits = rm.max_message_bits
        shards = self.shards
        for source in shards:
            buckets = source.out_buckets
            source_index = source.index
            for destination_index, bucket in enumerate(buckets):
                if bucket[0]:
                    # Hand the lists over wholesale; the source starts the
                    # next round with a fresh bucket.
                    shards[destination_index].remote_from[source_index] = bucket
                    buckets[destination_index] = ([], [])
        return sum(
            len(shard.pending_index) + shard.remote_total()
            for shard in shards
        )

    # ------------------------------------------------------------------
    def traffic_totals(self) -> Tuple[int, int]:
        """(protocol messages, cross-shard messages) over the whole run."""
        local = sum(shard.local_messages for shard in self.shards)
        remote = sum(shard.remote_messages for shard in self.shards)
        return local + remote, remote

    #: Packed boundary traffic: the in-process backends never serialize, so
    #: the stats fields stay zero (contrast ``ProcessShardedRun``); likewise
    #: there is no pool to spawn, so setup time is not accounted.
    boundary_bytes = 0
    barrier_rounds = 0
    setup_seconds = 0.0

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        config = self.config
        protocol = self.protocol
        ctx_list = self.ctx_list
        metrics = RunMetrics()
        # Simulated fault injection (chaos matrix on the in-process
        # backends): only a plan that explicitly opted in via
        # ``simulate=True`` is honoured here, so a process-backend plan
        # carried by a config that degraded to serial does not re-inject
        # the fault it is recovering from.  ``fault_plan=None`` — the
        # default everywhere outside tests — costs nothing.
        plan_faults = getattr(config, "fault_plan", None)
        faults = None
        if plan_faults is not None and getattr(plan_faults, "simulate", False):
            faults = SimulatedFaults(
                plan_faults,
                [shard.index for shard in self.shards if shard.owned],
                config.round_timeout,
                protocol.name,
            )
        with ExitStack() as stack:
            if self.pool_width >= 2:
                # The pool lives exactly as long as this execute call; the
                # ExitStack guarantees teardown on every exit path, so the
                # shared registry singleton never leaks worker threads.
                self.pool = stack.enter_context(
                    ThreadPoolExecutor(
                        max_workers=self.pool_width,
                        thread_name_prefix="repro-shard",
                    )
                )
            if faults is not None:
                faults.check("arm")
                faults.check("start")
            startup_metrics = RoundMetrics(round_index=0)
            in_flight = self._barrier(
                self._run_shards(self.start_shard, work_hint=len(ctx_list)),
                startup_metrics,
            )
            startup_metrics.edges_used = 0  # startup edges are not counted
            startup_metrics.active_nodes = 0

            rounds = 0
            silent_rounds = 0
            while True:
                if self.fast_finished:
                    all_done = not any(
                        shard.frontier for shard in self.shards
                    )
                else:
                    finished = protocol.finished
                    all_done = all(finished(ctx) for ctx in ctx_list)
                stop, silent_rounds = coordinator_should_stop(
                    all_done,
                    in_flight,
                    rounds,
                    silent_rounds,
                    self.quiesce_ok,
                    config.max_rounds,
                    protocol.name,
                )
                if stop:
                    break

                rounds += 1
                if faults is not None:
                    faults.check("round", rounds)
                round_metrics = RoundMetrics(round_index=rounds)
                if rounds == 1:
                    merge_startup_metrics(round_metrics, startup_metrics)
                current_round = rounds
                if self.fast_finished:
                    to_invoke = sum(
                        len(shard.frontier) for shard in self.shards
                    )
                else:
                    to_invoke = len(ctx_list)
                in_flight = self._barrier(
                    self._run_shards(
                        lambda shard: self.step_shard(shard, current_round),
                        work_hint=in_flight + to_invoke,
                    ),
                    round_metrics,
                )
                metrics.absorb_round(round_metrics, config.record_round_metrics)
            if faults is not None:
                faults.check("finish")
        self.pool = None

        # Halted nodes were skipped by the frontier; align their round
        # counters with the reference before harvesting.
        for ctx in ctx_list:
            ctx._round = rounds
        outputs = {
            node_id: protocol.collect_output(ctx)
            for node_id, ctx in self.contexts.items()
        }
        return RunResult(outputs=outputs, metrics=metrics, contexts=self.contexts)


class ShardedEngine(Engine):
    """Partition-parallel round loop; see the module docstring for details.

    Selectable as ``engine="sharded"``.  The registry instance reads every
    knob from the configuration (``CongestConfig.shards``,
    ``CongestConfig.shard_workers``, ``CongestConfig.shard_strategy``,
    ``CongestConfig.shard_backend``); constructor arguments override the
    configuration for callers that build their own instance (the E14/E15
    benchmarks, tests).

    Parameters
    ----------
    shards / workers / strategy / backend:
        Shard count, thread-pool width (``<= 1`` means the serial
        deterministic mode), partitioner strategy and execution backend
        (one of :data:`SHARD_BACKENDS`).  ``None`` defers to the
        configuration.
    partition_seed:
        Seed of the partitioner's RNG (plans are deterministic for a fixed
        seed).
    collect_stats:
        When True, accumulate cross-shard traffic statistics into
        :attr:`stats` across executions.  Off for the registry instance —
        engines are stateless by convention — and not thread-safe across
        concurrent ``execute`` calls.
    """

    name = "sharded"

    def __init__(
        self,
        shards: Optional[int] = None,
        workers: Optional[int] = None,
        strategy: Optional[str] = None,
        backend: Optional[str] = None,
        partition_seed: int = 0,
        collect_stats: bool = False,
    ) -> None:
        if shards is not None and shards < 1:
            raise ValueError("shards must be at least 1 when given")
        if backend is not None and backend not in SHARD_BACKENDS:
            raise ValueError(
                "unknown shard backend %r; available backends: %s"
                % (backend, ", ".join(SHARD_BACKENDS))
            )
        self.shards = shards
        self.workers = workers
        self.strategy = strategy
        self.backend = backend
        self.partition_seed = partition_seed
        self.stats: Optional[ShardingStats] = (
            ShardingStats() if collect_stats else None
        )

    # ------------------------------------------------------------------
    def resolve_structure(
        self, config: CongestConfig
    ) -> Tuple[int, str, str]:
        """``(shards, strategy, backend)`` for *config* under this instance.

        Instance constructor arguments override the configuration's
        fields.  This is the single resolution used by :meth:`execute`,
        :meth:`open_session` and a persistent session's per-call config
        validation, so the three can never drift.
        """
        shards = self.shards if self.shards is not None else config.shards
        strategy = (
            self.strategy if self.strategy is not None else config.shard_strategy
        )
        backend = self.backend if self.backend is not None else config.shard_backend
        if backend not in SHARD_BACKENDS:
            raise ValueError(
                "unknown shard backend %r; available backends: %s"
                % (backend, ", ".join(SHARD_BACKENDS))
            )
        if shards < 1:
            raise ValueError("shards must be at least 1, got %r" % (shards,))
        return shards, strategy, backend

    # ------------------------------------------------------------------
    def execute(
        self,
        network: Network,
        protocol: Protocol,
        config: Optional[CongestConfig] = None,
        global_inputs: Optional[Dict[str, Any]] = None,
        per_node_inputs: Optional[Dict[int, Dict[str, Any]]] = None,
        reuse_contexts: bool = False,
    ) -> RunResult:
        config = config or CongestConfig()
        shards, strategy, backend = self.resolve_structure(config)
        workers = self.workers if self.workers is not None else config.shard_workers
        plan = cached_partition(
            network, shards, strategy=strategy, seed=self.partition_seed
        )
        contexts = network.build_contexts(
            global_inputs=global_inputs,
            per_node_inputs=per_node_inputs,
            fresh=not reuse_contexts,
        )
        if backend == "process" and any(owned for owned in plan.shards):
            # Imported lazily: workers.py needs this module's stepper.
            from repro.congest.sharding.workers import ProcessShardedRun

            run = ProcessShardedRun(
                network=network,
                protocol=protocol,
                config=config,
                contexts=contexts,
                plan=plan,
            )
        else:
            run = _ShardedRun(
                network=network,
                protocol=protocol,
                config=config,
                contexts=contexts,
                plan=plan,
                workers=0 if backend == "serial" else workers,
            )
        result = run.run()
        if self.stats is not None:
            total, cross = run.traffic_totals()
            self.stats.observe_run(
                total,
                cross,
                run.boundary_bytes,
                run.barrier_rounds,
                run.setup_seconds,
                plan=plan,
            )
        return result

    # ------------------------------------------------------------------
    def open_session(
        self,
        network: Network,
        config: Optional[CongestConfig] = None,
    ) -> CongestSession:
        """Open an execution session on *network*.

        With ``config.session_mode == "persistent"`` and the ``"process"``
        backend this returns a
        :class:`repro.congest.sharding.workers.ProcessSession`: one worker
        pool and one shared-memory CSR mapping serve every ``execute`` of
        the session, re-armed between phases.  The in-process backends
        have no per-``execute`` setup worth keeping (the shard plan is
        already memoised per network), so every other combination returns
        the default per-call session.
        """
        config = config or CongestConfig()
        shards, strategy, backend = self.resolve_structure(config)
        if config.session_mode == "persistent" and backend == "process":
            # Imported lazily: workers.py needs this module's stepper.
            from repro.congest.sharding.workers import ProcessSession

            return ProcessSession(
                engine=self,
                network=network,
                config=config,
                shards=shards,
                strategy=strategy,
                partition_seed=self.partition_seed,
            )
        # Everything else — per-call mode, in-process backends, and any
        # invalid session mode (validated there) — gets the base session.
        return super().open_session(network, config)


register_engine(ShardedEngine())
