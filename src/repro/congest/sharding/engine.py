"""Partition-parallel execution of the synchronous round loop.

:class:`ShardedEngine` (``engine="sharded"``) splits the network into ``k``
shards with :func:`repro.congest.sharding.partition.partition_network` and
steps each shard's frontier independently within a round, exchanging the
messages that cross a shard boundary at the round barrier.  Per shard the
machinery is the :class:`repro.congest.engine.BatchedEngine` design — dense
CSR indices, reused inbox buffers, per-sender ``Inbound`` interning, an
incremental active frontier — restricted to the shard's owned nodes.

**The engine contract applies** (module docstring of
:mod:`repro.congest.engine`): outputs, round count and protocol
message/bit metrics — including the per-round trace — are bit-identical to
:class:`repro.congest.engine.ReferenceEngine` for every shard count,
strategy and execution mode, and the model rules raise the same
:class:`repro.congest.errors.MessageSizeViolation` /
:class:`repro.congest.errors.CongestionViolation` types from the shard-local
drain.  Two mechanisms make the partition invisible:

* *Inbox-order repair.*  Within one shard, nodes drain in ascending dense
  index, so a receiver's inbox arrives grouped by sender ascending — the
  contract order — for free.  Senders owned by *other* shards arrive at the
  barrier in source-shard order, so any inbox that received boundary mail is
  stably re-sorted by sender id before delivery (stability preserves the
  per-sender send order; a sender's messages all originate in one shard).
* *Barrier-time aggregation.*  Round metrics are accumulated per shard and
  folded in ascending shard order at the barrier — sums for message/bit
  counts, ``max`` for the message-size peak — so the global
  :class:`repro.congest.metrics.RoundMetrics` equals the reference's
  regardless of how the round's work was interleaved.  Termination (all
  frontiers empty, no messages in flight), quiescence and the stall counter
  are evaluated by the coordinator on the aggregated view, exactly like the
  single-shard engines.

Execution modes
---------------
``shard_workers <= 1`` (the default, and the registry instance's mode) steps
the shards sequentially in ascending shard order — fully deterministic,
which is what the differential harness runs.  ``shard_workers >= 2`` steps
the shards on a thread pool; shard state is disjoint by construction (a
shard only touches the contexts and inbox buffers of the nodes it owns, and
writes cross-shard messages into its own per-destination buckets), so the
pool only changes wall-clock interleaving, never the result.  Note that a
*protocol* that mutates shared instrumentation state in its callbacks (for
example a test harness appending to one global log) will observe a
nondeterministic interleaving under thread mode; outputs and metrics remain
bit-identical either way.
"""

from __future__ import annotations

import operator
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.congest.config import CongestConfig
from repro.congest.engine import (
    _EMPTY_INBOX,
    _STALL_LIMIT,
    Engine,
    RunResult,
    register_engine,
)
from repro.congest.errors import (
    CongestionViolation,
    MessageSizeViolation,
    ProtocolError,
    RoundLimitExceeded,
)
from repro.congest.message import Inbound
from repro.congest.metrics import RoundMetrics, RunMetrics
from repro.congest.network import Network
from repro.congest.node import NodeContext, Protocol
from repro.congest.sharding.partition import (
    ShardPlan,
    cached_partition,
)

#: Stable-sort key restoring the contract's ascending-sender inbox order
#: (C-implemented: this runs on every boundary inbox every round).
_sender_key = operator.attrgetter("sender")


class _ShardState:
    """All mutable per-shard state of one sharded execution.

    A shard owns a subset of the dense indices; during a round it reads and
    writes only the contexts and inbox buffers of its owned nodes plus its
    own outbound buckets, which is the disjointness that makes thread-mode
    execution safe without locks.
    """

    __slots__ = (
        "index",
        "owned",
        "frontier",
        "pending_index",
        "pending_inbound",
        "remote_from",
        "out_buckets",
        "interned",
        "touched",
        "remote_messages",
        "local_messages",
    )

    def __init__(self, index: int, owned: Sequence[int], n_shards: int) -> None:
        self.index = index
        self.owned: Tuple[int, ...] = tuple(owned)
        self.frontier: List[int] = []
        # Shard-local deliveries (receiver owned by this shard), as the
        # batched engine's two parallel flat lists.
        self.pending_index: List[int] = []
        self.pending_inbound: List[Inbound] = []
        # Boundary deliveries routed *to* this shard at the last barrier,
        # kept grouped by source shard so delivery can walk the groups in
        # ascending sender order (see ``_ShardedRun.ordered_delivery``).
        # Each group is two parallel flat lists (receiver index / Inbound),
        # like the local pending lists — no tuple per boundary message.
        self.remote_from: List[Tuple[List[int], List[Inbound]]] = [
            ([], []) for _ in range(n_shards)
        ]
        # Boundary messages produced by this shard, bucketed by destination,
        # in the same parallel-list shape.
        self.out_buckets: List[Tuple[List[int], List[Inbound]]] = [
            ([], []) for _ in range(n_shards)
        ]
        # Per-sender Inbound intern cache, reset every round (per shard:
        # senders are owned by exactly one shard).
        self.interned: Dict[int, Dict[int, Inbound]] = {}
        self.touched: List[int] = []
        self.remote_messages = 0
        self.local_messages = 0

    def out_bucket_total(self) -> int:
        return sum(len(indices) for indices, _ in self.out_buckets)

    def remote_total(self) -> int:
        return sum(len(indices) for indices, _ in self.remote_from)


class ShardingStats:
    """Cross-shard traffic accounting for one or more sharded executions.

    Populated by :class:`ShardedEngine` when constructed with
    ``collect_stats=True`` (the registry instance does not collect, keeping
    it stateless); the E14 benchmark uses this to report the cut-edge
    message fraction per partitioner strategy.
    """

    def __init__(self) -> None:
        self.runs = 0
        self.protocol_messages = 0
        self.cross_shard_messages = 0
        self.plans: List[ShardPlan] = []

    @property
    def cross_shard_fraction(self) -> float:
        """Fraction of protocol messages that crossed a shard boundary."""
        if self.protocol_messages == 0:
            return 0.0
        return self.cross_shard_messages / self.protocol_messages


class _ShardedRun:
    """One sharded execution (all mutable state lives here, not the engine)."""

    def __init__(
        self,
        network: Network,
        protocol: Protocol,
        config: CongestConfig,
        contexts: Dict[int, NodeContext],
        plan: ShardPlan,
        workers: int,
    ) -> None:
        self.network = network
        self.protocol = protocol
        self.config = config
        self.plan = plan

        ids, _indptr, _indices = network.csr()
        self.index_of = network.node_index_of
        self.ctx_list = [contexts[node_id] for node_id in ids]
        self.contexts = contexts

        self.owner = plan.owner
        self.shards = [
            _ShardState(index, owned, plan.n_shards)
            for index, owned in enumerate(plan.shards)
        ]
        # Inbox buffers are shared (one slot per dense index) but each slot
        # is only ever touched by the shard owning the receiver.
        self.inbox_buffers: List[List[Inbound]] = [[] for _ in range(len(ids))]

        self.enforce = config.enforce_congestion
        budget = config.message_bit_budget
        self.budget = budget
        self.budget_limit: float = float("inf") if budget is None else budget
        self.quiesce_ok = bool(getattr(protocol, "quiesce_terminates", False))
        self.fast_finished = type(protocol).finished is Protocol.finished

        # When every shard's owned-id range is disjoint from and below the
        # next shard's (always true for the contiguous strategy), delivering
        # the per-source message groups in shard order yields each inbox
        # already in ascending-sender order — no per-box sort is needed.
        ranges = [
            (owned[0], owned[-1]) for owned in plan.shards if owned
        ]
        self.ordered_delivery = all(
            ranges[i][1] < ranges[i + 1][0] for i in range(len(ranges) - 1)
        )

        active = [shard for shard in self.shards if shard.owned]
        self.pool: Optional[ThreadPoolExecutor] = None
        self.pool_width = 0
        if workers >= 2 and len(active) >= 2:
            self.pool_width = min(workers, len(active))
            self.pool = ThreadPoolExecutor(
                max_workers=self.pool_width,
                thread_name_prefix="repro-shard",
            )

    # ------------------------------------------------------------------
    def _drain(
        self,
        shard: _ShardState,
        ctx: NodeContext,
        round_index: int,
        rm: RoundMetrics,
        pairs: Optional[Set[Tuple[int, int]]],
    ) -> None:
        """Move one node's queued messages into the shard's delivery state.

        The batched engine's drain with one extra step: a receiver owned by
        another shard routes through the per-destination bucket exchanged at
        the barrier instead of the local pending lists.  Rule checks and
        accounting are identical.
        """
        sender = ctx.node_id
        outgoing = ctx._outgoing
        enforce = self.enforce
        budget_limit = self.budget_limit
        index_of = self.index_of
        owner = self.owner
        shard_index = shard.index
        out_buckets = shard.out_buckets
        append_index = shard.pending_index.append
        append_inbound = shard.pending_inbound.append
        messages_seen = 0
        bits_seen = 0
        remote_seen = 0
        max_bits = rm.max_message_bits
        cache = shard.interned.get(sender)
        if cache is None:
            cache = shard.interned[sender] = {}
        cache_get = cache.get
        for receiver, messages in outgoing.items():
            if enforce and len(messages) > 1:
                raise CongestionViolation(sender, receiver, round_index)
            receiver_index = index_of[receiver]
            destination = owner[receiver_index]
            for message in messages:
                bits = message.bits
                if bits > budget_limit:
                    raise MessageSizeViolation(
                        sender, receiver, bits, self.budget, round_index
                    )
                messages_seen += 1
                bits_seen += bits
                if bits > max_bits:
                    max_bits = bits
                message_id = id(message)
                inbound = cache_get(message_id)
                if inbound is None:
                    inbound = Inbound(sender=sender, message=message)
                    cache[message_id] = inbound
                if destination == shard_index:
                    append_index(receiver_index)
                    append_inbound(inbound)
                else:
                    remote_seen += 1
                    bucket_indices, bucket_inbound = out_buckets[destination]
                    bucket_indices.append(receiver_index)
                    bucket_inbound.append(inbound)
                if pairs is not None:
                    pairs.add((sender, receiver))
        outgoing.clear()
        rm.messages_sent += messages_seen
        rm.bits_sent += bits_seen
        rm.max_message_bits = max_bits
        shard.remote_messages += remote_seen
        shard.local_messages += messages_seen - remote_seen

    # ------------------------------------------------------------------
    def _start_shard(self, shard: _ShardState) -> RoundMetrics:
        """Round 0 for one shard: ``on_start`` every owned node, then drain."""
        rm = RoundMetrics(round_index=0)
        ctx_list = self.ctx_list
        protocol = self.protocol
        for i in shard.owned:
            ctx = ctx_list[i]
            ctx._round = 0
            protocol.on_start(ctx)
        for i in shard.owned:
            ctx = ctx_list[i]
            if ctx._outgoing:
                self._drain(shard, ctx, 0, rm, None)
        if self.fast_finished:
            shard.frontier = [i for i in shard.owned if not ctx_list[i]._halted]
        return rm

    def _step_shard(self, shard: _ShardState, rounds: int) -> RoundMetrics:
        """One round for one shard: deliver, invoke the frontier, drain."""
        rm = RoundMetrics(round_index=rounds)
        pairs: Optional[Set[Tuple[int, int]]] = None if self.enforce else set()
        buffers = self.inbox_buffers
        touched = shard.touched

        # --- delivery -----------------------------------------------------
        # Local pending and the barrier-routed boundary groups are walked in
        # ascending source-shard order; when the shard id ranges are ordered
        # (``ordered_delivery``) that *is* ascending-sender order and the
        # boxes come out contract-ordered for free.  Otherwise any box that
        # received boundary mail is stably re-sorted by sender id below —
        # stability keeps each sender's messages in send order (a sender's
        # messages all originate in one shard).
        remote_from = shard.remote_from
        own_index = shard.index
        dirty: Optional[Set[int]] = (
            None if self.ordered_delivery else set()
        )
        for source in range(len(remote_from)):
            if source == own_index:
                for receiver_index, inbound in zip(
                    shard.pending_index, shard.pending_inbound
                ):
                    box = buffers[receiver_index]
                    if not box:
                        touched.append(receiver_index)
                    box.append(inbound)
                continue
            group_indices, group_inbound = remote_from[source]
            if not group_indices:
                continue
            if dirty is None:
                for receiver_index, inbound in zip(group_indices, group_inbound):
                    box = buffers[receiver_index]
                    if not box:
                        touched.append(receiver_index)
                    box.append(inbound)
            else:
                for receiver_index, inbound in zip(group_indices, group_inbound):
                    box = buffers[receiver_index]
                    if not box:
                        touched.append(receiver_index)
                    box.append(inbound)
                    dirty.add(receiver_index)
            remote_from[source] = ([], [])
        if dirty:
            for receiver_index in dirty:
                box = buffers[receiver_index]
                if len(box) > 1:
                    box.sort(key=_sender_key)
        shard.pending_index = []
        shard.pending_inbound = []
        shard.interned.clear()

        # --- invoke + drain ------------------------------------------------
        ctx_list = self.ctx_list
        protocol = self.protocol
        on_round = protocol.on_round
        if self.fast_finished:
            frontier = shard.frontier
            rm.active_nodes = len(frontier)
            any_halted = False
            for i in frontier:
                ctx = ctx_list[i]
                ctx._round = rounds
                box = buffers[i]
                on_round(ctx, box if box else _EMPTY_INBOX)
                if ctx._halted:
                    any_halted = True
                if ctx._outgoing:
                    self._drain(shard, ctx, rounds, rm, pairs)
            if any_halted:
                shard.frontier = [
                    i for i in frontier if not ctx_list[i]._halted
                ]
        else:
            active = 0
            finished = protocol.finished
            for i in shard.owned:
                ctx = ctx_list[i]
                ctx._round = rounds
                if finished(ctx):
                    continue
                active += 1
                box = buffers[i]
                on_round(ctx, box if box else _EMPTY_INBOX)
                if ctx._outgoing:
                    self._drain(shard, ctx, rounds, rm, pairs)
            rm.active_nodes = active

        for i in touched:
            buffers[i].clear()
        del touched[:]

        rm.edges_used = (
            len(shard.pending_index) + shard.out_bucket_total()
            if pairs is None
            else len(pairs)
        )
        return rm

    # ------------------------------------------------------------------
    #: A round whose estimated work (messages in flight plus nodes to
    #: invoke) falls below this is stepped inline even in thread mode: the
    #: cross-thread wakeups of a pool dispatch cost more than the round
    #: itself.  Heavy rounds — where parallelism can pay — still go to the
    #: pool, so the quiet convergecast tails of a protocol don't turn the
    #: barrier into pure overhead.
    POOL_MIN_WORK = 4096

    def _run_shards(self, step, work_hint: int) -> List[RoundMetrics]:
        """Apply *step* to every non-empty shard, serially or on the pool.

        Thread mode submits one task per *worker* (each stepping a
        round-robin chunk of shards), not one per shard, so a round costs
        ``pool_width`` wakeups regardless of the shard count.  Results are
        re-ordered by shard index before merging, so the folded metrics are
        mode-independent; a model-rule violation surfaces from whichever
        chunk raises first, with the same exception type as the serial
        mode.
        """
        active = [shard for shard in self.shards if shard.owned]
        if self.pool is None or work_hint < self.POOL_MIN_WORK:
            return [step(shard) for shard in active]
        width = self.pool_width
        chunks = [active[offset::width] for offset in range(width)]

        def run_chunk(chunk):
            return [(shard.index, step(shard)) for shard in chunk]

        futures = [
            self.pool.submit(run_chunk, chunk) for chunk in chunks if chunk
        ]
        indexed: List[Tuple[int, RoundMetrics]] = []
        for future in futures:
            indexed.extend(future.result())
        indexed.sort(key=operator.itemgetter(0))
        return [rm for _, rm in indexed]

    def _barrier(self, partials: List[RoundMetrics], into: RoundMetrics) -> int:
        """Fold shard metrics, route boundary buckets, count mail in flight."""
        for rm in partials:
            into.messages_sent += rm.messages_sent
            into.bits_sent += rm.bits_sent
            into.edges_used += rm.edges_used
            into.active_nodes += rm.active_nodes
            if rm.max_message_bits > into.max_message_bits:
                into.max_message_bits = rm.max_message_bits
        shards = self.shards
        for source in shards:
            buckets = source.out_buckets
            source_index = source.index
            for destination_index, bucket in enumerate(buckets):
                if bucket[0]:
                    # Hand the lists over wholesale; the source starts the
                    # next round with a fresh bucket.
                    shards[destination_index].remote_from[source_index] = bucket
                    buckets[destination_index] = ([], [])
        return sum(
            len(shard.pending_index) + shard.remote_total()
            for shard in shards
        )

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        config = self.config
        protocol = self.protocol
        ctx_list = self.ctx_list
        metrics = RunMetrics()
        try:
            startup_metrics = RoundMetrics(round_index=0)
            in_flight = self._barrier(
                self._run_shards(self._start_shard, work_hint=len(ctx_list)),
                startup_metrics,
            )
            startup_metrics.edges_used = 0  # startup edges are not counted
            startup_metrics.active_nodes = 0

            rounds = 0
            silent_rounds = 0
            max_rounds = config.max_rounds
            while True:
                if self.fast_finished:
                    all_done = not any(
                        shard.frontier for shard in self.shards
                    )
                else:
                    finished = protocol.finished
                    all_done = all(finished(ctx) for ctx in ctx_list)
                if all_done and not in_flight:
                    break
                if not in_flight and rounds > 0 and self.quiesce_ok:
                    break
                if not in_flight and rounds > 0:
                    silent_rounds += 1
                    if silent_rounds >= _STALL_LIMIT:
                        raise ProtocolError(
                            "protocol %r stalled: no messages in flight, nodes "
                            "not finished, after %d silent rounds"
                            % (protocol.name, silent_rounds)
                        )
                else:
                    silent_rounds = 0
                if max_rounds is not None and rounds >= max_rounds:
                    raise RoundLimitExceeded(max_rounds)

                rounds += 1
                round_metrics = RoundMetrics(round_index=rounds)
                if rounds == 1:
                    round_metrics.messages_sent = startup_metrics.messages_sent
                    round_metrics.bits_sent = startup_metrics.bits_sent
                    round_metrics.max_message_bits = (
                        startup_metrics.max_message_bits
                    )
                current_round = rounds
                if self.fast_finished:
                    to_invoke = sum(
                        len(shard.frontier) for shard in self.shards
                    )
                else:
                    to_invoke = len(ctx_list)
                in_flight = self._barrier(
                    self._run_shards(
                        lambda shard: self._step_shard(shard, current_round),
                        work_hint=in_flight + to_invoke,
                    ),
                    round_metrics,
                )
                metrics.absorb_round(round_metrics, config.record_round_metrics)
        finally:
            if self.pool is not None:
                self.pool.shutdown(wait=True)

        # Halted nodes were skipped by the frontier; align their round
        # counters with the reference before harvesting.
        for ctx in ctx_list:
            ctx._round = rounds
        outputs = {
            node_id: protocol.collect_output(ctx)
            for node_id, ctx in self.contexts.items()
        }
        return RunResult(outputs=outputs, metrics=metrics, contexts=self.contexts)


class ShardedEngine(Engine):
    """Partition-parallel round loop; see the module docstring for details.

    Selectable as ``engine="sharded"``.  The registry instance reads every
    knob from the configuration (``CongestConfig.shards``,
    ``CongestConfig.shard_workers``, ``CongestConfig.shard_strategy``);
    constructor arguments override the configuration for callers that build
    their own instance (the E14 benchmark, tests).

    Parameters
    ----------
    shards / workers / strategy:
        Shard count, thread-pool width (``<= 1`` means the serial
        deterministic mode) and partitioner strategy.  ``None`` defers to
        the configuration.
    partition_seed:
        Seed of the partitioner's RNG (plans are deterministic for a fixed
        seed).
    collect_stats:
        When True, accumulate cross-shard traffic statistics into
        :attr:`stats` across executions.  Off for the registry instance —
        engines are stateless by convention — and not thread-safe across
        concurrent ``execute`` calls.
    """

    name = "sharded"

    def __init__(
        self,
        shards: Optional[int] = None,
        workers: Optional[int] = None,
        strategy: Optional[str] = None,
        partition_seed: int = 0,
        collect_stats: bool = False,
    ) -> None:
        if shards is not None and shards < 1:
            raise ValueError("shards must be at least 1 when given")
        self.shards = shards
        self.workers = workers
        self.strategy = strategy
        self.partition_seed = partition_seed
        self.stats: Optional[ShardingStats] = (
            ShardingStats() if collect_stats else None
        )

    # ------------------------------------------------------------------
    def execute(
        self,
        network: Network,
        protocol: Protocol,
        config: Optional[CongestConfig] = None,
        global_inputs: Optional[Dict[str, Any]] = None,
        per_node_inputs: Optional[Dict[int, Dict[str, Any]]] = None,
        reuse_contexts: bool = False,
    ) -> RunResult:
        config = config or CongestConfig()
        shards = self.shards if self.shards is not None else config.shards
        workers = self.workers if self.workers is not None else config.shard_workers
        strategy = (
            self.strategy if self.strategy is not None else config.shard_strategy
        )
        plan = cached_partition(
            network, shards, strategy=strategy, seed=self.partition_seed
        )
        contexts = network.build_contexts(
            global_inputs=global_inputs,
            per_node_inputs=per_node_inputs,
            fresh=not reuse_contexts,
        )
        run = _ShardedRun(
            network=network,
            protocol=protocol,
            config=config,
            contexts=contexts,
            plan=plan,
            workers=workers,
        )
        result = run.run()
        if self.stats is not None:
            self.stats.runs += 1
            self.stats.plans.append(plan)
            for shard in run.shards:
                self.stats.protocol_messages += (
                    shard.local_messages + shard.remote_messages
                )
                self.stats.cross_shard_messages += shard.remote_messages
        return result


register_engine(ShardedEngine())
