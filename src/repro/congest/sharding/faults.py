"""Deterministic fault injection for the sharded execution stack.

The fault-tolerance machinery of the process backend — the barrier
watchdog (``CongestConfig.round_timeout``), supervised retry
(``CongestConfig.retry_policy``) and the graceful degradation ladder —
only earns trust if every failure path it guards is *reachable on
demand*.  This module provides that reachability: a seeded, picklable
:class:`FaultPlan` threaded through ``CongestConfig.fault_plan`` that
injects failures at named points of the worker protocol, reproducibly by
seed, with zero cost when absent (the default ``fault_plan=None`` skips
every hook).

Vocabulary
----------
Fault *points* (:data:`FAULT_POINTS`) name where in the worker's
arm/start/round/finish command loop a fault fires; fault *kinds*
(:data:`FAULT_KINDS`) name what happens there:

``"crash"``
    The worker process dies via ``os._exit`` — no exception, no
    traceback, just EOF on its pipe.  The coordinator surfaces it as
    :class:`~repro.congest.errors.ShardWorkerError`.
``"hang"``
    The worker sleeps ``hang_seconds`` *then continues normally*.  With
    no watchdog this is exactly the pathological slow round the original
    blocking barrier could not distinguish from progress; with
    ``round_timeout`` armed it trips
    :class:`~repro.congest.errors.ShardWorkerTimeout` (pick
    ``hang_seconds`` comfortably above the deadline).
``"eof"``
    The worker closes its pipe and exits its loop cleanly — the
    silent-death shape (kill -9, OOM) without the exit-code noise.
``"corrupt"``
    The worker overwrites an incoming :class:`~repro.congest.sharding.wire.WireBatch`
    payload blob with garbage before decoding, so the decode raises
    :class:`~repro.congest.errors.WireCorruptionError`.  Only meaningful
    at the ``"round"`` point, and only fires on a batch that actually
    carries messages.

Determinism and retries
-----------------------
A :class:`FaultSpec` fires *once* per worker lifetime (per
:class:`FaultInjector`), only when its ``attempt`` equals the plan's
current attempt — ``FaultPlan.for_attempt(k)`` is how the supervised
retry loop re-threads the plan so that, by default, retries run clean
(specs carry ``attempt=0``).  Injector state lives in the worker and
survives light re-arms, but a *respawned* worker starts fresh — which is
why :meth:`FaultPlan.seeded` always binds each generated spec to a
concrete phase name: an unbound (``phase=None``) spec in a hand-built
plan will re-fire in every later phase after a respawn, which is exactly
what you want for "this shard always crashes" torture tests and exactly
what you do not want in a differential suite.

In-process simulation
---------------------
The thread/serial backends have no worker processes to kill, but the
chaos matrix still wants the same scenarios there.  ``simulate=True``
lets :class:`SimulatedFaults` raise the *equivalent typed errors*
in-process from :class:`~repro.congest.sharding.engine._ShardedRun`:
crash/eof become :class:`~repro.congest.errors.ShardWorkerError`,
corrupt becomes :class:`~repro.congest.errors.WireCorruptionError`, and
hang sleeps (bounded by ``round_timeout`` when set, then raising
:class:`~repro.congest.errors.ShardWorkerTimeout`).  Plans without
``simulate`` are ignored by the in-process backends, so a process-backend
plan can be carried by a config that later degrades to serial without
re-injecting the fault it is recovering from.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

from repro.congest.errors import (
    ShardWorkerError,
    ShardWorkerTimeout,
    WireCorruptionError,
)

__all__ = [
    "FAULT_KINDS",
    "FAULT_POINTS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "SimulatedFaults",
]

#: Protocol points where a fault may fire, matching the worker command loop.
FAULT_POINTS: Tuple[str, ...] = ("arm", "start", "round", "finish")

#: What happens when a spec fires (see the module docstring).
FAULT_KINDS: Tuple[str, ...] = ("crash", "hang", "eof", "corrupt")


@dataclass(frozen=True)
class FaultSpec:
    """One injected failure: *kind* at *point*, scoped by shard/phase/round.

    Parameters
    ----------
    point / kind:
        One of :data:`FAULT_POINTS` / :data:`FAULT_KINDS`.  ``"corrupt"``
        requires ``point="round"`` (it damages an incoming round batch).
    shard:
        Shard index whose worker carries the fault.
    phase:
        Protocol name (e.g. ``"min-id-bfs-tree"``) the spec is bound to;
        ``None`` matches every phase — but see the module docstring for
        the re-fire caveat across respawns.
    round_index:
        For ``point="round"``: the 1-based round the fault fires in;
        ``None`` fires in the first round of the matching phase.
    attempt:
        The retry attempt (0-based) the spec belongs to.  Specs for
        attempt 0 make retries run clean; a spec repeated at attempts 0
        and 1 defeats a two-attempt policy and forces degradation.
    hang_seconds:
        Sleep length for ``kind="hang"``.
    """

    point: str
    kind: str
    shard: int = 0
    phase: Optional[str] = None
    round_index: Optional[int] = None
    attempt: int = 0
    hang_seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise ValueError(
                "unknown fault point %r; available points: %s"
                % (self.point, ", ".join(FAULT_POINTS))
            )
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                "unknown fault kind %r; available kinds: %s"
                % (self.kind, ", ".join(FAULT_KINDS))
            )
        if self.kind == "corrupt" and self.point != "round":
            raise ValueError(
                "corrupt faults damage an incoming round batch, so they "
                "require point='round' (got point=%r)" % (self.point,)
            )
        if self.shard < 0:
            raise ValueError("shard must be >= 0, got %d" % self.shard)
        if self.round_index is not None and self.round_index < 1:
            raise ValueError(
                "round_index is 1-based; got %r" % (self.round_index,)
            )
        if self.attempt < 0:
            raise ValueError("attempt must be >= 0, got %d" % self.attempt)
        if not self.hang_seconds > 0:
            raise ValueError(
                "hang_seconds must be positive, got %r" % (self.hang_seconds,)
            )


@dataclass(frozen=True)
class FaultPlan:
    """A picklable set of :class:`FaultSpec` plus the current retry attempt.

    The plan crosses the worker fork/pickle boundary inside the config, so
    it is frozen and built only from picklable primitives.  ``attempt`` is
    the supervised-retry loop's cursor: a spec fires only when its own
    ``attempt`` equals the plan's, and :meth:`for_attempt` re-threads the
    cursor without touching the specs.  ``simulate`` opts the in-process
    backends into raising the equivalent typed errors (see the module
    docstring); the process backend ignores it.
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: Optional[int] = None
    attempt: int = 0
    simulate: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise ValueError(
                    "FaultPlan.specs must contain FaultSpec instances, "
                    "got %r" % (spec,)
                )
        if self.attempt < 0:
            raise ValueError("attempt must be >= 0, got %d" % self.attempt)

    def for_attempt(self, attempt: int) -> "FaultPlan":
        """Return a copy whose cursor is *attempt* (specs unchanged)."""
        if attempt == self.attempt:
            return self
        return replace(self, attempt=attempt)

    @classmethod
    def seeded(
        cls,
        seed: int,
        shards: int,
        phases: Sequence[str],
        faults: int = 2,
        kinds: Sequence[str] = ("crash", "eof", "corrupt"),
        hang_seconds: float = 60.0,
        simulate: bool = False,
    ) -> "FaultPlan":
        """Draw a random plan of *faults* specs, reproducibly from *seed*.

        Every generated spec is bound to a concrete phase from *phases*
        (never ``phase=None``) so it cannot re-fire in later phases after
        a recovery respawn resets the worker-side fired state, and all
        specs carry ``attempt=0`` so retries replay clean.  ``"hang"`` is
        not in the default *kinds* because an unwatched hang blocks the
        barrier for ``hang_seconds`` — include it only alongside a
        ``round_timeout``.
        """
        if not phases:
            raise ValueError("seeded plans need at least one phase name")
        if shards < 1:
            raise ValueError("shards must be >= 1, got %d" % shards)
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(
                    "unknown fault kind %r; available kinds: %s"
                    % (kind, ", ".join(FAULT_KINDS))
                )
        rng = random.Random(seed)
        specs = []
        for _ in range(faults):
            kind = rng.choice(tuple(kinds))
            point = "round" if kind == "corrupt" else rng.choice(FAULT_POINTS)
            specs.append(
                FaultSpec(
                    point=point,
                    kind=kind,
                    shard=rng.randrange(shards),
                    phase=rng.choice(tuple(phases)),
                    round_index=rng.choice((None, 1, 2)) if point == "round" else None,
                    attempt=0,
                    hang_seconds=hang_seconds,
                )
            )
        return cls(specs=tuple(specs), seed=seed, simulate=simulate)


class FaultInjector:
    """Per-worker fault state: which specs target me, which already fired.

    Lives inside a process-backend worker (one per shard) for the worker's
    whole lifetime: the fired set survives light re-arms between phases,
    so a phase-bound spec cannot re-fire when its phase is re-armed on the
    same worker, and a respawn (which rebuilds the harness and with it the
    injector) naturally re-arms only specs whose phase has not run on the
    new worker yet.
    """

    __slots__ = ("plan", "shard_index", "phase", "_fired")

    def __init__(self, plan: FaultPlan, shard_index: int) -> None:
        self.plan = plan
        self.shard_index = shard_index
        self.phase: Optional[str] = None
        self._fired = set()

    def begin_phase(self, phase: str) -> None:
        """Record the protocol name the next fires are scoped to."""
        self.phase = phase

    def _match(
        self, point: str, round_index: Optional[int], kinds: Tuple[str, ...]
    ) -> Optional[FaultSpec]:
        plan = self.plan
        for spec in plan.specs:
            if spec in self._fired:
                continue
            if spec.kind not in kinds:
                continue
            if spec.point != point or spec.shard != self.shard_index:
                continue
            if spec.attempt != plan.attempt:
                continue
            if spec.phase is not None and spec.phase != self.phase:
                continue
            if point == "round" and spec.round_index is not None:
                if spec.round_index != round_index:
                    continue
            return spec
        return None

    def fire(self, point: str, round_index: Optional[int] = None) -> bool:
        """Fire any crash/hang/eof spec matching *point*.

        Returns True when an ``"eof"`` spec fired (the worker loop should
        break, closing its pipe); crash exits the process here; hang
        sleeps and then returns False (the worker continues normally —
        distinguishing a hang from a crash is the watchdog's job, not
        the injector's).
        """
        spec = self._match(point, round_index, ("crash", "hang", "eof"))
        if spec is None:
            return False
        self._fired.add(spec)
        if spec.kind == "crash":
            # Mirror a segfault: no cleanup, no exception propagation —
            # the coordinator only ever sees EOF on the pipe.
            os._exit(3)
        if spec.kind == "hang":
            time.sleep(spec.hang_seconds)
            return False
        return True  # eof

    def corrupt_batch(self, batch, round_index: Optional[int]):
        """Damage *batch*'s payload blob if a corrupt spec matches.

        Only fires on a batch that actually carries messages — an empty
        blob decodes without reading a byte, so corrupting it would be a
        silent no-op that consumed the spec.
        """
        spec = self._match("round", round_index, ("corrupt",))
        if spec is None or not len(batch.senders):
            return batch
        self._fired.add(spec)
        # Tag byte 255 is outside the payload vocabulary, so the very
        # first table entry's decode raises.
        return batch._replace(payloads=b"\xff" * max(1, len(batch.payloads)))


class SimulatedFaults:
    """In-process stand-in for worker faults (thread/serial backends).

    Built by :class:`~repro.congest.sharding.engine._ShardedRun` only when
    the plan carries ``simulate=True``.  ``check`` raises the typed error
    a real worker fault would have surfaced: the differential value is
    that the *coordinator-side* handling (typed propagation, retry,
    stats) is identical whether the failure was a process or a
    simulation.
    """

    __slots__ = ("plan", "shard_indices", "round_timeout", "injectors")

    def __init__(
        self,
        plan: FaultPlan,
        shard_indices: Sequence[int],
        round_timeout: Optional[float],
        phase: str,
    ) -> None:
        self.plan = plan
        self.round_timeout = round_timeout
        self.shard_indices = tuple(shard_indices)
        self.injectors = {}
        for shard in self.shard_indices:
            injector = FaultInjector(plan, shard)
            injector.begin_phase(phase)
            self.injectors[shard] = injector

    def check(self, point: str, round_index: Optional[int] = None) -> None:
        """Raise the typed error for any spec matching *point*."""
        for shard, injector in self.injectors.items():
            spec = injector._match(
                point, round_index, ("crash", "hang", "eof", "corrupt")
            )
            if spec is None:
                continue
            injector._fired.add(spec)
            if spec.kind == "hang":
                timeout = self.round_timeout
                if timeout is not None:
                    time.sleep(min(spec.hang_seconds, timeout))
                    raise ShardWorkerTimeout(
                        (shard,), timeout, alive_shards=(shard,)
                    )
                time.sleep(spec.hang_seconds)
                continue
            if spec.kind == "corrupt":
                raise WireCorruptionError(
                    "simulated corrupt batch for shard %d at %s" % (shard, point)
                )
            raise ShardWorkerError(
                "simulated worker %s for shard %d at %s"
                % (spec.kind, shard, point)
            )
