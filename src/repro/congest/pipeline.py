"""Phase-graph pipeline compiler for composite CONGEST runs.

The composite ``DistNearClique`` pipeline is a *statically known* composition
of CONGEST subroutines: every phase reads context state some earlier phase
wrote (the BFS tree, the component membership, the candidate subsets) and the
order never changes.  Running it phase-at-a-time through a session therefore
pays coordination costs — a worker re-arm, a context fold-back, a fresh
barrier stream — that the dataflow does not require.

This module turns declared per-phase effects into an executable plan:

* :class:`PhaseEffects` — what a :class:`~repro.congest.node.Protocol`
  reads/writes: context-state keys, globals, the output register, and named
  cross-phase artifacts it produces or consumes (``bfs-tree``, ``leader``,
  ``component-map``).  Protocols declare one via
  :meth:`~repro.congest.node.Protocol.effects`; the PIPE001 lint rule keeps
  the declaration honest against the hook bodies.
* :func:`validate_pipeline` — checks the phase graph's dataflow: every
  declared read must be satisfied by an earlier write (or a declared external
  input) and every consumed artifact must have been produced.  A pipeline
  that lies about its effects fails here, at compile time, not as a silent
  wrong answer.
* :func:`compile_pipeline` — plans the run: maximal runs of *adjacent,
  declared, fusable* phases become one :class:`PhaseGroup`, executed by a
  single session ``execute_fused`` (one arm, one context fold-back, one
  barrier stream per group).  Undeclared or explicitly unfusable phases are
  singleton groups, so ``pipeline_mode="fuse"`` degrades gracefully to the
  sequential plan when nothing is declared.
* :class:`ArtifactCache` + context snapshot/restore helpers — cache the
  tree-building prefix of a composite run keyed by ``(CSR fingerprint,
  sample)``; a replay restores the exact post-prefix context state and
  merges the *recorded* per-phase metrics, so message accounting stays
  bit-identical to a fresh build.

Fusion never changes semantics: phases inside a group still execute
sequentially to termination in declared order; only the parent-side
coordination between them (re-arm shipping, context fold-back) is elided.
Bit-identity across ``pipeline_mode`` settings is enforced by the
differential suite.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.congest.node import NodeContext, Protocol

__all__ = [
    "ARTIFACT_BFS_TREE",
    "ARTIFACT_TREE_CHILDREN",
    "ARTIFACT_LEADER",
    "ARTIFACT_COMPONENT_MAP",
    "PhaseEffects",
    "PhaseGroup",
    "PipelinePlan",
    "PipelineValidationError",
    "ArtifactCache",
    "CachedPrefix",
    "compile_pipeline",
    "validate_pipeline",
    "snapshot_contexts",
    "restore_contexts",
]

#: Cross-phase artifact names used by the ``DistNearClique`` composition.
ARTIFACT_BFS_TREE = "bfs-tree"
ARTIFACT_TREE_CHILDREN = "tree-children"
ARTIFACT_LEADER = "leader"
ARTIFACT_COMPONENT_MAP = "component-map"


class PipelineValidationError(ValueError):
    """A phase graph whose declared dataflow cannot execute as ordered."""


@dataclass(frozen=True)
class PhaseEffects:
    """Declared context footprint of one protocol.

    ``reads`` / ``writes`` are context-state keys; a key both read and
    written (read-modify-write) belongs in both sets.  ``globals_read``
    names the ``ctx.globals`` entries consulted.  ``writes_output`` marks
    protocols that touch the per-node output register.  ``produces`` /
    ``consumes`` name cross-phase artifacts — coarse, human-meaningful
    handles (the BFS tree, the elected leader) used for dataflow validation
    and artifact caching.  ``fusable=False`` opts a declared phase out of
    fusion (it still participates in validation).
    """

    reads: FrozenSet[str] = frozenset()
    writes: FrozenSet[str] = frozenset()
    globals_read: FrozenSet[str] = frozenset()
    writes_output: bool = False
    produces: Tuple[str, ...] = ()
    consumes: Tuple[str, ...] = ()
    fusable: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "reads", frozenset(self.reads))
        object.__setattr__(self, "writes", frozenset(self.writes))
        object.__setattr__(self, "globals_read", frozenset(self.globals_read))
        object.__setattr__(self, "produces", tuple(self.produces))
        object.__setattr__(self, "consumes", tuple(self.consumes))

    @property
    def touched(self) -> FrozenSet[str]:
        return self.reads | self.writes

    def merged(self, other: Optional["PhaseEffects"]) -> "PhaseEffects":
        """Union of two declarations (used for injected hook callables)."""
        if other is None:
            return self
        return PhaseEffects(
            reads=self.reads | other.reads,
            writes=self.writes | other.writes,
            globals_read=self.globals_read | other.globals_read,
            writes_output=self.writes_output or other.writes_output,
            produces=self.produces + other.produces,
            consumes=self.consumes + other.consumes,
            fusable=self.fusable and other.fusable,
        )


@dataclass(frozen=True)
class PhaseGroup:
    """One pipeline stage: a single phase, or a fused run of phases."""

    protocols: Tuple[Protocol, ...]

    @property
    def fused(self) -> bool:
        return len(self.protocols) > 1

    @property
    def label(self) -> str:
        return "+".join(protocol.name for protocol in self.protocols)


@dataclass(frozen=True)
class PipelinePlan:
    """The compiled plan: ordered groups covering the full phase sequence."""

    groups: Tuple[PhaseGroup, ...]
    mode: str = "fuse"
    notes: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def phases(self) -> Tuple[Protocol, ...]:
        return tuple(p for group in self.groups for p in group.protocols)

    @property
    def fused_phase_count(self) -> int:
        """Phases whose parent-side re-arm/fold the plan elides."""
        return sum(len(g.protocols) - 1 for g in self.groups if g.fused)

    def describe(self) -> str:
        lines = ["pipeline plan (mode=%s):" % self.mode]
        for index, group in enumerate(self.groups):
            tag = "fused" if group.fused else "solo"
            lines.append("  [%d] %-5s %s" % (index, tag, group.label))
        for note in self.notes:
            lines.append("  note: %s" % note)
        return "\n".join(lines)


def _effects_of(protocol: Protocol) -> Optional[PhaseEffects]:
    declared = protocol.effects()
    if declared is None:
        return None
    if not isinstance(declared, PhaseEffects):
        raise PipelineValidationError(
            "%s.effects() returned %r; expected PhaseEffects or None"
            % (type(protocol).__name__, type(declared).__name__)
        )
    return declared


def validate_pipeline(
    protocols: Sequence[Protocol],
    external_reads: Iterable[str] = (),
    external_artifacts: Iterable[str] = (),
) -> List[str]:
    """Check the declared dataflow of an ordered phase sequence.

    Every declared read must be covered by a write of an earlier phase, the
    phase's own writes (read-modify-write), or ``external_reads`` (inputs
    installed before the pipeline starts — forced-sample flags, globals).
    Every consumed artifact must have been produced earlier or arrive via
    ``external_artifacts`` (an artifact-cache replay of the pipeline's
    prefix).  Returns the compiler notes (one per undeclared phase); raises
    :class:`PipelineValidationError` on a dataflow violation.
    """
    notes: List[str] = []
    available: set = set(external_reads)
    produced: set = set(external_artifacts)
    for position, protocol in enumerate(protocols):
        declared = _effects_of(protocol)
        if declared is None:
            notes.append(
                "phase %d (%s) declares no effects; treated as opaque"
                % (position, protocol.name)
            )
            # An opaque phase may write anything; stop validating reads
            # against the accumulated write set — later declared phases can
            # legitimately read keys the opaque phase produced.
            available.add(None)
            continue
        if None not in available:
            missing = declared.reads - available - declared.writes
            if missing:
                raise PipelineValidationError(
                    "phase %d (%s) reads %s before any earlier phase or "
                    "external input writes them"
                    % (position, protocol.name, sorted(missing))
                )
        for artifact in declared.consumes:
            if artifact not in produced:
                raise PipelineValidationError(
                    "phase %d (%s) consumes artifact %r which no earlier "
                    "phase produces" % (position, protocol.name, artifact)
                )
        available.update(declared.writes)
        produced.update(declared.produces)
    return notes


def compile_pipeline(
    protocols: Sequence[Protocol],
    mode: str = "fuse",
    external_reads: Iterable[str] = (),
    external_artifacts: Iterable[str] = (),
    max_group_size: Optional[int] = None,
) -> PipelinePlan:
    """Validate the phase sequence and plan its execution.

    ``mode="off"`` returns the sequential plan (every phase a singleton
    group) but still validates declared dataflow.  ``mode="fuse"`` fuses
    maximal runs of adjacent declared-and-fusable phases into one group;
    ``max_group_size`` bounds a group (``None`` = unbounded) — useful to
    bound the transactional replay unit under supervised retry.
    """
    if mode not in ("off", "fuse"):
        raise ValueError("unknown pipeline mode %r" % (mode,))
    phases = tuple(protocols)
    notes = validate_pipeline(phases, external_reads, external_artifacts)
    groups: List[PhaseGroup] = []
    current: List[Protocol] = []

    def flush() -> None:
        if current:
            groups.append(PhaseGroup(protocols=tuple(current)))
            del current[:]

    for protocol in phases:
        declared = _effects_of(protocol)
        fusable = (
            mode == "fuse"
            and declared is not None
            and declared.fusable
            and getattr(protocol, "quiesce_terminates", False)
        )
        if not fusable:
            flush()
            groups.append(PhaseGroup(protocols=(protocol,)))
            continue
        if max_group_size is not None and len(current) >= max_group_size:
            flush()
        current.append(protocol)
    flush()
    return PipelinePlan(groups=tuple(groups), mode=mode, notes=tuple(notes))


# ---------------------------------------------------------------------------
# context snapshots + the cross-run artifact cache
# ---------------------------------------------------------------------------
def snapshot_contexts(contexts: Sequence[NodeContext]) -> List[Tuple]:
    """Deep-copy the mutable faces of every context (state, output, RNG)."""
    frames: List[Tuple] = []
    for ctx in contexts:
        frames.append(
            (
                copy.deepcopy(ctx.state),
                copy.deepcopy(ctx.output),
                ctx.halted,
                ctx.rng.getstate(),
                dict(ctx.globals),
                ctx.round_index,
            )
        )
    return frames


def restore_contexts(
    contexts: Sequence[NodeContext], frames: Sequence[Tuple]
) -> None:
    """Restore contexts to a snapshot taken by :func:`snapshot_contexts`."""
    if len(contexts) != len(frames):
        raise ValueError(
            "snapshot covers %d contexts, network has %d"
            % (len(frames), len(contexts))
        )
    for ctx, frame in zip(contexts, frames):
        state, output, halted, rng_state, globals_frame, round_index = frame
        ctx.state.clear()
        ctx.state.update(copy.deepcopy(state))
        ctx.output = copy.deepcopy(output)
        ctx._halted = halted
        ctx.rng.setstate(rng_state)
        ctx.globals.clear()
        ctx.globals.update(globals_frame)
        ctx._round = round_index
        ctx._outgoing = {}


@dataclass
class CachedPrefix:
    """One cached pipeline prefix: post-prefix contexts + per-phase results."""

    frames: List[Tuple]
    phase_results: List[Tuple[str, Any, Any]]  # (label, outputs, metrics)


class ArtifactCache:
    """Cross-run cache of pipeline prefixes (BFS tree + leader election).

    Keys are caller-supplied — the composite runner uses
    ``(network.csr_fingerprint(), frozenset(sample))`` so a mutated graph or
    a different sample can never replay a stale tree.  Values are full
    context snapshots plus the recorded per-phase outputs and metrics, so a
    replay is bit-identical to a fresh build *including* message accounting.

    Replay writes parent-side context state, so it is only sound on sessions
    whose parent contexts are authoritative between executes; sessions that
    keep worker-side state authoritative (the persistent process backend)
    advertise ``worker_state_authoritative = True`` and are skipped by the
    runner.
    """

    def __init__(self, max_entries: int = 8) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.skips = 0
        self._entries: "Dict[Any, CachedPrefix]" = {}
        self._order: List[Any] = []

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: Any) -> Optional[CachedPrefix]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._order.remove(key)
        self._order.append(key)
        return entry

    def store(self, key: Any, entry: CachedPrefix) -> None:
        if key not in self._entries:
            while len(self._order) >= self.max_entries:
                evicted = self._order.pop(0)
                del self._entries[evicted]
            self._order.append(key)
        self._entries[key] = entry
