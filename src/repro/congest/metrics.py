"""Round, message and bit accounting.

The experiments that reproduce the paper's complexity statements (round
complexity O(2^{|S|}) — Lemma 5.1; O(log n)-bit messages — Section 2 and
experiment E6) read their measurements from these records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class RoundMetrics:
    """Measurements for a single synchronous round."""

    round_index: int
    messages_sent: int = 0
    bits_sent: int = 0
    max_message_bits: int = 0
    #: Number of distinct (sender, receiver) pairs used this round; with
    #: congestion enforcement this equals ``messages_sent``.
    edges_used: int = 0
    active_nodes: int = 0

    def observe_message(self, bits: int) -> None:
        self.messages_sent += 1
        self.bits_sent += bits
        if bits > self.max_message_bits:
            self.max_message_bits = bits


@dataclass
class RunMetrics:
    """Aggregate measurements for one protocol execution.

    Attributes
    ----------
    rounds:
        Number of communication rounds executed.  Following the standard
        convention, a protocol in which no node ever sends a message has
        zero communication rounds even though local computation happened.
    total_messages / total_bits:
        Volume of communication over the whole run.
    max_message_bits:
        The largest single message observed — the quantity bounded by
        O(log n) in the CONGEST model.
    max_messages_per_round:
        Peak per-round traffic (a congestion indicator).
    per_round:
        Optional per-round trace (present when the scheduler was configured
        with ``record_round_metrics=True``).
    ack_messages / safety_messages:
        Synchronizer control overhead, reported separately from the
        protocol traffic: acknowledgements of payload messages and safety
        notifications (one per edge direction per pulse).  Zero for the
        synchronous engines; populated by the async engine
        (:mod:`repro.congest.synchronizer`).  Control messages carry O(1)
        bits each and are excluded from every other field, which is what
        keeps the protocol metrics bit-identical across engines.
    """

    rounds: int = 0
    total_messages: int = 0
    total_bits: int = 0
    max_message_bits: int = 0
    max_messages_per_round: int = 0
    ack_messages: int = 0
    safety_messages: int = 0
    per_round: List[RoundMetrics] = field(default_factory=list)
    protocol_breakdown: Dict[str, "RunMetrics"] = field(default_factory=dict)

    @property
    def control_messages(self) -> int:
        """Total synchronizer overhead (acks plus safety notifications)."""
        return self.ack_messages + self.safety_messages

    def absorb_round(self, round_metrics: RoundMetrics, keep_trace: bool) -> None:
        """Fold one round's measurements into the aggregate."""
        self.rounds += 1
        self.total_messages += round_metrics.messages_sent
        self.total_bits += round_metrics.bits_sent
        if round_metrics.max_message_bits > self.max_message_bits:
            self.max_message_bits = round_metrics.max_message_bits
        if round_metrics.messages_sent > self.max_messages_per_round:
            self.max_messages_per_round = round_metrics.messages_sent
        if keep_trace:
            self.per_round.append(round_metrics)

    def merge(self, other: "RunMetrics", label: Optional[str] = None) -> None:
        """Accumulate another run's metrics (used by composite protocols).

        Rounds add up because composite protocols run their stages in
        sequence; message maxima are combined with ``max``.
        """
        self.rounds += other.rounds
        self.total_messages += other.total_messages
        self.total_bits += other.total_bits
        self.max_message_bits = max(self.max_message_bits, other.max_message_bits)
        self.max_messages_per_round = max(
            self.max_messages_per_round, other.max_messages_per_round
        )
        self.ack_messages += other.ack_messages
        self.safety_messages += other.safety_messages
        self.per_round.extend(other.per_round)
        if label is not None:
            existing = self.protocol_breakdown.get(label)
            if existing is None:
                snapshot = RunMetrics(
                    rounds=other.rounds,
                    total_messages=other.total_messages,
                    total_bits=other.total_bits,
                    max_message_bits=other.max_message_bits,
                    max_messages_per_round=other.max_messages_per_round,
                    ack_messages=other.ack_messages,
                    safety_messages=other.safety_messages,
                )
                self.protocol_breakdown[label] = snapshot
            else:
                existing.merge(other)

    @property
    def mean_message_bits(self) -> float:
        """Average message size over the run (0.0 for a silent run)."""
        if self.total_messages == 0:
            return 0.0
        return self.total_bits / self.total_messages

    def as_row(self) -> Tuple[int, int, int, int]:
        """Compact summary used by the benchmark tables."""
        return (
            self.rounds,
            self.total_messages,
            self.max_message_bits,
            self.max_messages_per_round,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            "RunMetrics(rounds=%d, messages=%d, bits=%d, max_message_bits=%d)"
            % (self.rounds, self.total_messages, self.total_bits, self.max_message_bits)
        )
