"""Columnar gather/apply/scatter execution of regular protocol phases.

Every engine so far drives the same per-node callbacks: ``on_start`` once,
then ``on_round`` once per non-halted node per round.  For *regular* phases
— every node runs the same closed-form recipe, no data-dependent waiting —
that dispatch is pure interpreter overhead: at n ≥ 10⁴ the round loop spends
its time calling Python functions that mostly flush one queued message or
fold an inbox whose content is fully determined by the phase's inputs.

This module splits such a phase into the three stages of the classic
vertex-centric decomposition (GraVF's ``core_apply`` / ``core_scatter``
split; DGL's gSpMM kernels):

``gather``
    Segment-reductions of per-node columns over the CSR adjacency
    (:meth:`KernelFrame.count_flagged_neighbors` and friends) — the inbox
    fold, computed from the sender columns instead of delivered messages.
``apply``
    Numpy updates of packed per-node registers: the halted flags
    (:attr:`KernelFrame.halted`), round counter and any phase-specific
    columns, folded back into every :class:`~repro.congest.node.NodeContext`
    exactly where the process backend's pickle round-trip writes them.
``scatter``
    Columnar outbox emission: a phase whose sends are enqueued at
    ``on_start`` and drained one-per-neighbour-per-round (the
    :class:`repro.primitives.pipelines.Outbox` discipline) is described by
    per-sender *streams* — interned message kind plus a column of per-item
    bit charges, the same kind-vocabulary idea
    :mod:`repro.congest.sharding.wire` uses on the process barrier — and
    :meth:`KernelFrame.run_broadcast_schedule` turns the streams into the
    exact per-round trace the callbacks would have produced.

A protocol opts in by returning a :class:`VectorizedKernel` from
:meth:`repro.congest.node.Protocol.vectorized_kernel`;
:class:`VectorizedEngine` (``engine="vectorized"``) executes it over the
whole frontier as array operations and **falls back to the batched callback
path** for every protocol that declares no kernel — so a composite pipeline
mixes kernel-covered and callback phases freely.  The ``on_round`` path
remains the executable semantics: the differential suite holds the kernels
to bit-identity — outputs, per-node state, round count, message/bit metrics
including the per-round trace — against :class:`ReferenceEngine`, exactly
like every other backend.

The kernels are single-process numpy; when numpy is unavailable the engine
degrades to the batched path wholesale (no new hard dependency).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

try:  # numpy is an optional accelerator, never a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less hosts
    _np = None

from repro.congest.config import CongestConfig
from repro.congest.engine import (
    BatchedEngine,
    RunResult,
    register_engine,
)
from repro.congest.errors import MessageSizeViolation, RoundLimitExceeded
from repro.congest.metrics import RoundMetrics, RunMetrics
from repro.congest.network import Network
from repro.congest.node import NodeContext, Protocol


def numpy_available() -> bool:
    """Whether the columnar kernels can run on this host."""
    return _np is not None


class VectorizedKernel:
    """A columnar execution plan for one regular protocol phase.

    :meth:`execute` receives a :class:`KernelFrame` and must reproduce, via
    array operations and direct state writes, exactly what the protocol's
    callbacks would have done under the reference engine: the same per-node
    ``state`` / ``output`` mutations, the same halt decisions (recorded in
    ``frame.halted``), the same RNG consumption, and the same message
    traffic (described to :meth:`KernelFrame.run_broadcast_schedule`, which
    derives the bit-identical per-round metrics).  Kernels fit phases whose
    rounds are *closed-form*; anything with data-dependent waiting belongs
    on the callback path.
    """

    def execute(self, frame: "KernelFrame") -> None:
        raise NotImplementedError


class KernelFrame:
    """Packed per-node registers plus the CSR views a kernel computes over.

    One frame is built per ``execute`` by :class:`VectorizedEngine`; the
    kernel mutates contexts/registers through it and the engine folds the
    registers back before harvesting outputs.

    Attributes
    ----------
    ids / indptr / indices / degrees:
        The network CSR as int64 numpy arrays (``ids[i]`` is the node id at
        dense index ``i``; neighbours of ``i`` are the dense indices
        ``indices[indptr[i]:indptr[i+1]]``, ascending).
    ctx_list:
        Contexts in dense-index (= ascending id) order — the iteration
        order of the reference engine, which kernels must follow wherever
        per-node work consumes randomness or builds ordered state.
    halted:
        Packed halt register (bool column).  A kernel marks the nodes the
        callbacks would have halted in ``on_start``; the covered phases
        never halt mid-phase (their receivers stay active until global
        quiescence), so one column captures the whole run.
    rounds / metrics:
        Filled by :meth:`run_broadcast_schedule`.
    """

    def __init__(
        self,
        network: Network,
        protocol: Protocol,
        config: CongestConfig,
        contexts: Dict[int, NodeContext],
    ) -> None:
        if _np is None:  # pragma: no cover - engine gates on numpy first
            raise RuntimeError("vectorized kernels require numpy")
        self.network = network
        self.protocol = protocol
        self.config = config
        self.contexts = contexts
        #: The numpy module, so kernels in protocol modules can use array
        #: operations without importing (and hard-depending on) numpy
        #: themselves — a frame only ever exists when numpy imported.
        self.np = _np
        ids, indptr, indices = network.csr()
        self.ids = _np.asarray(ids, dtype=_np.int64)
        self.indptr = _np.frombuffer(indptr, dtype=_np.int64)
        self.indices = (
            _np.frombuffer(indices, dtype=_np.int64)
            if len(indices)
            else _np.zeros(0, dtype=_np.int64)
        )
        self.degrees = _np.diff(self.indptr)
        self.n = len(ids)
        self.ctx_list: List[NodeContext] = [contexts[node_id] for node_id in ids]
        self.halted = _np.zeros(self.n, dtype=bool)
        self.rounds = 0
        self.metrics = RunMetrics()
        # Scatter-side kind vocabulary: append-only string → small-int
        # interning, the same idea the process barrier's wire format uses
        # (:class:`repro.congest.sharding.wire.WireEncoder`).  Streams carry
        # the interned id, not the string, so a broadcast of one kind over
        # thousands of senders costs one table entry.
        self._kind_table: Dict[str, int] = {}
        self._kind_names: List[str] = []
        #: Interned kind per stream of the last broadcast schedule, when the
        #: kernel supplied them (diagnostics only).
        self.stream_kinds: Optional[List[int]] = None

    # ------------------------------------------------------------------
    # scatter: interning vocabulary
    # ------------------------------------------------------------------
    def intern_kind(self, kind: str) -> int:
        """Intern a message kind, mirroring the wire format's vocabulary."""
        kind_id = self._kind_table.get(kind)
        if kind_id is None:
            kind_id = len(self._kind_names)
            self._kind_table[kind] = kind_id
            self._kind_names.append(kind)
        return kind_id

    def kind_name(self, kind_id: int) -> str:
        return self._kind_names[kind_id]

    # ------------------------------------------------------------------
    # gather: segment reductions over the CSR
    # ------------------------------------------------------------------
    def count_flagged_neighbors(self, flags: "Any") -> "Any":
        """Per-node count of flagged neighbours (segment-reduce over CSR).

        ``flags`` is a boolean column indexed by dense node index; the
        result column holds ``|{w ∈ Γ(v) : flags[w]}|`` for every ``v`` —
        zero for isolated nodes and for nodes of a fully unflagged
        component, which is exactly the inbox-emptiness predicate the
        covered phases' receivers branch on.
        """
        if len(self.indices) == 0:
            return _np.zeros(self.n, dtype=_np.int64)
        prefix = _np.concatenate(
            (
                _np.zeros(1, dtype=_np.int64),
                _np.cumsum(flags[self.indices].astype(_np.int64)),
            )
        )
        return prefix[self.indptr[1:]] - prefix[self.indptr[:-1]]

    def neighbor_slice(self, dense_index: int) -> "Any":
        """Dense indices of one node's neighbours (ascending)."""
        return self.indices[self.indptr[dense_index] : self.indptr[dense_index + 1]]

    # ------------------------------------------------------------------
    # scatter: closed-form pipelined broadcast accounting
    # ------------------------------------------------------------------
    def run_broadcast_schedule(
        self,
        senders: Sequence[int],
        streams: Sequence[Sequence[int]],
        kind_ids: Optional[Sequence[int]] = None,
    ) -> int:
        """Account an ``on_start``-enqueued pipelined broadcast phase.

        ``senders`` are dense indices in ascending order; ``streams[k]`` is
        the column of per-item bit charges sender ``senders[k]`` pushed to
        *every* neighbour via ``Outbox.push_all`` during ``on_start``
        (``kind_ids`` optionally carries the interned kind per stream, for
        diagnostics and future backends).  Under the Outbox discipline the
        item at position ``t-1`` is flushed — to all ``deg`` neighbours at
        once — in round ``t``, and the phase quiesces one round after the
        longest stream drains.  This method reproduces the callback
        engines' behaviour exactly:

        * round count ``T + 1`` for the longest stream ``T`` (one trailing
          silent round consumes the last deliveries, then quiescence), or
          ``1`` when nothing is queued but nodes are still active, or ``0``
          when every node halted in ``on_start``;
        * per-round trace: messages/bits from the columns, ``edges_used ==
          messages_sent`` (one message per pair), ``active_nodes`` constant
          at the non-halted count;
        * the model rules: the bit budget is enforced in the batched
          engine's drain order (round-ascending, then sender id), raising
          the same :class:`MessageSizeViolation`; congestion is satisfied
          by construction (one flush per neighbour per round);
        * ``max_rounds``: :class:`RoundLimitExceeded` exactly when the
          callback loop would have started round ``max_rounds + 1``.

        Returns the round count (also stored in :attr:`rounds`).
        """
        np = _np
        # Kept for introspection (tests, tracing, future compiled backends);
        # the metrics only need the bit columns.
        self.stream_kinds = list(kind_ids) if kind_ids is not None else None
        active = int(self.n - int(self.halted.sum()))
        lens = np.array([len(stream) for stream in streams], dtype=np.int64)
        longest = int(lens.max()) if len(lens) else 0
        if active == 0:
            # Everyone halted at on_start with nothing queued: the loop
            # breaks before executing a single round.
            self.rounds = 0
            return 0
        rounds = longest + 1

        # Error precedence mirrors the callback loop: an over-budget item at
        # queue position p is raised *during* round p + 1, while the round
        # cap is raised at the top of round max_rounds + 1 — so the size
        # violation wins exactly when its round is within the cap.
        max_rounds = self.config.max_rounds
        budget = self.config.message_bit_budget
        if budget is not None and any(
            bits > budget for stream in streams for bits in stream
        ):
            violation_round = 1 + min(
                position
                for stream in streams
                for position, bits in enumerate(stream)
                if bits > budget
            )
            if max_rounds is None or violation_round <= max_rounds:
                self._raise_budget_violation(senders, streams, budget)
        if max_rounds is not None and rounds > max_rounds:
            raise RoundLimitExceeded(max_rounds)

        degs = self.degrees[np.asarray(senders, dtype=np.int64)] if len(lens) else lens
        # messages per round t = sum of deg over streams with >= t items:
        # bincount the stream lengths (weighted by degree), then suffix-sum.
        counts = np.bincount(lens, weights=degs.astype(np.float64), minlength=longest + 1)
        msgs_by_round = np.cumsum(counts[::-1])[::-1]
        # bits per round via the flattened (position, degree * bits) pairs;
        # the per-round message-size peak via a segmented maximum.
        bits_by_round = np.zeros(longest + 1, dtype=np.float64)
        peak_by_round = np.zeros(longest + 1, dtype=np.int64)
        if longest:
            positions = np.concatenate(
                [np.arange(1, length + 1) for length in lens]
            )
            flat_bits = np.concatenate(
                [np.asarray(stream, dtype=np.int64) for stream in streams]
            )
            flat_weights = np.repeat(degs, lens) * flat_bits
            bits_by_round = np.bincount(
                positions, weights=flat_weights.astype(np.float64), minlength=longest + 1
            )
            np.maximum.at(peak_by_round, positions, flat_bits)

        keep_trace = self.config.record_round_metrics
        for round_index in range(1, rounds + 1):
            rm = RoundMetrics(round_index=round_index)
            if round_index <= longest:
                rm.messages_sent = int(msgs_by_round[round_index])
                rm.bits_sent = int(bits_by_round[round_index])
                rm.max_message_bits = int(peak_by_round[round_index])
                rm.edges_used = rm.messages_sent
            rm.active_nodes = active
            self.metrics.absorb_round(rm, keep_trace)
        self.rounds = rounds
        return rounds

    def _raise_budget_violation(
        self, senders: Sequence[int], streams: Sequence[Sequence[int]], budget: int
    ) -> None:
        """Raise exactly the violation the batched drain would have raised.

        The drain walks rounds ascending and, within a round, senders in
        frontier (ascending id) order; a sender's first queued receiver is
        its lowest-id neighbour (``push_all`` fills the outbox in neighbour
        order).
        """
        longest = max(len(stream) for stream in streams)
        for position in range(longest):
            for sender, stream in zip(senders, streams):
                if position < len(stream) and stream[position] > budget:
                    receiver_dense = int(self.neighbor_slice(sender)[0])
                    raise MessageSizeViolation(
                        int(self.ids[sender]),
                        int(self.ids[receiver_dense]),
                        int(stream[position]),
                        budget,
                        position + 1,
                    )
        raise AssertionError("no over-budget item found")  # pragma: no cover

    # ------------------------------------------------------------------
    # apply: fold the packed registers back into the contexts
    # ------------------------------------------------------------------
    def fold_back(self) -> None:
        """Write the packed registers back into every ``NodeContext``.

        The same slots the process backend's pickle round-trip restores
        (``sharding/workers.py``): the halt flag, the final round counter
        (every context ends at the run's round count, halted or not, like
        the reference's per-round advance), and an empty outbox.  State
        dicts, outputs and RNGs were mutated in place by the kernel, so a
        ``reuse_contexts`` successor phase — kernel or callback — observes
        exactly the state the callbacks would have left.
        """
        rounds = self.rounds
        halted = self.halted
        for index, ctx in enumerate(self.ctx_list):
            ctx._halted = bool(halted[index])
            ctx._round = rounds
            ctx._outgoing = {}


class VectorizedEngine(BatchedEngine):
    """Kernel fast paths over the batched machinery; see module docstring.

    ``execute`` asks the protocol for a :class:`VectorizedKernel`; with one
    (and numpy importable) the phase runs columnar, otherwise the call is
    exactly :class:`BatchedEngine.execute` — same CSR, frontier and drain
    machinery, so un-kernelled phases cost nothing extra.
    """

    name = "vectorized"

    def execute(
        self,
        network: Network,
        protocol: Protocol,
        config: Optional[CongestConfig] = None,
        global_inputs: Optional[Dict[str, Any]] = None,
        per_node_inputs: Optional[Dict[int, Dict[str, Any]]] = None,
        reuse_contexts: bool = False,
    ) -> RunResult:
        config = config or CongestConfig()
        kernel: Optional[VectorizedKernel] = None
        if _np is not None:
            maker = getattr(protocol, "vectorized_kernel", None)
            if callable(maker):
                kernel = maker()
        if kernel is None:
            return super().execute(
                network,
                protocol,
                config=config,
                global_inputs=global_inputs,
                per_node_inputs=per_node_inputs,
                reuse_contexts=reuse_contexts,
            )
        contexts = network.build_contexts(
            global_inputs=global_inputs,
            per_node_inputs=per_node_inputs,
            fresh=not reuse_contexts,
        )
        frame = KernelFrame(network, protocol, config, contexts)
        kernel.execute(frame)
        frame.fold_back()
        outputs = {
            node_id: protocol.collect_output(ctx)
            for node_id, ctx in contexts.items()
        }
        return RunResult(outputs=outputs, metrics=frame.metrics, contexts=contexts)


register_engine(VectorizedEngine())
