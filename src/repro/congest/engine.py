"""Pluggable execution engines for the synchronous round loop.

The round loop that drives a :class:`repro.congest.node.Protocol` over a
:class:`repro.congest.network.Network` is factored out of the scheduler into
an :class:`Engine` so that alternative executions (batched, sharded, async
backends) can be plugged in without touching protocol code.  Five engines
ship today:

``ReferenceEngine`` (``engine="reference"``)
    The original per-object round loop, moved here intact.  It is the
    executable definition of the simulator's semantics: one dict-backed
    inbox per node per round, every context visited every round, model
    rules enforced as messages are collected.  It is the oracle the
    differential suite compares every other engine against.

``BatchedEngine`` (``engine="batched"``, the default)
    A fast path for large networks.  It drives the same protocol callbacks
    but organises the bookkeeping around flat arrays and reuse:

    * node ids are mapped to dense indices via the network's CSR adjacency
      (:meth:`repro.congest.network.Network.csr`), so inboxes live in a
      preallocated list indexed by position instead of a per-round dict;
    * inbox buffers are reused across rounds (cleared, not reallocated) and
      a node's outbox dict is drained in place;
    * :class:`repro.congest.message.Inbound` wrappers are interned per
      round, so a broadcast of one message object to k neighbours allocates
      one wrapper instead of k;
    * an *active frontier* — the nodes that have not locally terminated —
      is maintained incrementally, so silent or halted regions of the graph
      cost nothing per round instead of O(n).

``AsyncEngine`` (``engine="async"``, defined in
:mod:`repro.congest.synchronizer`)
    An event-driven asynchronous execution under Awerbuch's alpha
    synchronizer: every message experiences a random link delay and pulses
    are gated by acknowledgement / safety notifications.  Outputs, pulse
    count and protocol message/bit metrics are bit-identical to the
    synchronous engines; the synchronizer's control overhead is reported in
    the separate ``ack_messages`` / ``safety_messages`` metrics fields.

``ShardedEngine`` (``engine="sharded"``, defined in
:mod:`repro.congest.sharding`)
    Partition-parallel execution: the network is split into ``k`` shards
    (:func:`repro.congest.sharding.partition_network`) and each shard steps
    its own frontier with the batched machinery, exchanging boundary-edge
    messages at the round barrier.  ``CongestConfig.shard_backend`` selects
    serial execution (the deterministic mode the differential harness
    runs), a thread pool (``CongestConfig.shard_workers``), or one worker
    process per shard — true multi-core execution with boundary traffic in
    the packed wire format of :mod:`repro.congest.sharding.wire`.

``VectorizedEngine`` (``engine="vectorized"``, defined in
:mod:`repro.congest.vectorized`)
    Columnar gather/apply/scatter execution of *regular* phases: a protocol
    that declares a :class:`~repro.congest.vectorized.VectorizedKernel`
    (via :meth:`Protocol.vectorized_kernel`) runs as array operations over
    packed per-node registers and a closed-form broadcast schedule instead
    of per-node callbacks; protocols without a kernel fall back to the
    batched path unchanged.  Requires numpy for the kernel fast paths
    (degrades to ``batched`` wholesale without it).

**The reference-vs-fast-path contract.**  For every protocol, graph, seed
and configuration, every non-reference engine must produce bit-identical
results to ``ReferenceEngine``: the same per-node outputs, the same round
(or pulse) count, and the same protocol message/bit metrics (including the
per-round trace).  Engine-specific *control* traffic — for example the
async engine's acks — is excluded from the protocol metrics and reported in
dedicated fields instead.  The differential suite in
``tests/test_engine_equivalence.py`` asserts this for every protocol in the
package; any observable divergence is a bug in the backend, never a
tolerated approximation.  Two consequences for engine authors:

* inbox ordering is part of the contract — messages are delivered grouped
  by sender in ascending node-id order, multiple messages from one sender
  in send order — because protocols may fold their inbox in arrival order;
* the frontier may only skip work that provably has no observable effect:
  a halted node's ``on_round`` is never invoked (late messages are dropped,
  as in the reference), but an unfinished node is always invoked, even
  with an empty inbox.

Protocols must treat the inbox list handed to ``on_round`` as borrowed: it
is only valid for the duration of the call and must not be mutated or
retained (the fast path reuses the buffers; the reference engine happens to
hand out fresh lists).  Every protocol in this package complies.

The active frontier relies on the default termination predicate
(:meth:`Protocol.finished` == "has this node halted"), which is monotone.
A protocol that overrides ``finished`` with an arbitrary predicate (for
example "run for exactly T rounds") is executed by the batched engine on a
compatibility path that re-evaluates the predicate for every node each
round, exactly like the reference.

**Execution sessions.**  Composite pipelines (the 14-phase
``DistNearClique`` runner) execute many protocols on one network;
:meth:`Engine.open_session` returns a :class:`CongestSession` that owns
whatever engine state is worth keeping alive across those ``execute``
calls.  The default session is a thin per-call wrapper (bit-identical to
calling the engine directly); with ``CongestConfig.session_mode ==
"persistent"`` the sharded engine's process backend keeps its worker pool
and shared-memory CSR mapping for the session's lifetime and re-arms the
workers between phases (:mod:`repro.congest.sharding.workers`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.congest.config import SESSION_MODES, CongestConfig
from repro.congest.errors import (
    CongestionViolation,
    MessageSizeViolation,
    ProtocolError,
    RoundLimitExceeded,
)
from repro.congest.message import Inbound
from repro.congest.metrics import RoundMetrics, RunMetrics
from repro.congest.network import Network
from repro.congest.node import NodeContext, Protocol

#: Number of consecutive completely silent rounds after which a protocol that
#: does not declare ``quiesce_terminates`` is considered stalled.
_STALL_LIMIT = 3

#: Shared inbox handed to nodes with no mail this round (fast path).  It is
#: a tuple, not a list, so a protocol that violates the borrowed-inbox
#: contract by mutating it fails loudly at the violation site instead of
#: leaking phantom messages into later runs.
_EMPTY_INBOX: Sequence[Inbound] = ()


@dataclass
class RunResult:
    """Outcome of one protocol execution.

    Attributes
    ----------
    outputs:
        Mapping from node id to the value reported by
        :meth:`Protocol.collect_output` (by default the node's output
        register).
    metrics:
        Round / message / bit accounting for the run.
    contexts:
        The per-node contexts after the run; composite protocols read
        intermediate per-node state from here.
    """

    outputs: Dict[int, Any]
    metrics: RunMetrics
    contexts: Dict[int, NodeContext] = field(default_factory=dict)


class CongestSession:
    """Engine-owned execution state shared across ``execute`` calls.

    The paper's algorithm is a *composite* of ~14 pipelined CONGEST phases
    over one fixed network; an engine whose per-``execute`` setup is
    expensive (spawning the process backend's worker pool, shipping CSR
    slices) pays it once per phase unless something owns that setup across
    the phases.  A session is that owner: open it once per (network,
    configuration), run every phase through :meth:`execute`, and close it
    (sessions are context managers) to release whatever the engine kept
    alive.

    This base class is the **default session**: a thin per-call wrapper
    that delegates straight to :meth:`Engine.execute`, so the semantics of
    the ``reference`` / ``batched`` / ``async`` engines are untouched —
    running a pipeline through a default session is byte-for-byte the
    per-call behaviour.  Engines with setup worth amortising override
    :meth:`Engine.open_session` to return a richer session (today:
    :class:`repro.congest.sharding.workers.ProcessSession`, selected by
    ``CongestConfig.session_mode == "persistent"`` with the process shard
    backend).  The engine contract is unchanged in either case: outputs,
    round counts and protocol metrics are bit-identical to
    ``ReferenceEngine`` in session mode, enforced by the differential
    suite's session arm.

    Attributes
    ----------
    network / config:
        The network the session is bound to and the configuration
        ``execute`` falls back to when none is passed per call.
    stats:
        Session-level accounting, or ``None`` when the engine collects
        none.  Persistent sharded sessions expose a
        :class:`repro.congest.sharding.ShardingStats` with per-phase
        partials and session totals.
    """

    def __init__(
        self,
        engine: "Engine",
        network: Network,
        config: Optional[CongestConfig] = None,
    ) -> None:
        self.engine = engine
        self.network = network
        self.config = config or CongestConfig()
        self.stats = None
        self.closed = False

    # ------------------------------------------------------------------
    def execute(
        self,
        protocol: Protocol,
        *,
        config: Optional[CongestConfig] = None,
        global_inputs: Optional[Dict[str, Any]] = None,
        per_node_inputs: Optional[Dict[int, Dict[str, Any]]] = None,
        reuse_contexts: bool = False,
    ) -> RunResult:
        """Run one protocol within the session (same contract as the engine).

        ``config`` defaults to the configuration the session was opened
        with; per-call overrides are honoured for the model-rule knobs, but
        a persistent session's structural choices (shard plan, backend) are
        fixed at open time and a conflicting override raises.
        """
        if self.closed:
            raise ProtocolError("execute on a closed CongestSession")
        return self.engine.execute(
            self.network,
            protocol,
            config=config if config is not None else self.config,
            global_inputs=global_inputs,
            per_node_inputs=per_node_inputs,
            reuse_contexts=reuse_contexts,
        )

    #: Whether per-node context state is authoritative on the worker side
    #: *between* the executes of a composite run.  ``False`` here (and for
    #: every in-process engine): the parent's ``network.contexts`` hold the
    #: truth after each ``execute``, so a composite runner may restore them
    #: from a snapshot (the pipeline artifact cache) and keep executing.
    #: The persistent process session overrides this with ``True`` — its
    #: workers keep their own context copies armed across executes, so a
    #: parent-side restore would silently desynchronise them.
    worker_state_authoritative = False

    def execute_fused(
        self,
        protocols: Sequence[Protocol],
        *,
        config: Optional[CongestConfig] = None,
        reuse_contexts: bool = True,
    ) -> List[RunResult]:
        """Run a fused group of protocols, returning one result per phase.

        The group executes sequentially in declared order — fusion is a
        *coordination* optimisation, never a semantic one — so this default
        implementation is simply an :meth:`execute` loop and is trivially
        bit-identical to unfused execution.  Sessions that pay per-phase
        coordination costs (the persistent process session's re-arm and
        context fold-back) override it to elide those costs within the
        group; outputs, round counts and per-phase metrics must remain
        bit-identical, enforced by the differential suite.

        Inputs (globals, per-node state) are deliberately not accepted:
        fused groups always run mid-pipeline on already-armed contexts
        (``reuse_contexts=True``); a phase needing fresh inputs belongs at a
        group boundary, executed via :meth:`execute`.
        """
        if self.closed:
            raise ProtocolError("execute_fused on a closed CongestSession")
        if not protocols:
            return []
        return [
            self.execute(
                protocol,
                config=config,
                reuse_contexts=reuse_contexts,
            )
            for protocol in protocols
        ]

    def close(self) -> None:
        """Release session-held resources (idempotent)."""
        self.closed = True

    def __enter__(self) -> "CongestSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class Engine:
    """One strategy for executing a protocol to termination.

    Engines are stateless: all per-run state lives in local variables of
    :meth:`execute`, so a single engine instance may be shared freely across
    schedulers and threads.  State that must outlive one ``execute`` —
    worker pools, shared-memory mappings — belongs to a
    :class:`CongestSession` (see :meth:`open_session`), never to the engine.
    """

    #: Registry name (the value of ``CongestConfig.engine`` that selects it).
    name = "engine"

    def execute(
        self,
        network: Network,
        protocol: Protocol,
        config: Optional[CongestConfig] = None,
        global_inputs: Optional[Dict[str, Any]] = None,
        per_node_inputs: Optional[Dict[int, Dict[str, Any]]] = None,
        reuse_contexts: bool = False,
    ) -> RunResult:
        raise NotImplementedError

    def open_session(
        self,
        network: Network,
        config: Optional[CongestConfig] = None,
    ) -> CongestSession:
        """Open an execution session on *network* under *config*.

        The default implementation returns the thin per-call
        :class:`CongestSession` regardless of ``config.session_mode`` —
        engines without per-``execute`` setup have nothing to persist.
        Engines that do (the sharded engine's process backend) override
        this and honour ``session_mode == "persistent"``.
        """
        config = config or CongestConfig()
        if config.session_mode not in SESSION_MODES:
            raise ValueError(
                "unknown session mode %r; available modes: %s"
                % (config.session_mode, ", ".join(SESSION_MODES))
            )
        return CongestSession(self, network, config)


class ReferenceEngine(Engine):
    """The original per-object round loop — the semantics oracle."""

    name = "reference"

    def execute(
        self,
        network: Network,
        protocol: Protocol,
        config: Optional[CongestConfig] = None,
        global_inputs: Optional[Dict[str, Any]] = None,
        per_node_inputs: Optional[Dict[int, Dict[str, Any]]] = None,
        reuse_contexts: bool = False,
    ) -> RunResult:
        config = config or CongestConfig()
        contexts = network.build_contexts(
            global_inputs=global_inputs,
            per_node_inputs=per_node_inputs,
            fresh=not reuse_contexts,
        )
        metrics = RunMetrics()
        quiesce_ok = bool(getattr(protocol, "quiesce_terminates", False))

        # Messages queued during on_start are delivered in round 1; their
        # volume is accounted to that first round.
        startup_metrics = RoundMetrics(round_index=0)
        for ctx in contexts.values():
            ctx._advance_round(0)
            protocol.on_start(ctx)
        pending = self._collect_all(
            contexts, config, round_index=0, metrics=startup_metrics
        )

        rounds = 0
        silent_rounds = 0
        while True:
            all_done = all(protocol.finished(ctx) for ctx in contexts.values())
            if all_done and not pending:
                break
            if not pending and rounds > 0 and quiesce_ok:
                break
            if not pending and rounds > 0:
                silent_rounds += 1
                if silent_rounds >= _STALL_LIMIT:
                    raise ProtocolError(
                        "protocol %r stalled: no messages in flight, nodes not "
                        "finished, after %d silent rounds"
                        % (protocol.name, silent_rounds)
                    )
            else:
                silent_rounds = 0
            if config.max_rounds is not None and rounds >= config.max_rounds:
                raise RoundLimitExceeded(config.max_rounds)

            rounds += 1
            round_metrics = RoundMetrics(round_index=rounds)
            if rounds == 1:
                round_metrics.messages_sent = startup_metrics.messages_sent
                round_metrics.bits_sent = startup_metrics.bits_sent
                round_metrics.max_message_bits = startup_metrics.max_message_bits
            inboxes: Dict[int, List[Inbound]] = {}
            for (sender, receiver), message in pending:
                inboxes.setdefault(receiver, []).append(
                    Inbound(sender=sender, message=message)
                )

            active = 0
            for node_id, ctx in contexts.items():
                ctx._advance_round(rounds)
                inbox = inboxes.get(node_id, [])
                if protocol.finished(ctx):
                    # A halted node ignores late messages, mirroring the
                    # convention that its output is already committed.
                    continue
                active += 1
                protocol.on_round(ctx, inbox)
            round_metrics.active_nodes = active

            pending = self._collect_all(contexts, config, rounds, round_metrics)
            round_metrics.edges_used = len({pair for pair, _ in pending})
            metrics.absorb_round(round_metrics, config.record_round_metrics)

        outputs = {
            node_id: protocol.collect_output(ctx)
            for node_id, ctx in contexts.items()
        }
        return RunResult(outputs=outputs, metrics=metrics, contexts=contexts)

    # ------------------------------------------------------------------
    def _collect_all(
        self,
        contexts: Dict[int, NodeContext],
        config: CongestConfig,
        round_index: int,
        metrics: Optional[RoundMetrics],
    ) -> List:
        """Gather queued messages from every node, enforcing the model rules."""
        budget = config.message_bit_budget
        pending = []
        for node_id, ctx in contexts.items():
            outgoing = ctx._collect_outgoing()
            for receiver, messages in outgoing.items():
                if config.enforce_congestion and len(messages) > 1:
                    raise CongestionViolation(node_id, receiver, round_index)
                for message in messages:
                    if budget is not None and message.bits > budget:
                        raise MessageSizeViolation(
                            node_id, receiver, message.bits, budget, round_index
                        )
                    if metrics is not None:
                        metrics.observe_message(message.bits)
                    pending.append(((node_id, receiver), message))
        return pending


class BatchedEngine(Engine):
    """CSR-backed fast path; see the module docstring for the contract."""

    name = "batched"

    def execute(
        self,
        network: Network,
        protocol: Protocol,
        config: Optional[CongestConfig] = None,
        global_inputs: Optional[Dict[str, Any]] = None,
        per_node_inputs: Optional[Dict[int, Dict[str, Any]]] = None,
        reuse_contexts: bool = False,
    ) -> RunResult:
        config = config or CongestConfig()
        contexts = network.build_contexts(
            global_inputs=global_inputs,
            per_node_inputs=per_node_inputs,
            fresh=not reuse_contexts,
        )
        metrics = RunMetrics()
        quiesce_ok = bool(getattr(protocol, "quiesce_terminates", False))
        # The incremental frontier is only sound for the default (monotone)
        # termination predicate; overridden predicates take the scan path.
        fast_finished = type(protocol).finished is Protocol.finished

        ids, _indptr, _indices = network.csr()
        index_of = network.node_index_of
        ctx_list = [contexts[node_id] for node_id in ids]
        n = len(ctx_list)

        enforce = config.enforce_congestion
        budget = config.message_bit_budget
        # A disabled budget is modelled as an unexceedable limit so the hot
        # loop needs a single comparison instead of a None check per message.
        budget_limit: float = float("inf") if budget is None else budget
        max_rounds = config.max_rounds
        on_round = protocol.on_round

        inbox_buffers: List[List[Inbound]] = [[] for _ in range(n)]
        touched: List[int] = []
        # Per-sender Inbound intern caches, keyed by message object identity
        # and reset every round (the cache keeps its messages alive, so ids
        # cannot be recycled while an entry is live).
        interned: Dict[int, Dict[int, Inbound]] = {}
        # Outbound messages awaiting delivery, as two parallel flat lists
        # (dense receiver index / Inbound) to avoid a tuple per message.
        pending_index: List[int] = []
        pending_inbound: List[Inbound] = []

        def drain(
            ctx: NodeContext,
            round_index: int,
            rm: RoundMetrics,
            pairs: Optional[Set[Tuple[int, int]]],
        ) -> None:
            """Move one node's queued messages into the pending lists (rule
            checks and accounting included), reusing the node's outbox dict."""
            sender = ctx.node_id
            outgoing = ctx._outgoing
            messages_seen = 0
            bits_seen = 0
            max_bits = rm.max_message_bits
            append_index = pending_index.append
            append_inbound = pending_inbound.append
            cache = interned.get(sender)
            if cache is None:
                cache = interned[sender] = {}
            cache_get = cache.get
            for receiver, messages in outgoing.items():
                if enforce and len(messages) > 1:
                    raise CongestionViolation(sender, receiver, round_index)
                receiver_index = index_of[receiver]
                for message in messages:
                    bits = message.bits
                    if bits > budget_limit:
                        raise MessageSizeViolation(
                            sender, receiver, bits, budget, round_index
                        )
                    messages_seen += 1
                    bits_seen += bits
                    if bits > max_bits:
                        max_bits = bits
                    message_id = id(message)
                    inbound = cache_get(message_id)
                    if inbound is None:
                        inbound = Inbound(sender=sender, message=message)
                        cache[message_id] = inbound
                    append_index(receiver_index)
                    append_inbound(inbound)
                    if pairs is not None:
                        pairs.add((sender, receiver))
            outgoing.clear()
            rm.messages_sent += messages_seen
            rm.bits_sent += bits_seen
            rm.max_message_bits = max_bits

        # --- round 0: on_start, then one sweep over every node ------------
        startup_metrics = RoundMetrics(round_index=0)
        for ctx in ctx_list:
            ctx._round = 0
            protocol.on_start(ctx)
        for ctx in ctx_list:
            if ctx._outgoing:
                drain(ctx, 0, startup_metrics, None)

        frontier: List[int] = []
        if fast_finished:
            frontier = [i for i in range(n) if not ctx_list[i]._halted]

        rounds = 0
        silent_rounds = 0
        while True:
            if fast_finished:
                all_done = not frontier
            else:
                all_done = all(protocol.finished(ctx) for ctx in ctx_list)
            if all_done and not pending_index:
                break
            if not pending_index and rounds > 0 and quiesce_ok:
                break
            if not pending_index and rounds > 0:
                silent_rounds += 1
                if silent_rounds >= _STALL_LIMIT:
                    raise ProtocolError(
                        "protocol %r stalled: no messages in flight, nodes not "
                        "finished, after %d silent rounds"
                        % (protocol.name, silent_rounds)
                    )
            else:
                silent_rounds = 0
            if max_rounds is not None and rounds >= max_rounds:
                raise RoundLimitExceeded(max_rounds)

            rounds += 1
            round_metrics = RoundMetrics(round_index=rounds)
            if rounds == 1:
                round_metrics.messages_sent = startup_metrics.messages_sent
                round_metrics.bits_sent = startup_metrics.bits_sent
                round_metrics.max_message_bits = startup_metrics.max_message_bits

            for receiver_index, inbound in zip(pending_index, pending_inbound):
                box = inbox_buffers[receiver_index]
                if not box:
                    touched.append(receiver_index)
                box.append(inbound)

            pending_index = []
            pending_inbound = []
            pairs: Optional[Set[Tuple[int, int]]] = None if enforce else set()
            interned.clear()

            if fast_finished:
                round_metrics.active_nodes = len(frontier)
                any_halted = False
                for i in frontier:
                    ctx = ctx_list[i]
                    ctx._round = rounds
                    box = inbox_buffers[i]
                    on_round(ctx, box if box else _EMPTY_INBOX)
                    if ctx._halted:
                        any_halted = True
                    if ctx._outgoing:
                        drain(ctx, rounds, round_metrics, pairs)
                if any_halted:
                    frontier = [i for i in frontier if not ctx_list[i]._halted]
            else:
                active = 0
                for i in range(n):
                    ctx = ctx_list[i]
                    ctx._round = rounds
                    if protocol.finished(ctx):
                        continue
                    active += 1
                    box = inbox_buffers[i]
                    on_round(ctx, box if box else _EMPTY_INBOX)
                    if ctx._outgoing:
                        drain(ctx, rounds, round_metrics, pairs)
                round_metrics.active_nodes = active

            for i in touched:
                inbox_buffers[i].clear()
            del touched[:]

            round_metrics.edges_used = (
                len(pending_index) if pairs is None else len(pairs)
            )
            metrics.absorb_round(round_metrics, config.record_round_metrics)

        # The reference advances every context each round; halted nodes were
        # skipped above, so align their round counters before harvest.
        for ctx in ctx_list:
            ctx._round = rounds
        outputs = {
            node_id: protocol.collect_output(ctx)
            for node_id, ctx in contexts.items()
        }
        return RunResult(outputs=outputs, metrics=metrics, contexts=contexts)


#: Shared engine singletons, keyed by registry name.  ``AsyncEngine`` and
#: ``ShardedEngine`` register themselves here when their modules
#: (:mod:`repro.congest.synchronizer`, :mod:`repro.congest.sharding`) are
#: imported (see :func:`register_engine`).
ENGINES: Dict[str, Engine] = {
    ReferenceEngine.name: ReferenceEngine(),
    BatchedEngine.name: BatchedEngine(),
}

#: Name of the engine used when neither the caller nor the configuration
#: selects one.  The batched fast path has survived multiple releases of
#: differential CI bit-identical to the reference, so it is the default;
#: ``ReferenceEngine`` remains the oracle the differential suite compares
#: against.
DEFAULT_ENGINE = BatchedEngine.name


def register_engine(engine: Engine) -> None:
    """Register *engine* under its :attr:`Engine.name` in the registry.

    Re-registration under the same name replaces the previous instance,
    which keeps module reloads idempotent.
    """
    ENGINES[engine.name] = engine


def _ensure_builtin_engines() -> None:
    # AsyncEngine, ShardedEngine and VectorizedEngine live in modules that
    # import this one, so a top-level import here would be circular;
    # importing them lazily makes the registry complete no matter which
    # module the caller reached first.
    import repro.congest.sharding  # noqa: F401
    import repro.congest.synchronizer  # noqa: F401
    import repro.congest.vectorized  # noqa: F401


def available_engines() -> Tuple[str, ...]:
    """Registry names of the engines that can be selected."""
    _ensure_builtin_engines()
    return tuple(sorted(ENGINES))


def get_engine(spec: Union[None, str, Engine] = None) -> Engine:
    """Resolve an engine selector to an :class:`Engine` instance.

    ``spec`` may be ``None`` (the default engine), a registry name, or an
    already-constructed :class:`Engine` (returned as-is, which is how
    external backends plug in without registration).
    """
    if spec is None:
        return ENGINES[DEFAULT_ENGINE]
    if isinstance(spec, Engine):
        return spec
    _ensure_builtin_engines()
    try:
        return ENGINES[spec]
    except KeyError:
        raise ValueError(
            "unknown engine %r; available engines: %s"
            % (spec, ", ".join(available_engines()))
        )
