"""The per-node programming interface of the simulator.

A distributed algorithm is expressed as a :class:`Protocol`: a factory of
per-node state plus two callbacks, ``on_start`` (round 0 initialisation,
before any message is delivered) and ``on_round`` (one invocation per node
per round, receiving the messages sent to this node in the previous round).

The :class:`NodeContext` is the only handle a node has on the world.  It
deliberately exposes *local information only* — the node's identifier, its
incident edges, the global parameters every node is assumed to know (n and
the algorithm's input parameters), and a ``send`` primitive.  Protocol code
that respects this interface is, by construction, a legitimate distributed
algorithm: it cannot peek at another node's state or at non-adjacent parts of
the topology.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.congest.errors import ProtocolError
from repro.congest.message import Inbound, Message


class NodeContext:
    """Local execution context handed to protocol callbacks for one node.

    Attributes
    ----------
    node_id:
        The node's unique identifier (an integer label).
    neighbors:
        Tuple of identifiers of adjacent nodes, in sorted order.
    n:
        Number of nodes in the system (every node is assumed to know n, as
        is standard in the CONGEST model).
    state:
        A per-node dictionary for protocol state.  It persists across rounds
        and across protocols run in sequence on the same network (composite
        protocols use it to pass stage outputs along).
    output:
        The node's output register.  The paper's problem statement requires
        each node to hold, on termination, either a label or the special
        value ``None`` (the paper's ``⊥``).
    """

    __slots__ = (
        "node_id",
        "neighbors",
        "n",
        "state",
        "output",
        "globals",
        "_round",
        "_outgoing",
        "_halted",
        "_rng",
    )

    def __init__(
        self,
        node_id: int,
        neighbors: Sequence[int],
        n: int,
        global_inputs: Optional[Dict[str, Any]] = None,
        rng: Any = None,
    ) -> None:
        self.node_id = node_id
        self.neighbors: Tuple[int, ...] = tuple(sorted(neighbors))
        self.n = n
        self.state: Dict[str, Any] = {}
        self.output: Any = None
        #: Parameters known to all nodes (epsilon, p, round bounds...).
        self.globals: Dict[str, Any] = dict(global_inputs or {})
        self._round = 0
        self._outgoing: Dict[int, List[Message]] = {}
        self._halted = False
        self._rng = rng

    # ------------------------------------------------------------------
    # read-only views
    # ------------------------------------------------------------------
    @property
    def round_index(self) -> int:
        """Index of the current round (0-based)."""
        return self._round

    @property
    def degree(self) -> int:
        """Number of incident edges."""
        return len(self.neighbors)

    @property
    def halted(self) -> bool:
        """Whether this node has declared local termination."""
        return self._halted

    @property
    def rng(self):
        """The node's private random source (set by the scheduler)."""
        if self._rng is None:
            raise ProtocolError(
                "node %r requested randomness but the scheduler did not "
                "provide a random source" % (self.node_id,)
            )
        return self._rng

    def is_neighbor(self, other: int) -> bool:
        """Return True when *other* is adjacent to this node."""
        return other in self._neighbor_set()

    def _neighbor_set(self):
        cached = self.state.get("__neighbor_set")
        if cached is None:
            cached = frozenset(self.neighbors)
            self.state["__neighbor_set"] = cached
        return cached

    # ------------------------------------------------------------------
    # actions
    # ------------------------------------------------------------------
    def _check_can_send(self, message: Message) -> None:
        """The send-side validations that do not depend on the receiver."""
        if self._halted:
            raise ProtocolError(
                "node %r attempted to send after halting" % (self.node_id,)
            )
        if not isinstance(message, Message):
            raise ProtocolError(
                "node %r attempted to send a %r instead of a Message"
                % (self.node_id, type(message).__name__)
            )

    def send(self, neighbor: int, message: Message) -> None:
        """Queue *message* for delivery to *neighbor* at the next round.

        The scheduler enforces the one-message-per-edge-per-round rule and
        the bit budget; this method only validates adjacency and type.
        """
        self._check_can_send(message)
        if neighbor not in self._neighbor_set():
            raise ProtocolError(
                "node %r attempted to send to %r which is not a neighbour"
                % (self.node_id, neighbor)
            )
        self._outgoing.setdefault(neighbor, []).append(message)

    def send_all(self, message: Message, exclude: Iterable[int] = ()) -> None:
        """Queue *message* to every neighbour except those in *exclude*.

        Broadcast is the hot send path of every protocol in this package
        (the E12 profile shows per-send validation dominating large runs),
        so the checks run once here and the queueing goes through the
        trusted bulk path: adjacency is guaranteed by iterating
        ``self.neighbors``, and the one-message-per-edge rule remains
        enforced by the engines when the outbox is drained.
        """
        if exclude:
            excluded = set(exclude)
            receivers = [v for v in self.neighbors if v not in excluded]
        else:
            receivers = self.neighbors
        if not receivers:
            # Matches the per-send loop: zero sends means zero validations.
            return
        self._check_can_send(message)
        self._extend_trusted(receivers, message)

    def _extend_trusted(self, receivers: Sequence[int], message: Message) -> None:
        """Trusted bulk enqueue: one validated message to many receivers.

        Engine/scheduler-facing fast path (the ``Outbox.extend_trusted`` of
        the roadmap's message-layer item): the caller vouches that *message*
        passed :meth:`_check_can_send` and that every receiver is a
        neighbour, so no per-receiver validation runs.  Protocol code must
        use :meth:`send` / :meth:`send_all` instead — those keep the model's
        guarantees checkable, and the engines still enforce the
        one-message-per-edge rule and the bit budget at drain time for
        every path, trusted or not.
        """
        outgoing = self._outgoing
        for neighbor in receivers:
            queue = outgoing.get(neighbor)
            if queue is None:
                outgoing[neighbor] = [message]
            else:
                queue.append(message)

    def halt(self) -> None:
        """Declare local termination.

        A halted node takes no further part in the protocol; the scheduler
        stops once every node has halted and no messages remain in flight.
        """
        self._halted = True

    def write_output(self, value: Any) -> None:
        """Write the node's output register (the paper's label or ``⊥``)."""
        self.output = value

    # ------------------------------------------------------------------
    # scheduler-facing internals
    # ------------------------------------------------------------------
    def _collect_outgoing(self) -> Dict[int, List[Message]]:
        outgoing = self._outgoing
        self._outgoing = {}
        return outgoing

    def _advance_round(self, round_index: int) -> None:
        self._round = round_index

    def _reset_for_new_protocol(self) -> None:
        """Clear termination status between protocols of a composite run."""
        self._halted = False
        self._outgoing = {}


class Protocol:
    """Base class for distributed algorithms run by the scheduler.

    Subclasses override :meth:`on_start` and :meth:`on_round`.  The default
    implementations do nothing, so trivial protocols (for example a protocol
    that only inspects its local neighbourhood) can override a single hook.

    Subclasses are bound by the engine contract — hooks must be
    deterministic given ``ctx.rng`` (no module-level randomness, clocks or
    ``id()``), per-node state must be picklable (the sharded engine's
    process backend ships it across worker pipes), payloads must stay
    inside the wire vocabulary and the O(log n) bit budget, and only the
    public :class:`NodeContext` API may be used.  ``repro lint``
    (:mod:`repro.lint`) checks these rules statically, with one rule id per
    invariant; the README's "Protocol contract" section lists them.
    """

    #: Human-readable protocol name used in metrics and error messages.
    name = "protocol"

    def on_start(self, ctx: NodeContext) -> None:
        """Round-0 initialisation for one node (no messages available yet)."""

    def on_round(self, ctx: NodeContext, inbox: List[Inbound]) -> None:
        """Process the messages delivered this round and queue replies."""

    def finished(self, ctx: NodeContext) -> bool:
        """Local termination predicate.

        By default a node is finished once it has called
        :meth:`NodeContext.halt`.  Protocols whose nodes terminate implicitly
        (for example "run for exactly T rounds") may override this instead of
        calling ``halt`` explicitly.
        """
        return ctx.halted

    def vectorized_kernel(self) -> Optional[Any]:
        """Columnar execution plan for this protocol, or ``None``.

        A protocol whose per-round behaviour is *regular* — every node runs
        the same closed-form gather/apply/scatter recipe — may return a
        :class:`repro.congest.vectorized.VectorizedKernel` here.  The
        ``vectorized`` engine then executes the whole phase as array
        operations over packed per-node registers instead of dispatching
        ``on_start`` / ``on_round`` once per node per round, and holds the
        result to the engine contract: outputs, per-node state, round count
        and message/bit metrics (including the per-round trace) must be
        bit-identical to what the callbacks would have produced — the
        callbacks above remain the executable semantics, enforced by the
        differential suite.

        The default is ``None``: the vectorized engine falls back to the
        batched callback path for this protocol.  Irregular protocols
        (data-dependent waiting, per-node control flow) should keep it that
        way.
        """
        return None

    def effects(self) -> Optional[Any]:
        """Declared context-state footprint of this protocol, or ``None``.

        A protocol that is part of a composite pipeline may return a
        :class:`repro.congest.pipeline.PhaseEffects` describing which state
        keys and globals its hooks read and write, which output registers it
        touches, and which cross-phase artifacts (BFS tree, leader,
        component map) it produces or consumes.  The pipeline compiler
        (:func:`repro.congest.pipeline.compile_pipeline`) uses the
        declarations to validate the phase graph's dataflow and to fuse
        compatible adjacent phases into one session ``execute``; the PIPE001
        lint rule keeps the declarations honest against the hook bodies.

        The default is ``None``: an undeclared protocol is never fused — it
        always runs as its own pipeline stage, exactly as before.
        """
        return None

    def collect_output(self, ctx: NodeContext) -> Any:
        """Value reported for this node in the run result (default: output)."""
        return ctx.output
