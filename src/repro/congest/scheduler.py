"""The synchronous round scheduler.

The scheduler drives a :class:`repro.congest.node.Protocol` over a
:class:`repro.congest.network.Network` in lock-step rounds:

1. messages queued in round *r* are delivered at the start of round *r + 1*;
2. every (non-halted) node processes its inbox and queues new messages;
3. the one-message-per-edge-per-round rule and the per-message bit budget are
   enforced as messages are collected.

The round loop itself lives in :mod:`repro.congest.engine`, behind a
pluggable :class:`repro.congest.engine.Engine` interface: ``"batched"`` is
the CSR-backed fast path (the default), ``"reference"`` the semantics
oracle kept for the differential harness, ``"async"`` the event-driven
alpha-synchronizer backend (:mod:`repro.congest.synchronizer`), and
``"sharded"`` the partition-parallel backend
(:mod:`repro.congest.sharding`); all are guaranteed to produce
bit-identical outputs and protocol metrics (see the engine module's
docstring for the contract).  The engine is chosen by the ``engine``
argument here, falling back to :attr:`CongestConfig.engine`.

Termination
-----------
A run terminates when every node has locally terminated
(:meth:`Protocol.finished`) and no messages are in flight.  Protocols that do
not implement explicit distributed termination detection may set the class
attribute ``quiesce_terminates = True``; such a run also terminates when the
network becomes silent (no messages in flight and none produced in the last
round).  This is a simulator convenience standing in for the deterministic
worst-case round bounds the paper uses (Lemma 5.1); measured round counts are
unaffected because silent trailing rounds are not executed.  A protocol
without ``quiesce_terminates`` that stays silent for :data:`_STALL_LIMIT`
consecutive rounds without finishing is declared stalled — fewer silent
rounds followed by renewed traffic are legal under every engine.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

from repro.congest.config import CongestConfig
from repro.congest.engine import (
    _STALL_LIMIT,
    CongestSession,
    Engine,
    RunResult,
    get_engine,
)
from repro.congest.network import Network
from repro.congest.node import Protocol

__all__ = [
    "RunResult",
    "SynchronousScheduler",
    "run_protocol",
    "_STALL_LIMIT",
]


class SynchronousScheduler:
    """Run one protocol on one network under a :class:`CongestConfig`.

    Parameters
    ----------
    network, protocol, config, global_inputs, per_node_inputs, reuse_contexts:
        As documented on :func:`run_protocol`.
    engine:
        Execution-engine selector — a registry name (``"reference"``,
        ``"batched"``, ``"async"``, ``"sharded"``), an
        :class:`repro.congest.engine.Engine` instance, or ``None`` to use
        ``config.engine``.
    session:
        An open :class:`repro.congest.engine.CongestSession` to run inside.
        Must be bound to the same *network*; when given, the session's
        engine drives the run (``engine`` is ignored) and per-``execute``
        setup the session persists — worker pools, shared-memory CSR
        mappings — is reused instead of rebuilt.  When ``config`` is
        omitted the session's configuration applies.
    """

    def __init__(
        self,
        network: Network,
        protocol: Protocol,
        config: Optional[CongestConfig] = None,
        global_inputs: Optional[Dict[str, Any]] = None,
        per_node_inputs: Optional[Dict[int, Dict[str, Any]]] = None,
        reuse_contexts: bool = False,
        engine: Union[None, str, Engine] = None,
        session: Optional[CongestSession] = None,
    ) -> None:
        self.network = network
        self.protocol = protocol
        self.config = config or CongestConfig()
        self._config_given = config is not None
        self.global_inputs = global_inputs
        self.per_node_inputs = per_node_inputs
        self.reuse_contexts = reuse_contexts
        self.engine = engine
        self.session = session

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute the protocol to termination and return its result."""
        if self.session is not None:
            if self.session.network is not self.network:
                raise ValueError(
                    "the scheduler's network is not the network the session "
                    "was opened on; open one session per network"
                )
            return self.session.execute(
                self.protocol,
                config=self.config if self._config_given else None,
                global_inputs=self.global_inputs,
                per_node_inputs=self.per_node_inputs,
                reuse_contexts=self.reuse_contexts,
            )
        engine = get_engine(
            self.engine if self.engine is not None else self.config.engine
        )
        return engine.execute(
            self.network,
            self.protocol,
            config=self.config,
            global_inputs=self.global_inputs,
            per_node_inputs=self.per_node_inputs,
            reuse_contexts=self.reuse_contexts,
        )


def run_protocol(
    network: Network,
    protocol: Protocol,
    config: Optional[CongestConfig] = None,
    global_inputs: Optional[Dict[str, Any]] = None,
    per_node_inputs: Optional[Dict[int, Dict[str, Any]]] = None,
    reuse_contexts: bool = False,
    engine: Union[None, str, Engine] = None,
    session: Optional[CongestSession] = None,
) -> RunResult:
    """Convenience wrapper: build a scheduler and run it once."""
    scheduler = SynchronousScheduler(
        network=network,
        protocol=protocol,
        config=config,
        global_inputs=global_inputs,
        per_node_inputs=per_node_inputs,
        reuse_contexts=reuse_contexts,
        engine=engine,
        session=session,
    )
    return scheduler.run()
