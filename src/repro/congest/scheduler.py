"""The synchronous round scheduler.

The scheduler drives a :class:`repro.congest.node.Protocol` over a
:class:`repro.congest.network.Network` in lock-step rounds:

1. messages queued in round *r* are delivered at the start of round *r + 1*;
2. every (non-halted) node processes its inbox and queues new messages;
3. the one-message-per-edge-per-round rule and the per-message bit budget are
   enforced as messages are collected.

Termination
-----------
A run terminates when every node has locally terminated
(:meth:`Protocol.finished`) and no messages are in flight.  Protocols that do
not implement explicit distributed termination detection may set the class
attribute ``quiesce_terminates = True``; such a run also terminates when the
network becomes silent (no messages in flight and none produced in the last
round).  This is a simulator convenience standing in for the deterministic
worst-case round bounds the paper uses (Lemma 5.1); measured round counts are
unaffected because silent trailing rounds are not executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.congest.config import CongestConfig
from repro.congest.errors import (
    CongestionViolation,
    MessageSizeViolation,
    ProtocolError,
    RoundLimitExceeded,
)
from repro.congest.message import Inbound, Message
from repro.congest.metrics import RoundMetrics, RunMetrics
from repro.congest.network import Network
from repro.congest.node import NodeContext, Protocol

#: Number of consecutive completely silent rounds after which a protocol that
#: does not declare ``quiesce_terminates`` is considered stalled.
_STALL_LIMIT = 3


@dataclass
class RunResult:
    """Outcome of one protocol execution.

    Attributes
    ----------
    outputs:
        Mapping from node id to the value reported by
        :meth:`Protocol.collect_output` (by default the node's output
        register).
    metrics:
        Round / message / bit accounting for the run.
    contexts:
        The per-node contexts after the run; composite protocols read
        intermediate per-node state from here.
    """

    outputs: Dict[int, Any]
    metrics: RunMetrics
    contexts: Dict[int, NodeContext] = field(default_factory=dict)


class SynchronousScheduler:
    """Run one protocol on one network under a :class:`CongestConfig`."""

    def __init__(
        self,
        network: Network,
        protocol: Protocol,
        config: Optional[CongestConfig] = None,
        global_inputs: Optional[Dict[str, Any]] = None,
        per_node_inputs: Optional[Dict[int, Dict[str, Any]]] = None,
        reuse_contexts: bool = False,
    ) -> None:
        self.network = network
        self.protocol = protocol
        self.config = config or CongestConfig()
        self.global_inputs = global_inputs
        self.per_node_inputs = per_node_inputs
        self.reuse_contexts = reuse_contexts

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute the protocol to termination and return its result."""
        contexts = self.network.build_contexts(
            global_inputs=self.global_inputs,
            per_node_inputs=self.per_node_inputs,
            fresh=not self.reuse_contexts,
        )
        metrics = RunMetrics()
        quiesce_ok = bool(getattr(self.protocol, "quiesce_terminates", False))

        # Messages queued during on_start are delivered in round 1; their
        # volume is accounted to that first round.
        startup_metrics = RoundMetrics(round_index=0)
        for ctx in contexts.values():
            ctx._advance_round(0)
            self.protocol.on_start(ctx)
        pending = self._collect_all(contexts, round_index=0, metrics=startup_metrics)

        rounds = 0
        silent_rounds = 0
        while True:
            all_done = all(self.protocol.finished(ctx) for ctx in contexts.values())
            if all_done and not pending:
                break
            if not pending and rounds > 0 and quiesce_ok:
                break
            if not pending and rounds > 0:
                silent_rounds += 1
                if silent_rounds >= _STALL_LIMIT:
                    raise ProtocolError(
                        "protocol %r stalled: no messages in flight, nodes not "
                        "finished, after %d silent rounds"
                        % (self.protocol.name, silent_rounds)
                    )
            else:
                silent_rounds = 0
            if self.config.max_rounds is not None and rounds >= self.config.max_rounds:
                raise RoundLimitExceeded(self.config.max_rounds)

            rounds += 1
            round_metrics = RoundMetrics(round_index=rounds)
            if rounds == 1:
                round_metrics.messages_sent = startup_metrics.messages_sent
                round_metrics.bits_sent = startup_metrics.bits_sent
                round_metrics.max_message_bits = startup_metrics.max_message_bits
            inboxes: Dict[int, List[Inbound]] = {}
            for (sender, receiver), message in pending:
                inboxes.setdefault(receiver, []).append(
                    Inbound(sender=sender, message=message)
                )

            active = 0
            for node_id, ctx in contexts.items():
                ctx._advance_round(rounds)
                inbox = inboxes.get(node_id, [])
                if self.protocol.finished(ctx):
                    # A halted node ignores late messages, mirroring the
                    # convention that its output is already committed.
                    continue
                active += 1
                self.protocol.on_round(ctx, inbox)
            round_metrics.active_nodes = active

            pending = self._collect_all(contexts, rounds, round_metrics)
            round_metrics.edges_used = len({pair for pair, _ in pending})
            metrics.absorb_round(round_metrics, self.config.record_round_metrics)

        outputs = {
            node_id: self.protocol.collect_output(ctx)
            for node_id, ctx in contexts.items()
        }
        return RunResult(outputs=outputs, metrics=metrics, contexts=contexts)

    # ------------------------------------------------------------------
    def _collect_all(
        self,
        contexts: Dict[int, NodeContext],
        round_index: int,
        metrics: Optional[RoundMetrics],
    ) -> List:
        """Gather queued messages from every node, enforcing the model rules."""
        budget = self.config.message_bit_budget
        pending = []
        for node_id, ctx in contexts.items():
            outgoing = ctx._collect_outgoing()
            for receiver, messages in outgoing.items():
                if self.config.enforce_congestion and len(messages) > 1:
                    raise CongestionViolation(node_id, receiver, round_index)
                for message in messages:
                    if budget is not None and message.bits > budget:
                        raise MessageSizeViolation(
                            node_id, receiver, message.bits, budget, round_index
                        )
                    if metrics is not None:
                        metrics.observe_message(message.bits)
                    pending.append(((node_id, receiver), message))
        return pending


def run_protocol(
    network: Network,
    protocol: Protocol,
    config: Optional[CongestConfig] = None,
    global_inputs: Optional[Dict[str, Any]] = None,
    per_node_inputs: Optional[Dict[int, Dict[str, Any]]] = None,
    reuse_contexts: bool = False,
) -> RunResult:
    """Convenience wrapper: build a scheduler and run it once."""
    scheduler = SynchronousScheduler(
        network=network,
        protocol=protocol,
        config=config,
        global_inputs=global_inputs,
        per_node_inputs=per_node_inputs,
        reuse_contexts=reuse_contexts,
    )
    return scheduler.run()
