"""The communication graph and per-node contexts.

A :class:`Network` is constructed from an undirected ``networkx`` graph.
Node labels must be hashable; they are mapped to integer identifiers
(preserving integer labels when possible) because the paper assumes each
node carries a unique O(log n)-bit identifier that supports comparisons
(smallest-ID root election, largest-root tie breaking).

Relabelling is deterministic for *any* mix of label types: labels are
ordered first by type name and then by ``repr``, so a graph mixing integer
and string labels (as real edge-list files sometimes do) always produces
the same ``0..n-1`` assignment regardless of insertion order, instead of
tripping over ``sorted`` refusing to compare heterogeneous keys.

Adjacency is stored in CSR form — two flat integer arrays (``indptr`` and
``indices``) over a dense ``0..n-1`` index — which is what the batched
execution engine (:mod:`repro.congest.engine`) consumes; the per-node
neighbour tuples handed to contexts are views derived from it.
"""

from __future__ import annotations

import random
import zlib
from array import array
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.congest.errors import DeltaError, ProtocolError
from repro.congest.node import NodeContext


@dataclass(frozen=True)
class GraphDelta:
    """A batch of edge insertions and deletions over a fixed node set.

    The service layer's unit of topology change: edges come and go, nodes do
    not (the paper's model fixes the processor set; a "new node" workload is
    modelled by including isolated nodes up front).  Edges are undirected
    pairs; orientation and duplicates are normalised by
    :meth:`Network.apply_delta`, which validates the batch against the live
    topology before touching anything.
    """

    additions: Tuple[Tuple[int, int], ...] = ()
    removals: Tuple[Tuple[int, int], ...] = ()

    @property
    def touched_nodes(self) -> frozenset:
        """Every endpoint named by the batch."""
        return frozenset(
            v for edge in self.additions + self.removals for v in edge
        )


@dataclass(frozen=True)
class AppliedDelta:
    """The record of one successful :meth:`Network.apply_delta` call.

    Attributes
    ----------
    epoch:
        The network's :attr:`Network.delta_epoch` after this application —
        a monotone counter execution sessions compare against their own
        watermark to tell "mutated via the delta API" (repairable) from
        "mutated behind the API" (fatal).
    added / removed:
        The *effective* edge sets, canonically oriented (``u < v``): no-op
        entries (an addition already present, a removal already absent)
        are dropped during normalisation.
    touched:
        Endpoints of the effective edges — the dirty-node seed set for
        shard repair and incremental recomputation.
    fingerprint_after:
        :meth:`Network.csr_fingerprint` immediately after the rebuild; a
        session whose live fingerprint matches the last record's value
        knows the divergence is fully explained by the delta ledger.
    """

    epoch: int
    added: Tuple[Tuple[int, int], ...]
    removed: Tuple[Tuple[int, int], ...]
    touched: frozenset = field(repr=False)
    fingerprint_after: Tuple[int, int, int, int] = field(repr=False)

    @property
    def edges_changed(self) -> int:
        return len(self.added) + len(self.removed)


def _relabel_sort_key(label: Any) -> Tuple[str, str]:
    """Total order over arbitrary hashable labels: (type name, repr).

    Plain ``sorted`` raises ``TypeError`` on heterogeneous labels (``3 < "a"``
    is undefined), which would make the relabelling of a mixed int/str graph
    depend on whether the comparison ever happens.  Grouping by type name
    first and ``repr`` second is deterministic for any label mix and for any
    insertion order (labels of types with value-stable reprs, which covers
    every wire-friendly label type).
    """
    return (type(label).__name__, repr(label))


class Network:
    """An undirected communication network with integer node identifiers.

    Parameters
    ----------
    graph:
        Undirected simple graph.  Self-loops are ignored (a processor does
        not have a link to itself); multi-edges are collapsed by networkx.
    relabel:
        When True (default) and the graph's labels are not all integers, the
        nodes are relabelled ``0..n-1`` in (type name, repr) order — a total
        order that is well-defined even when integer and string labels are
        mixed in one graph.  The mapping is available as :attr:`label_of` /
        :attr:`id_of` and depends only on the label set, never on insertion
        order.
    seed:
        Seed for the network-level random source from which per-node private
        random generators are derived.
    node_seeds:
        Optional explicit per-node RNG seeds, keyed by node id.  A node with
        an entry here gets ``random.Random(node_seeds[id])`` instead of a
        seed drawn from the network RNG.  This is how the incremental
        service replays the exact seed a node *would* have received in a
        full run when re-executing only a sub-network: the full draw order
        is computed once and the relevant slice injected, keeping sub-run
        outputs bit-identical to the full run's.
    announced_n:
        The system size the per-node contexts announce as ``ctx.n``.
        Defaults to the actual node count.  The CONGEST model assumes every
        node knows the *system* size; a sub-network standing in for the
        dirty region of a larger evolving graph must announce the full
        system's ``n`` so identifier widths and message-bit accounting
        match the full run exactly.
    """

    def __init__(
        self,
        graph: nx.Graph,
        relabel: bool = True,
        seed: Optional[int] = None,
        node_seeds: Optional[Dict[int, int]] = None,
        announced_n: Optional[int] = None,
    ) -> None:
        if graph.is_directed():
            raise ValueError("the CONGEST simulator models undirected networks")
        working = nx.Graph()
        working.add_nodes_from(graph.nodes())
        working.add_edges_from((u, v) for u, v in graph.edges() if u != v)

        all_int = all(isinstance(node, int) for node in working.nodes())
        if all_int:
            self._graph = working
            self.id_of: Dict[Any, int] = {node: node for node in working.nodes()}
        elif relabel:
            ordered = sorted(working.nodes(), key=_relabel_sort_key)
            self.id_of = {label: index for index, label in enumerate(ordered)}
            self._graph = nx.relabel_nodes(working, self.id_of, copy=True)
        else:
            raise ValueError(
                "node labels must be integers when relabel=False; got %r"
                % (sorted(map(type, working.nodes()), key=repr)[:3],)
            )
        self.label_of: Dict[int, Any] = {v: k for k, v in self.id_of.items()}

        # Canonical flat-array (CSR) adjacency over a dense 0..n-1 index in
        # ascending node-id order; the per-node tuples below are views of it.
        ids: Tuple[int, ...] = tuple(sorted(self._graph.nodes()))
        self._ids = ids
        self._index_of: Dict[int, int] = {
            node_id: index for index, node_id in enumerate(ids)
        }
        self._adjacency: Dict[int, Tuple[int, ...]] = {}
        self._rebuild_csr(ids)
        self._rng = random.Random(seed)
        self._node_seeds: Dict[int, int] = dict(node_seeds or {})
        self._announced_n = announced_n
        self._contexts: Dict[int, NodeContext] = {}
        self._ctx_epoch = 0
        self._delta_epoch = 0
        self._delta_log: List[AppliedDelta] = []

    def _rebuild_csr(self, stale_nodes: Iterable[int]) -> None:
        """(Re)build the flat CSR arrays; *stale_nodes* need new tuples.

        At construction every node is stale.  After a delta only the
        touched endpoints' neighbour tuples are recomputed; the indptr /
        indices arrays are refilled in one O(n + m) pass either way —
        that single pass *is* the amortised rebuild (cheaper than the
        per-edge array surgery it replaces, and identical in cost to the
        construction-time build the engines already absorb).  The CRC is
        retaken so :meth:`csr_fingerprint` tracks the new topology.
        """
        index_of = self._index_of
        adjacency = self._adjacency
        for node_id in stale_nodes:
            adjacency[node_id] = tuple(sorted(self._graph.neighbors(node_id)))
        indptr = array("q", [0])
        indices = array("q")
        for node_id in self._ids:
            indices.extend(index_of[neighbor] for neighbor in adjacency[node_id])
            indptr.append(len(indices))
        self._indptr = indptr
        self._indices = indices
        # Checksum of the CSR arrays as built; together with the live graph
        # counts this forms the topology fingerprint (csr_fingerprint) that
        # caches and execution sessions key on.
        self._csr_crc = zlib.crc32(
            indices.tobytes(), zlib.crc32(indptr.tobytes())
        )

    # ------------------------------------------------------------------
    # topology accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> nx.Graph:
        """The relabelled underlying graph (integer node ids)."""
        return self._graph

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._graph.number_of_nodes()

    @property
    def node_ids(self) -> List[int]:
        """Sorted list of node identifiers."""
        return list(self._ids)

    @property
    def node_index_of(self) -> Dict[int, int]:
        """Mapping from node id to its dense ``0..n-1`` CSR index."""
        return self._index_of

    def csr(self) -> Tuple[Tuple[int, ...], array, array]:
        """The flat-array adjacency: ``(ids, indptr, indices)``.

        ``ids[i]`` is the node id at dense index ``i`` (ascending id order);
        the neighbours of dense index ``i`` are the dense indices
        ``indices[indptr[i]:indptr[i + 1]]``, also ascending.  The arrays are
        built once per network and shared — callers must not mutate them.
        """
        return self._ids, self._indptr, self._indices

    def csr_fingerprint(self) -> Tuple[int, int, int, int]:
        """Fingerprint of the topology the CSR arrays were built from.

        ``(nodes, edges, CSR checksum, degree digest)``: counts and the
        degree digest are read from the live underlying graph while the
        checksum was taken when the CSR was built, so the fingerprint
        changes as soon as the visible topology diverges from the frozen
        adjacency — the staleness signal
        :func:`repro.congest.sharding.partition.cached_partition` keys its
        memo on and execution sessions use to detect a network mutated
        between phases.  The degree digest (an O(n) pass over the live
        graph) catches count-preserving mutations too — an edge swapped
        for another, a node replaced — as long as the rewire moves some
        degree; a mutation that preserves the whole degree sequence is the
        one residual blind spot (an exact edge hash would cost O(m log m)
        per ``execute``, which per-phase callers cannot afford).
        """
        graph = self._graph
        degrees = dict(graph.degree())
        digest = zlib.crc32(
            array(
                "q", [degrees.get(node_id, -1) for node_id in self._ids]
            ).tobytes()
        )
        return (
            len(degrees),
            graph.number_of_edges(),
            self._csr_crc,
            digest,
        )

    @property
    def context_epoch(self) -> int:
        """Counter bumped by every :meth:`build_contexts` call.

        Persistent execution sessions record the epoch after synchronising
        worker-held context state; a different value at the next ``execute``
        means the contexts were rebuilt or mutated outside the session
        (e.g. a direct ``build_contexts`` call between phases), so the
        session must re-ship state instead of re-arming in place.
        """
        return self._ctx_epoch

    def neighbors(self, node_id: int) -> Tuple[int, ...]:
        """Adjacent node identifiers of *node_id* (sorted)."""
        return self._adjacency[node_id]

    def degree(self, node_id: int) -> int:
        return len(self._adjacency[node_id])

    def has_edge(self, u: int, v: int) -> bool:
        return self._graph.has_edge(u, v)

    def number_of_edges(self) -> int:
        return self._graph.number_of_edges()

    # ------------------------------------------------------------------
    # batched topology updates (the service layer's delta API)
    # ------------------------------------------------------------------
    @property
    def delta_epoch(self) -> int:
        """Counter bumped by every effective :meth:`apply_delta` call.

        Execution sessions keep a watermark of this counter: a changed CSR
        fingerprint whose divergence is fully explained by ledger entries
        above the watermark is a *repairable* delta; a changed fingerprint
        with no such entries is an external mutation and stays fatal.
        """
        return self._delta_epoch

    def deltas_since(self, epoch: int) -> Tuple[AppliedDelta, ...]:
        """The applied-delta records with :attr:`AppliedDelta.epoch` > *epoch*."""
        return tuple(
            record for record in self._delta_log if record.epoch > epoch
        )

    def _normalize_delta_edges(
        self, edges: Iterable[Tuple[int, int]], kind: str
    ) -> List[Tuple[int, int]]:
        """Canonical ``(u, v)`` with ``u < v``; validates before any mutation."""
        normalized: List[Tuple[int, int]] = []
        seen = set()
        for edge in edges:
            try:
                u, v = edge
            except (TypeError, ValueError):
                raise DeltaError(
                    "delta %s entry %r is not an edge pair" % (kind, edge)
                )
            if u == v:
                raise DeltaError(
                    "delta %s entry (%r, %r) is a self-loop; processors have "
                    "no link to themselves" % (kind, u, v)
                )
            for endpoint in (u, v):
                if endpoint not in self._index_of:
                    raise DeltaError(
                        "delta %s entry (%r, %r) names unknown node %r; the "
                        "delta API changes edges over the fixed node set "
                        "(include future nodes as isolated nodes up front)"
                        % (kind, u, v, endpoint)
                    )
            pair = (u, v) if u < v else (v, u)
            if pair in seen:
                continue
            seen.add(pair)
            normalized.append(pair)
        return sorted(normalized)

    def apply_delta(
        self,
        additions: Iterable[Tuple[int, int]] = (),
        removals: Iterable[Tuple[int, int]] = (),
    ) -> AppliedDelta:
        """Apply a batch of edge insertions/deletions and return the record.

        Validation happens entirely before mutation — a raised
        :class:`repro.congest.errors.DeltaError` leaves the network
        untouched.  No-op entries (adding a present edge, removing an
        absent one) are dropped; an edge named in both lists is rejected
        as ambiguous.  On an effective change the CSR arrays are rebuilt
        in one amortised O(n + m) pass, live contexts of touched nodes
        have their ``neighbors`` view refreshed *in place* (state, output
        and RNG streams are preserved — an evolving-graph service keeps
        its nodes), the delta epoch advances and the application is
        recorded on the ledger for sessions to reconcile against.

        ``context_epoch`` is deliberately *not* bumped: contexts were
        patched, not rebuilt, and persistent sessions detect the topology
        change through the CSR fingerprint + delta ledger instead.
        """
        added = self._normalize_delta_edges(additions, "addition")
        removed = self._normalize_delta_edges(removals, "removal")
        overlap = set(added) & set(removed)
        if overlap:
            raise DeltaError(
                "edges %s appear as both addition and removal in one delta"
                % sorted(overlap)
            )
        graph = self._graph
        added = [edge for edge in added if not graph.has_edge(*edge)]
        removed = [edge for edge in removed if graph.has_edge(*edge)]
        if not added and not removed:
            return AppliedDelta(
                epoch=self._delta_epoch,
                added=(),
                removed=(),
                touched=frozenset(),
                fingerprint_after=self.csr_fingerprint(),
            )
        for u, v in added:
            graph.add_edge(u, v)
        for u, v in removed:
            graph.remove_edge(u, v)
        touched = frozenset(v for edge in added + removed for v in edge)
        self._rebuild_csr(touched)
        for node_id in touched:
            ctx = self._contexts.get(node_id)
            if ctx is not None:
                ctx.neighbors = self._adjacency[node_id]
                # is_neighbor caches a frozenset in state; drop it so the
                # patched view is authoritative.
                ctx.state.pop("__neighbor_set", None)
        self._delta_epoch += 1
        record = AppliedDelta(
            epoch=self._delta_epoch,
            added=tuple(added),
            removed=tuple(removed),
            touched=touched,
            fingerprint_after=self.csr_fingerprint(),
        )
        self._delta_log.append(record)
        return record

    def reseed(self, seed: Optional[int]) -> None:
        """Reset the network-level RNG the per-node seeds are drawn from.

        A long-lived network serving many queries calls this before each
        fresh context build so that query *k* on topology *G* produces
        exactly the seeds — hence exactly the outputs — of
        ``Network(G, seed=seed)`` built from scratch.
        """
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    # contexts
    # ------------------------------------------------------------------
    def build_contexts(
        self,
        global_inputs: Optional[Dict[str, Any]] = None,
        per_node_inputs: Optional[Dict[int, Dict[str, Any]]] = None,
        fresh: bool = True,
    ) -> Dict[int, NodeContext]:
        """Create (or refresh) the per-node execution contexts.

        Parameters
        ----------
        global_inputs:
            Values known to every node before the protocol starts (the
            algorithm's parameters epsilon and p, for instance).
        per_node_inputs:
            Values placed in each node's ``state`` before the protocol starts
            (used by composite protocols to pass a previous stage's per-node
            output to the next stage).
        fresh:
            When True, brand-new contexts are built (erasing all state);
            when False, the existing contexts are reused and only the inputs
            are updated — this is how a composite protocol lets later stages
            read the state accumulated by earlier stages.
        """
        # Bumped before any mutation, not after the last one: a call that
        # raises mid-way (an unknown id in per_node_inputs) may already
        # have reset contexts or applied some updates, and a persistent
        # session must see that as "state possibly diverged" too.
        self._ctx_epoch += 1
        if fresh or not self._contexts:
            self._contexts = {}
            announced = self._announced_n if self._announced_n is not None else self.n
            node_seeds = self._node_seeds
            for node_id in self.node_ids:
                node_seed = node_seeds.get(node_id)
                if node_seed is None:
                    node_seed = self._rng.getrandbits(63)
                self._contexts[node_id] = NodeContext(
                    node_id=node_id,
                    neighbors=self._adjacency[node_id],
                    n=announced,
                    global_inputs=global_inputs,
                    rng=random.Random(node_seed),
                )
        else:
            for ctx in self._contexts.values():
                ctx._reset_for_new_protocol()
                if global_inputs:
                    ctx.globals.update(global_inputs)
        if per_node_inputs:
            for node_id, inputs in per_node_inputs.items():
                if node_id not in self._contexts:
                    raise ProtocolError("unknown node id %r in per-node inputs" % node_id)
                self._contexts[node_id].state.update(inputs)
        return self._contexts

    @property
    def contexts(self) -> Dict[int, NodeContext]:
        """The contexts of the most recent :meth:`build_contexts` call."""
        if not self._contexts:
            raise ProtocolError("contexts have not been built yet")
        return self._contexts

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int]],
        nodes: Optional[Iterable[int]] = None,
        seed: Optional[int] = None,
    ) -> "Network":
        """Build a network from an edge list (and optional isolated nodes)."""
        graph = nx.Graph()
        if nodes is not None:
            graph.add_nodes_from(nodes)
        graph.add_edges_from(edges)
        return cls(graph, seed=seed)

    def induced_subgraph(self, nodes: Iterable[int]) -> nx.Graph:
        """Return the subgraph induced by *nodes* (a copy)."""
        return self._graph.subgraph(list(nodes)).copy()
