"""The communication graph and per-node contexts.

A :class:`Network` is constructed from an undirected ``networkx`` graph.
Node labels must be hashable; they are mapped to integer identifiers
(preserving integer labels when possible) because the paper assumes each
node carries a unique O(log n)-bit identifier that supports comparisons
(smallest-ID root election, largest-root tie breaking).

Relabelling is deterministic for *any* mix of label types: labels are
ordered first by type name and then by ``repr``, so a graph mixing integer
and string labels (as real edge-list files sometimes do) always produces
the same ``0..n-1`` assignment regardless of insertion order, instead of
tripping over ``sorted`` refusing to compare heterogeneous keys.

Adjacency is stored in CSR form — two flat integer arrays (``indptr`` and
``indices``) over a dense ``0..n-1`` index — which is what the batched
execution engine (:mod:`repro.congest.engine`) consumes; the per-node
neighbour tuples handed to contexts are views derived from it.
"""

from __future__ import annotations

import random
import zlib
from array import array
from typing import Any, Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.congest.errors import ProtocolError
from repro.congest.node import NodeContext


def _relabel_sort_key(label: Any) -> Tuple[str, str]:
    """Total order over arbitrary hashable labels: (type name, repr).

    Plain ``sorted`` raises ``TypeError`` on heterogeneous labels (``3 < "a"``
    is undefined), which would make the relabelling of a mixed int/str graph
    depend on whether the comparison ever happens.  Grouping by type name
    first and ``repr`` second is deterministic for any label mix and for any
    insertion order (labels of types with value-stable reprs, which covers
    every wire-friendly label type).
    """
    return (type(label).__name__, repr(label))


class Network:
    """An undirected communication network with integer node identifiers.

    Parameters
    ----------
    graph:
        Undirected simple graph.  Self-loops are ignored (a processor does
        not have a link to itself); multi-edges are collapsed by networkx.
    relabel:
        When True (default) and the graph's labels are not all integers, the
        nodes are relabelled ``0..n-1`` in (type name, repr) order — a total
        order that is well-defined even when integer and string labels are
        mixed in one graph.  The mapping is available as :attr:`label_of` /
        :attr:`id_of` and depends only on the label set, never on insertion
        order.
    seed:
        Seed for the network-level random source from which per-node private
        random generators are derived.
    """

    def __init__(
        self,
        graph: nx.Graph,
        relabel: bool = True,
        seed: Optional[int] = None,
    ) -> None:
        if graph.is_directed():
            raise ValueError("the CONGEST simulator models undirected networks")
        working = nx.Graph()
        working.add_nodes_from(graph.nodes())
        working.add_edges_from((u, v) for u, v in graph.edges() if u != v)

        all_int = all(isinstance(node, int) for node in working.nodes())
        if all_int:
            self._graph = working
            self.id_of: Dict[Any, int] = {node: node for node in working.nodes()}
        elif relabel:
            ordered = sorted(working.nodes(), key=_relabel_sort_key)
            self.id_of = {label: index for index, label in enumerate(ordered)}
            self._graph = nx.relabel_nodes(working, self.id_of, copy=True)
        else:
            raise ValueError(
                "node labels must be integers when relabel=False; got %r"
                % (sorted(map(type, working.nodes()), key=repr)[:3],)
            )
        self.label_of: Dict[int, Any] = {v: k for k, v in self.id_of.items()}

        # Canonical flat-array (CSR) adjacency over a dense 0..n-1 index in
        # ascending node-id order; the per-node tuples below are views of it.
        ids: Tuple[int, ...] = tuple(sorted(self._graph.nodes()))
        self._ids = ids
        self._index_of: Dict[int, int] = {
            node_id: index for index, node_id in enumerate(ids)
        }
        index_of = self._index_of
        indptr = array("q", [0])
        indices = array("q")
        adjacency: Dict[int, Tuple[int, ...]] = {}
        for node_id in ids:
            neighbors = tuple(sorted(self._graph.neighbors(node_id)))
            adjacency[node_id] = neighbors
            indices.extend(index_of[neighbor] for neighbor in neighbors)
            indptr.append(len(indices))
        self._indptr = indptr
        self._indices = indices
        self._adjacency = adjacency
        # Checksum of the CSR arrays as built; together with the live graph
        # counts this forms the topology fingerprint (csr_fingerprint) that
        # caches and execution sessions key on.
        self._csr_crc = zlib.crc32(
            indices.tobytes(), zlib.crc32(indptr.tobytes())
        )
        self._rng = random.Random(seed)
        self._contexts: Dict[int, NodeContext] = {}
        self._ctx_epoch = 0

    # ------------------------------------------------------------------
    # topology accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> nx.Graph:
        """The relabelled underlying graph (integer node ids)."""
        return self._graph

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._graph.number_of_nodes()

    @property
    def node_ids(self) -> List[int]:
        """Sorted list of node identifiers."""
        return list(self._ids)

    @property
    def node_index_of(self) -> Dict[int, int]:
        """Mapping from node id to its dense ``0..n-1`` CSR index."""
        return self._index_of

    def csr(self) -> Tuple[Tuple[int, ...], array, array]:
        """The flat-array adjacency: ``(ids, indptr, indices)``.

        ``ids[i]`` is the node id at dense index ``i`` (ascending id order);
        the neighbours of dense index ``i`` are the dense indices
        ``indices[indptr[i]:indptr[i + 1]]``, also ascending.  The arrays are
        built once per network and shared — callers must not mutate them.
        """
        return self._ids, self._indptr, self._indices

    def csr_fingerprint(self) -> Tuple[int, int, int, int]:
        """Fingerprint of the topology the CSR arrays were built from.

        ``(nodes, edges, CSR checksum, degree digest)``: counts and the
        degree digest are read from the live underlying graph while the
        checksum was taken when the CSR was built, so the fingerprint
        changes as soon as the visible topology diverges from the frozen
        adjacency — the staleness signal
        :func:`repro.congest.sharding.partition.cached_partition` keys its
        memo on and execution sessions use to detect a network mutated
        between phases.  The degree digest (an O(n) pass over the live
        graph) catches count-preserving mutations too — an edge swapped
        for another, a node replaced — as long as the rewire moves some
        degree; a mutation that preserves the whole degree sequence is the
        one residual blind spot (an exact edge hash would cost O(m log m)
        per ``execute``, which per-phase callers cannot afford).
        """
        graph = self._graph
        degrees = dict(graph.degree())
        digest = zlib.crc32(
            array(
                "q", [degrees.get(node_id, -1) for node_id in self._ids]
            ).tobytes()
        )
        return (
            len(degrees),
            graph.number_of_edges(),
            self._csr_crc,
            digest,
        )

    @property
    def context_epoch(self) -> int:
        """Counter bumped by every :meth:`build_contexts` call.

        Persistent execution sessions record the epoch after synchronising
        worker-held context state; a different value at the next ``execute``
        means the contexts were rebuilt or mutated outside the session
        (e.g. a direct ``build_contexts`` call between phases), so the
        session must re-ship state instead of re-arming in place.
        """
        return self._ctx_epoch

    def neighbors(self, node_id: int) -> Tuple[int, ...]:
        """Adjacent node identifiers of *node_id* (sorted)."""
        return self._adjacency[node_id]

    def degree(self, node_id: int) -> int:
        return len(self._adjacency[node_id])

    def has_edge(self, u: int, v: int) -> bool:
        return self._graph.has_edge(u, v)

    def number_of_edges(self) -> int:
        return self._graph.number_of_edges()

    # ------------------------------------------------------------------
    # contexts
    # ------------------------------------------------------------------
    def build_contexts(
        self,
        global_inputs: Optional[Dict[str, Any]] = None,
        per_node_inputs: Optional[Dict[int, Dict[str, Any]]] = None,
        fresh: bool = True,
    ) -> Dict[int, NodeContext]:
        """Create (or refresh) the per-node execution contexts.

        Parameters
        ----------
        global_inputs:
            Values known to every node before the protocol starts (the
            algorithm's parameters epsilon and p, for instance).
        per_node_inputs:
            Values placed in each node's ``state`` before the protocol starts
            (used by composite protocols to pass a previous stage's per-node
            output to the next stage).
        fresh:
            When True, brand-new contexts are built (erasing all state);
            when False, the existing contexts are reused and only the inputs
            are updated — this is how a composite protocol lets later stages
            read the state accumulated by earlier stages.
        """
        # Bumped before any mutation, not after the last one: a call that
        # raises mid-way (an unknown id in per_node_inputs) may already
        # have reset contexts or applied some updates, and a persistent
        # session must see that as "state possibly diverged" too.
        self._ctx_epoch += 1
        if fresh or not self._contexts:
            self._contexts = {}
            for node_id in self.node_ids:
                node_seed = self._rng.getrandbits(63)
                self._contexts[node_id] = NodeContext(
                    node_id=node_id,
                    neighbors=self._adjacency[node_id],
                    n=self.n,
                    global_inputs=global_inputs,
                    rng=random.Random(node_seed),
                )
        else:
            for ctx in self._contexts.values():
                ctx._reset_for_new_protocol()
                if global_inputs:
                    ctx.globals.update(global_inputs)
        if per_node_inputs:
            for node_id, inputs in per_node_inputs.items():
                if node_id not in self._contexts:
                    raise ProtocolError("unknown node id %r in per-node inputs" % node_id)
                self._contexts[node_id].state.update(inputs)
        return self._contexts

    @property
    def contexts(self) -> Dict[int, NodeContext]:
        """The contexts of the most recent :meth:`build_contexts` call."""
        if not self._contexts:
            raise ProtocolError("contexts have not been built yet")
        return self._contexts

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int]],
        nodes: Optional[Iterable[int]] = None,
        seed: Optional[int] = None,
    ) -> "Network":
        """Build a network from an edge list (and optional isolated nodes)."""
        graph = nx.Graph()
        if nodes is not None:
            graph.add_nodes_from(nodes)
        graph.add_edges_from(edges)
        return cls(graph, seed=seed)

    def induced_subgraph(self, nodes: Iterable[int]) -> nx.Graph:
        """Return the subgraph induced by *nodes* (a copy)."""
        return self._graph.subgraph(list(nodes)).copy()
