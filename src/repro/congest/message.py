"""Messages and bit-size accounting.

The CONGEST model's defining constraint is that every message carries
O(log n) bits — enough to describe "a constant number of nodes, edges, and
polynomially-bounded numbers" (Section 2 of the paper).  The simulator makes
that constraint *measurable*: every :class:`Message` records how many bits it
occupies on the wire, and the scheduler compares that figure against the
configured budget.

Payloads are restricted to a small vocabulary of wire-friendly values —
``None``, ``bool``, ``int``, ``float``, ``str`` and (possibly nested) tuples
of those — so that the bit estimate is well-defined and so that protocols
cannot smuggle arbitrarily large Python objects through a single message.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

#: Number of bits charged for the message-kind tag.  Protocols use a small,
#: fixed vocabulary of kinds, so a constant tag cost mirrors the usual
#: convention that the message "type" is part of the O(1) header.
KIND_TAG_BITS = 8

#: Bits charged per boolean payload element.
BOOL_BITS = 1

#: Bits charged per float payload element (an IEEE double).
FLOAT_BITS = 64


def id_bits_for(n: int) -> int:
    """Return the number of bits of a node identifier in an *n*-node system.

    Identifiers are assumed to be drawn from a polynomial-size namespace, so
    an identifier costs Theta(log n) bits.  We charge ``ceil(log2 n)`` with a
    floor of one bit so degenerate single-node systems remain well-defined.
    """
    if n <= 0:
        raise ValueError("n must be positive, got %r" % (n,))
    return max(1, math.ceil(math.log2(max(2, n))))


def _int_bits(value: int) -> int:
    """Bits needed for a (signed) integer: magnitude bits plus a sign bit."""
    return max(1, abs(int(value)).bit_length()) + 1


def estimate_payload_bits(payload: Any) -> int:
    """Estimate the number of bits needed to encode *payload* on the wire.

    The estimate is intentionally simple and conservative; it exists so that
    experiments can check the *scaling* of message sizes with n (experiment
    E6), not to model a particular encoder.

    Parameters
    ----------
    payload:
        ``None``, ``bool``, ``int``, ``float``, ``str``, or a (nested) tuple
        of such values.

    Raises
    ------
    TypeError
        If the payload contains a value outside the allowed vocabulary
        (lists, dicts, sets and arbitrary objects are rejected — protocols
        must serialise structured data into tuples explicitly).
    """
    if payload is None:
        return 1
    if isinstance(payload, bool):
        return BOOL_BITS
    if isinstance(payload, int):
        return _int_bits(payload)
    if isinstance(payload, float):
        return FLOAT_BITS
    if isinstance(payload, str):
        return 8 * max(1, len(payload))
    if isinstance(payload, tuple):
        return sum(estimate_payload_bits(item) for item in payload) + 2
    raise TypeError(
        "unsupported payload type %r; CONGEST messages may only carry None, "
        "bool, int, float, str or tuples thereof" % type(payload).__name__
    )


@dataclass(frozen=True)
class Message:
    """A single CONGEST message.

    Parameters
    ----------
    kind:
        A short protocol-defined tag identifying how the payload should be
        interpreted (for example ``"bfs.explore"`` or ``"nc.kcount"``).
    payload:
        The wire content; see :func:`estimate_payload_bits` for the allowed
        vocabulary.
    bits:
        The number of bits the message occupies.  When omitted it is derived
        from the payload plus the constant kind-tag overhead.
    """

    kind: str
    payload: Any = None
    bits: int = field(default=-1)

    def __post_init__(self) -> None:
        if not self.kind:
            raise ValueError("message kind must be a non-empty string")
        if self.bits < 0:
            computed = KIND_TAG_BITS + estimate_payload_bits(self.payload)
            object.__setattr__(self, "bits", computed)
        elif self.bits == 0:
            raise ValueError("a message always carries at least one bit")

    def with_bits(self, bits: int) -> "Message":
        """Return a copy of this message charged at an explicit bit count."""
        return Message(kind=self.kind, payload=self.payload, bits=bits)


@dataclass(frozen=True)
class Inbound:
    """A message together with the identity of the neighbour that sent it."""

    sender: Any
    message: Message

    @property
    def kind(self) -> str:
        return self.message.kind

    @property
    def payload(self) -> Any:
        return self.message.payload


def make_id_message(kind: str, node_id: int, n: int, extra: Optional[Tuple] = None) -> Message:
    """Build a message carrying one node identifier (plus small extras).

    This is the most common message shape in the protocols of this package:
    a single identifier costs ``id_bits_for(n)`` bits regardless of the
    Python integer used to represent it, which keeps the accounting faithful
    to the model (an identifier is charged Theta(log n) bits even if the
    concrete label happens to be a small integer).
    """
    extra_bits = estimate_payload_bits(extra) if extra is not None else 0
    payload: Any = (node_id,) if extra is None else (node_id,) + tuple(extra)
    return Message(
        kind=kind,
        payload=payload,
        bits=KIND_TAG_BITS + id_bits_for(n) + extra_bits,
    )


def make_counter_message(kind: str, value: int, n: int, extra: Optional[Tuple] = None) -> Message:
    """Build a message carrying one polynomially-bounded counter.

    Counters such as ``|K_{2eps^2}(X)|`` are bounded by n, hence cost
    Theta(log n) bits.  Subset indices are bounded by ``2^{|S|}`` and are
    charged at their true bit length by the caller via *extra*.
    """
    extra_bits = estimate_payload_bits(extra) if extra is not None else 0
    payload: Any = (value,) if extra is None else (value,) + tuple(extra)
    return Message(
        kind=kind,
        payload=payload,
        bits=KIND_TAG_BITS + id_bits_for(max(n, value + 1)) + extra_bits,
    )
