"""Exception hierarchy for the CONGEST simulator.

Every error raised by the simulator derives from :class:`CongestError`, so
callers that want to treat any simulation failure uniformly (for example the
boosting wrapper, which treats an aborted repetition as a failed coin flip)
can catch a single type.
"""

from __future__ import annotations


class CongestError(Exception):
    """Base class for every error raised by the CONGEST simulator."""


class ProtocolError(CongestError):
    """A protocol implementation violated the simulator's programming model.

    Examples: sending to a non-neighbour, sending after halting, or writing a
    non-serialisable payload.
    """


class CongestionViolation(CongestError):
    """A node attempted to send more than one message on an edge in a round.

    The CONGEST model allows a single message per edge direction per round.
    Protocols that need to transmit more data must pipeline it across rounds
    (see :mod:`repro.primitives.pipelines`).
    """

    def __init__(self, sender, receiver, round_index):
        super().__init__(
            "node %r sent more than one message to %r in round %d"
            % (sender, receiver, round_index)
        )
        self.sender = sender
        self.receiver = receiver
        self.round_index = round_index

    def __reduce__(self):
        # The default exception reduction replays ``args`` (the formatted
        # message) into ``__init__``, which takes the structured fields —
        # rebuild from those instead so the error crosses the process
        # boundary of the sharded engine's worker pool intact.
        return (type(self), (self.sender, self.receiver, self.round_index))


class MessageSizeViolation(CongestError):
    """A message exceeded the configured O(log n)-bit budget."""

    def __init__(self, sender, receiver, bits, budget, round_index):
        super().__init__(
            "message from %r to %r carries %d bits, exceeding the budget of "
            "%d bits in round %d" % (sender, receiver, bits, budget, round_index)
        )
        self.sender = sender
        self.receiver = receiver
        self.bits = bits
        self.budget = budget
        self.round_index = round_index

    def __reduce__(self):
        return (
            type(self),
            (self.sender, self.receiver, self.bits, self.budget, self.round_index),
        )


class RoundLimitExceeded(CongestError):
    """The scheduler hit its deterministic round cap before quiescence.

    The paper's Section 4.1 "bounding the running time" wrapper aborts the
    algorithm when a specified time limit is exceeded; the scheduler raises
    this error so the wrapper can record the repetition as failed.
    """

    def __init__(self, max_rounds):
        super().__init__(
            "protocol did not terminate within %d rounds" % max_rounds
        )
        self.max_rounds = max_rounds

    def __reduce__(self):
        return (type(self), (self.max_rounds,))


class DeltaError(CongestError):
    """A batched topology update (:meth:`Network.apply_delta`) was rejected.

    Raised *before* any mutation is applied — a rejected delta leaves the
    network exactly as it was, so service loops can report the error to the
    client and keep serving on the unchanged topology.  Examples: an edge
    addition naming an unknown node (the delta API changes edges, never the
    node set), a self-loop, or a removal of an edge that does not exist.
    """


class ShardWorkerError(CongestError):
    """A sharded-engine worker process failed outside the model's rules.

    Raised by the process backend when a worker *dies* without reporting a
    protocol-level error (segfault, ``os._exit``, unpicklable exception) —
    death is detected as EOF on the worker's pipe, so the round barrier
    errors out instead of waiting on a corpse.  A worker that is alive but
    stuck in protocol code is indistinguishable from a slow round and is
    not timed out (an infinite ``on_round`` hangs every backend alike; use
    ``CongestConfig.max_rounds`` to bound runs).  Model-rule violations
    inside a worker are *not* wrapped: they cross the process boundary as
    their own types (:class:`CongestionViolation`,
    :class:`MessageSizeViolation`, :class:`ProtocolError`...), exactly as
    the in-process modes raise them.
    """

