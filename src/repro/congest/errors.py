"""Exception hierarchy for the CONGEST simulator.

Every error raised by the simulator derives from :class:`CongestError`, so
callers that want to treat any simulation failure uniformly (for example the
boosting wrapper, which treats an aborted repetition as a failed coin flip)
can catch a single type.
"""

from __future__ import annotations


class CongestError(Exception):
    """Base class for every error raised by the CONGEST simulator."""


class ProtocolError(CongestError):
    """A protocol implementation violated the simulator's programming model.

    Examples: sending to a non-neighbour, sending after halting, or writing a
    non-serialisable payload.
    """


class CongestionViolation(CongestError):
    """A node attempted to send more than one message on an edge in a round.

    The CONGEST model allows a single message per edge direction per round.
    Protocols that need to transmit more data must pipeline it across rounds
    (see :mod:`repro.primitives.pipelines`).
    """

    def __init__(self, sender, receiver, round_index):
        super().__init__(
            "node %r sent more than one message to %r in round %d"
            % (sender, receiver, round_index)
        )
        self.sender = sender
        self.receiver = receiver
        self.round_index = round_index

    def __reduce__(self):
        # The default exception reduction replays ``args`` (the formatted
        # message) into ``__init__``, which takes the structured fields —
        # rebuild from those instead so the error crosses the process
        # boundary of the sharded engine's worker pool intact.
        return (type(self), (self.sender, self.receiver, self.round_index))


class MessageSizeViolation(CongestError):
    """A message exceeded the configured O(log n)-bit budget."""

    def __init__(self, sender, receiver, bits, budget, round_index):
        super().__init__(
            "message from %r to %r carries %d bits, exceeding the budget of "
            "%d bits in round %d" % (sender, receiver, bits, budget, round_index)
        )
        self.sender = sender
        self.receiver = receiver
        self.bits = bits
        self.budget = budget
        self.round_index = round_index

    def __reduce__(self):
        return (
            type(self),
            (self.sender, self.receiver, self.bits, self.budget, self.round_index),
        )


class RoundLimitExceeded(CongestError):
    """The scheduler hit its deterministic round cap before quiescence.

    The paper's Section 4.1 "bounding the running time" wrapper aborts the
    algorithm when a specified time limit is exceeded; the scheduler raises
    this error so the wrapper can record the repetition as failed.
    """

    def __init__(self, max_rounds):
        super().__init__(
            "protocol did not terminate within %d rounds" % max_rounds
        )
        self.max_rounds = max_rounds

    def __reduce__(self):
        return (type(self), (self.max_rounds,))


class DeltaError(CongestError):
    """A batched topology update (:meth:`Network.apply_delta`) was rejected.

    Raised *before* any mutation is applied — a rejected delta leaves the
    network exactly as it was, so service loops can report the error to the
    client and keep serving on the unchanged topology.  Examples: an edge
    addition naming an unknown node (the delta API changes edges, never the
    node set), a self-loop, or a removal of an edge that does not exist.
    """


class ShardWorkerError(CongestError):
    """A sharded-engine worker process failed outside the model's rules.

    Raised by the process backend when a worker *dies* without reporting a
    protocol-level error (segfault, ``os._exit``, unpicklable exception) —
    death is detected as EOF on the worker's pipe, so the round barrier
    errors out instead of waiting on a corpse.  A worker that is alive but
    stuck in protocol code is indistinguishable from a legitimately slow
    round, so by default it is not timed out (an infinite ``on_round``
    hangs every backend alike; use ``CongestConfig.max_rounds`` to bound
    runs); opting into ``CongestConfig.round_timeout`` arms a barrier
    watchdog that turns a worker missing the per-round deadline into the
    :class:`ShardWorkerTimeout` subclass instead of an eternal hang.
    Model-rule violations inside a worker are *not* wrapped: they cross
    the process boundary as their own types
    (:class:`CongestionViolation`, :class:`MessageSizeViolation`,
    :class:`ProtocolError`...), exactly as the in-process modes raise
    them.  Every ``ShardWorkerError`` (subclasses included) marks an
    infrastructure failure, not a semantic one — the phase's inputs are
    intact, so a supervised retry
    (``CongestConfig.retry_policy``) may deterministically replay it.
    """


class ShardWorkerTimeout(ShardWorkerError):
    """A shard worker missed the coordinator's per-round barrier deadline.

    Raised only when ``CongestConfig.round_timeout`` is set: the barrier
    then waits with :func:`multiprocessing.connection.wait` instead of a
    blocking ``recv`` and, at the deadline, probes each missing worker's
    liveness — ``alive_shards`` names the shards whose process still runs
    (hung in protocol code), the rest died without even an EOF reaching
    the coordinator yet.  The error is an infrastructure failure like its
    base class, so retry policies treat the two uniformly; hung workers
    are force-terminated at teardown rather than waited on.
    """

    def __init__(self, shard_indices, timeout, alive_shards=()):
        shard_indices = tuple(shard_indices)
        alive_shards = tuple(alive_shards)
        dead = tuple(s for s in shard_indices if s not in set(alive_shards))
        detail = []
        if alive_shards:
            detail.append("stuck (alive): %s" % (list(alive_shards),))
        if dead:
            detail.append("dead: %s" % (list(dead),))
        super().__init__(
            "shard worker(s) %s missed the %.6gs round deadline (%s)"
            % (list(shard_indices), timeout, "; ".join(detail) or "no detail")
        )
        self.shard_indices = shard_indices
        self.timeout = timeout
        self.alive_shards = alive_shards

    def __reduce__(self):
        return (type(self), (self.shard_indices, self.timeout, self.alive_shards))


class WireCorruptionError(ShardWorkerError):
    """A packed :class:`~repro.congest.sharding.wire.WireBatch` failed to decode.

    Raised by :meth:`repro.congest.sharding.wire.WireDecoder.decode` when a
    batch's columns or payload blob are structurally invalid (unknown
    payload tag, truncated varint, out-of-range kind id...).  A corrupt
    batch means the transport delivered damaged bytes, not that the
    protocol misbehaved, so this is a :class:`ShardWorkerError` subclass:
    it crosses the worker pipe intact and a supervised retry may replay
    the phase on a fresh pool (whose wire codecs restart in sync).
    """

    def __init__(self, detail):
        super().__init__("corrupt wire batch: %s" % (detail,))
        self.detail = detail

    def __reduce__(self):
        return (type(self), (self.detail,))

