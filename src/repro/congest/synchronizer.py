"""Asynchronous execution engine built on an alpha synchronizer.

Section 2 of the paper notes that because no processor crashes are assumed,
"any synchronous algorithm can be executed in an asynchronous environment
using a synchronizer" (Awerbuch's synchronizers, reference [3]).  This module
implements the classic *alpha* synchronizer on top of an event-driven
asynchronous message simulation and exposes it as a first-class execution
engine, :class:`AsyncEngine`, registered as ``engine="async"`` alongside
``"reference"`` and ``"batched"`` (see :mod:`repro.congest.engine`):

* every message (protocol payload, acknowledgement, or safety notification)
  experiences an independent random link delay;
* after a node's pulse-*k* protocol messages have all been acknowledged the
  node is *safe* for pulse *k* and announces this to its neighbours;
* a node generates its pulse-*k+1* messages only when it is safe for pulse
  *k* and has heard that all its neighbours are safe for pulse *k*.

The guarantee of the alpha synchronizer is that when a node executes pulse
*k + 1*, every pulse-*k* message addressed to it has already been delivered;
consequently the asynchronous execution computes exactly the same thing as
the synchronous one, at the cost of the acknowledgement / safety overhead
reported in the run's control-message fields.

**The engine contract applies.**  ``AsyncEngine`` is held to the same
differential contract as ``BatchedEngine`` (``tests/test_engine_equivalence``):
per-node outputs, the pulse count (== the synchronous round count), and the
protocol message/bit metrics — including the per-round trace — are
bit-identical to :class:`repro.congest.engine.ReferenceEngine`.  To meet the
inbox-ordering clause of that contract, each pulse's inbox is delivered
grouped by sender in ascending node-id order with per-sender messages in
send order, regardless of the randomized arrival order.  The model rules are
enforced at dispatch time with the same exception types as the synchronous
engines: a second message on an edge in one pulse raises
:class:`repro.congest.errors.CongestionViolation` and an oversized message
raises :class:`repro.congest.errors.MessageSizeViolation`.

Synchronizer overhead (one ack per payload message, one safety notification
per edge direction per pulse) is engine-specific and therefore *excluded*
from the protocol metrics; it is reported separately in
:attr:`repro.congest.metrics.RunMetrics.ack_messages` /
:attr:`repro.congest.metrics.RunMetrics.safety_messages` and summarised by
:attr:`repro.congest.metrics.RunMetrics.control_messages`.  Control messages
carry O(1) bits each and do not contribute to the bit totals.

Because the protocols in this package detect termination by network
quiescence (see :mod:`repro.congest.scheduler`), the number of pulses to
execute is determined up front: either supplied by the caller, or derived by
first executing the protocol synchronously on the batched fast path against
a snapshot of the per-node state, so the asynchronous replay starts from
exactly the state — including every per-node random generator — that a
direct synchronous run would have seen.
"""

from __future__ import annotations

import copy
import heapq
import pickle
import random
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.congest.config import CongestConfig
from repro.congest.engine import (
    BatchedEngine,
    Engine,
    RunResult,
    get_engine,
    register_engine,
)
from repro.congest.errors import (
    CongestionViolation,
    MessageSizeViolation,
    ProtocolError,
)
from repro.congest.message import Inbound
from repro.congest.metrics import RoundMetrics, RunMetrics
from repro.congest.network import Network
from repro.congest.node import NodeContext, Protocol

_PROTO = "proto"
_ACK = "ack"
_SAFE = "safe"

#: Engine used for the synchronous pre-run that derives the pulse budget.
_PULSE_BUDGET_ENGINE = BatchedEngine.name


@dataclass
class AsyncRunResult(RunResult):
    """Outcome of an asynchronous (synchronized) execution.

    A :class:`repro.congest.engine.RunResult` whose ``metrics`` cover the
    *protocol* traffic only (bit-identical to the synchronous engines, with
    the synchronizer's ack/safety overhead in the metrics' control fields),
    extended with the quantities that only exist asynchronously.

    Attributes
    ----------
    pulses:
        Number of synchronizer pulses executed; equals the synchronous round
        count when the pulse budget was derived automatically.
    completion_time:
        The simulated wall-clock time at which the last event was processed;
        with unit-mean link delays this is Theta(pulses) in expectation.
    """

    pulses: int = 0
    completion_time: float = 0.0

    # Convenience views kept from the pre-engine AsyncRunResult API.
    @property
    def protocol_messages(self) -> int:
        """Payload messages sent (== ``metrics.total_messages``)."""
        return self.metrics.total_messages

    @property
    def protocol_bits(self) -> int:
        """Payload bits sent (== ``metrics.total_bits``)."""
        return self.metrics.total_bits

    @property
    def control_messages(self) -> int:
        """Synchronizer overhead (== ``metrics.control_messages``)."""
        return self.metrics.control_messages


class _NodeRuntime:
    """Synchronizer bookkeeping for one node."""

    __slots__ = (
        "node_id",
        "pulse",
        "pending_acks",
        "safe",
        "safe_neighbors",
        "inbox_by_pulse",
        "done_generating",
    )

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.pulse = 0
        self.pending_acks: Dict[int, int] = {}
        self.safe: Dict[int, bool] = {}
        self.safe_neighbors: Dict[int, set] = {}
        # pulse -> [(sender, send_seq, Inbound)] in arrival order; sorted by
        # (sender, send_seq) at delivery to honour the inbox-ordering clause
        # of the engine contract.
        self.inbox_by_pulse: Dict[int, List[Tuple[int, int, Inbound]]] = {}
        self.done_generating = False


class _SynchronizedRun:
    """One event-driven alpha-synchronizer execution (all mutable state)."""

    def __init__(
        self,
        network: Network,
        protocol: Protocol,
        config: CongestConfig,
        contexts: Dict[int, NodeContext],
        pulse_budget: int,
        delay_rng: random.Random,
        min_delay: float,
        max_delay: float,
    ) -> None:
        self.network = network
        self.protocol = protocol
        self.config = config
        self.contexts = contexts
        self.pulse_budget = pulse_budget
        self.delay_rng = delay_rng
        self.min_delay = min_delay
        self.max_delay = max_delay
        self.runtimes = {node_id: _NodeRuntime(node_id) for node_id in contexts}
        # One RoundMetrics per pulse; index 0 collects the on_start traffic,
        # which the engine contract folds into round 1.
        self.records = [
            RoundMetrics(round_index=k) for k in range(pulse_budget + 1)
        ]
        self.ack_messages = 0
        self.safety_messages = 0
        self._events: List[Tuple[float, int, Tuple]] = []
        self._event_seq = 0
        self._send_seq = 0
        self._now = 0.0

    # ------------------------------------------------------------------
    def run(self) -> AsyncRunResult:
        contexts = self.contexts
        protocol = self.protocol

        # Pulse 0: on_start plays the role of the first message generation.
        for ctx in contexts.values():
            ctx._advance_round(0)
            protocol.on_start(ctx)
        for node_id, ctx in contexts.items():
            self._dispatch_pulse_output(node_id, ctx, pulse=0)

        if self.pulse_budget > 0:
            # Nodes that are already safe with no unsafe neighbours (for
            # example isolated nodes, which never receive an event) advance
            # here; everyone else advances from the event handlers.
            for node_id in contexts:
                self._try_advance(node_id)
            while self._events:
                when, _, event = heapq.heappop(self._events)
                self._now = when
                self._handle_event(event)

        metrics = RunMetrics()
        if self.pulse_budget >= 1:
            first, startup = self.records[1], self.records[0]
            first.messages_sent += startup.messages_sent
            first.bits_sent += startup.bits_sent
            if startup.max_message_bits > first.max_message_bits:
                first.max_message_bits = startup.max_message_bits
            for round_metrics in self.records[1:]:
                metrics.absorb_round(round_metrics, self.config.record_round_metrics)
        metrics.ack_messages = self.ack_messages
        metrics.safety_messages = self.safety_messages

        outputs = {
            node_id: protocol.collect_output(ctx)
            for node_id, ctx in contexts.items()
        }
        return AsyncRunResult(
            outputs=outputs,
            metrics=metrics,
            contexts=contexts,
            pulses=self.pulse_budget,
            completion_time=self._now,
        )

    # ------------------------------------------------------------------
    # event machinery
    # ------------------------------------------------------------------
    def _schedule(self, event: Tuple) -> None:
        delay = self.delay_rng.uniform(self.min_delay, self.max_delay)
        self._event_seq += 1
        heapq.heappush(self._events, (self._now + delay, self._event_seq, event))

    def _dispatch_pulse_output(
        self, node_id: int, ctx: NodeContext, pulse: int
    ) -> None:
        """Ship the messages a node queued while executing *pulse*.

        This is the async counterpart of the synchronous engines' collect
        step, and it enforces the same model rules with the same exception
        types: one message per edge direction per pulse
        (:class:`CongestionViolation`) and the per-message bit budget
        (:class:`MessageSizeViolation`).
        """
        config = self.config
        budget = config.message_bit_budget
        round_metrics = self.records[pulse]
        outgoing = ctx._collect_outgoing()
        count = 0
        for receiver, messages in outgoing.items():
            if config.enforce_congestion and len(messages) > 1:
                raise CongestionViolation(node_id, receiver, pulse)
            if pulse >= 1:
                # Round 1's edges_used excludes the on_start traffic, per
                # the reference engine's accounting convention.
                round_metrics.edges_used += 1
            for message in messages:
                bits = message.bits
                if budget is not None and bits > budget:
                    raise MessageSizeViolation(
                        node_id, receiver, bits, budget, pulse
                    )
                count += 1
                round_metrics.observe_message(bits)
                self._send_seq += 1
                self._schedule((_PROTO, node_id, receiver, pulse, self._send_seq, message))
        self.runtimes[node_id].pending_acks[pulse] = count
        if count == 0:
            self._mark_safe(node_id, pulse)

    def _mark_safe(self, node_id: int, pulse: int) -> None:
        runtime = self.runtimes[node_id]
        if runtime.safe.get(pulse):
            return
        runtime.safe[pulse] = True
        for neighbor in self.network.neighbors(node_id):
            self.safety_messages += 1
            self._schedule((_SAFE, node_id, neighbor, pulse))

    def _handle_event(self, event: Tuple) -> None:
        kind = event[0]
        if kind == _PROTO:
            _, sender, receiver, pulse, send_seq, message = event
            self.runtimes[receiver].inbox_by_pulse.setdefault(pulse, []).append(
                (sender, send_seq, Inbound(sender=sender, message=message))
            )
            self.ack_messages += 1
            self._schedule((_ACK, receiver, sender, pulse))
            self._try_advance(receiver)
        elif kind == _ACK:
            _, sender, receiver, pulse = event
            runtime = self.runtimes[receiver]
            runtime.pending_acks[pulse] -= 1
            if runtime.pending_acks[pulse] == 0:
                self._mark_safe(receiver, pulse)
            self._try_advance(receiver)
        elif kind == _SAFE:
            _, sender, receiver, pulse = event
            self.runtimes[receiver].safe_neighbors.setdefault(pulse, set()).add(sender)
            self._try_advance(receiver)
        else:  # pragma: no cover - defensive
            raise ProtocolError("unknown event kind %r" % (kind,))

    def _try_advance(self, node_id: int) -> None:
        """Execute the node's next pulse(s) while the synchronizer permits."""
        runtime = self.runtimes[node_id]
        ctx = self.contexts[node_id]
        protocol = self.protocol
        while True:
            if runtime.done_generating:
                return
            current = runtime.pulse
            next_pulse = current + 1
            if next_pulse > self.pulse_budget:
                runtime.done_generating = True
                return
            if not runtime.safe.get(current, False):
                return
            neighbors = self.network.neighbors(node_id)
            safe_neighbors = runtime.safe_neighbors.get(current, ())
            if len(safe_neighbors) < len(neighbors):
                return
            entries = runtime.inbox_by_pulse.pop(current, [])
            ctx._advance_round(next_pulse)
            if not protocol.finished(ctx):
                self.records[next_pulse].active_nodes += 1
                # Deliver grouped by sender (ascending) with per-sender
                # messages in send order, exactly like the sync engines.
                entries.sort(key=lambda entry: (entry[0], entry[1]))
                protocol.on_round(ctx, [entry[2] for entry in entries])
            runtime.pulse = next_pulse
            self._dispatch_pulse_output(node_id, ctx, pulse=next_pulse)


class AsyncEngine(Engine):
    """Asynchronous execution of a synchronous protocol, as an engine.

    Selectable as ``engine="async"``.  The execution is semantically the
    alpha synchronizer: outputs, pulse count and protocol metrics are
    bit-identical to :class:`repro.congest.engine.ReferenceEngine`, with the
    acknowledgement / safety overhead reported separately (see the module
    docstring).

    Parameters
    ----------
    pulses:
        Number of synchronizer pulses to execute.  ``None`` (the default,
        and the registry instance's mode) derives the budget by first
        running the protocol synchronously on the batched fast path against
        a snapshot of the per-node state; the snapshot is restored before
        the asynchronous replay, so the replay consumes exactly the state
        and randomness a direct synchronous run would have.  An explicit
        budget skips the pre-run (messages generated in the final pulse are
        sent but never consumed, as with any truncated execution).
    delay_seed:
        Seed of the per-run link-delay generator.  Delays only affect event
        order and :attr:`AsyncRunResult.completion_time`, never the outputs
        or the protocol metrics — that independence is what the async arm of
        the property suite asserts.
    min_delay / max_delay:
        Link delays are uniform on ``[min_delay, max_delay]``.
    """

    name = "async"

    def __init__(
        self,
        pulses: Optional[int] = None,
        delay_seed: int = 0,
        min_delay: float = 0.05,
        max_delay: float = 1.0,
    ) -> None:
        if min_delay <= 0 or max_delay < min_delay:
            raise ValueError("delays must satisfy 0 < min_delay <= max_delay")
        if pulses is not None and pulses < 0:
            raise ValueError("pulses must be non-negative when given")
        self.pulses = pulses
        self.delay_seed = delay_seed
        self.min_delay = min_delay
        self.max_delay = max_delay

    # ------------------------------------------------------------------
    def execute(
        self,
        network: Network,
        protocol: Protocol,
        config: Optional[CongestConfig] = None,
        global_inputs: Optional[Dict[str, Any]] = None,
        per_node_inputs: Optional[Dict[int, Dict[str, Any]]] = None,
        reuse_contexts: bool = False,
    ) -> AsyncRunResult:
        return self._run(
            network,
            protocol,
            config=config,
            global_inputs=global_inputs,
            per_node_inputs=per_node_inputs,
            reuse_contexts=reuse_contexts,
            delay_rng=random.Random(self.delay_seed),
        )

    # ------------------------------------------------------------------
    def _run(
        self,
        network: Network,
        protocol: Protocol,
        config: Optional[CongestConfig],
        global_inputs: Optional[Dict[str, Any]],
        per_node_inputs: Optional[Dict[int, Dict[str, Any]]],
        reuse_contexts: bool,
        delay_rng: random.Random,
    ) -> AsyncRunResult:
        config = config or CongestConfig()
        pulse_budget = self.pulses
        if pulse_budget is None:
            pulse_budget = self._derive_pulse_budget(
                network,
                protocol,
                config,
                global_inputs,
                per_node_inputs,
                reuse_contexts,
            )
        contexts = network.build_contexts(
            global_inputs=global_inputs,
            per_node_inputs=per_node_inputs,
            fresh=not reuse_contexts,
        )
        run = _SynchronizedRun(
            network=network,
            protocol=protocol,
            config=config,
            contexts=contexts,
            pulse_budget=pulse_budget,
            delay_rng=delay_rng,
            min_delay=self.min_delay,
            max_delay=self.max_delay,
        )
        return run.run()

    @staticmethod
    def _derive_pulse_budget(
        network: Network,
        protocol: Protocol,
        config: CongestConfig,
        global_inputs: Optional[Dict[str, Any]],
        per_node_inputs: Optional[Dict[int, Dict[str, Any]]],
        reuse_contexts: bool,
    ) -> int:
        """Measure the synchronous round count without disturbing the run.

        The pre-run executes on the batched fast path (bit-identical to the
        reference by contract, so the measured round count is exact) against
        snapshots of the protocol and the network's contexts; the
        network-level RNG state and the contexts are then restored, so the
        asynchronous replay draws the same per-node seeds and sees the same
        composite-pipeline state as a direct synchronous run.  Model-rule
        violations and round-limit/stall errors therefore surface from the
        pre-run with exactly the synchronous exception types.

        The snapshot is one ``pickle`` round trip of ``(contexts,
        protocol)`` rather than two ``copy.deepcopy`` calls: pickling walks
        the object graph in C and — because both live in one dump — keeps
        any protocol↔context aliasing intact.  E13 reports the setup-cost
        drop.  A protocol that cannot be pickled (locally defined classes,
        ad-hoc instrumentation) silently falls back to the ``deepcopy``
        path; every protocol in this package takes the fast path, as the
        sharded engine's process backend requires of protocols anyway.
        """
        rng_state = network._rng.getstate()
        # A fresh run rebuilds the contexts anyway (only the RNG state must
        # be rewound); the snapshot is needed only to preserve the state a
        # reused composite pipeline has accumulated.
        try:
            contexts_backup, protocol_snapshot = pickle.loads(
                pickle.dumps(
                    (network._contexts if reuse_contexts else None, protocol),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            )
        except Exception:
            contexts_backup = (
                copy.deepcopy(network._contexts) if reuse_contexts else None
            )
            protocol_snapshot = copy.deepcopy(protocol)
        prerun_config = replace(
            config, engine=_PULSE_BUDGET_ENGINE, record_round_metrics=False
        )
        try:
            prerun = get_engine(_PULSE_BUDGET_ENGINE).execute(
                network,
                protocol_snapshot,
                config=prerun_config,
                global_inputs=global_inputs,
                per_node_inputs=per_node_inputs,
                reuse_contexts=reuse_contexts,
            )
        finally:
            network._rng.setstate(rng_state)
            if contexts_backup is not None:
                network._contexts = contexts_backup
        return prerun.metrics.rounds


class AlphaSynchronizer:
    """Pre-engine entry point for one asynchronous execution.

    Kept as a thin convenience wrapper around :class:`AsyncEngine` for
    callers that want to run one protocol asynchronously with explicit
    knobs (pulse budget, delay generator) without going through the engine
    registry.  New code should prefer ``run_protocol(..., engine="async")``.

    Parameters
    ----------
    network, protocol, config, global_inputs, per_node_inputs:
        As for :class:`repro.congest.scheduler.SynchronousScheduler`.
    pulses:
        Number of synchronizer pulses to execute.  ``None`` (default)
        derives the synchronous round count via the batched fast path, as
        :class:`AsyncEngine` does.
    delay_rng:
        Random source for link delays.  Delays are uniform on
        ``[min_delay, max_delay]``.
    """

    def __init__(
        self,
        network: Network,
        protocol: Protocol,
        config: Optional[CongestConfig] = None,
        global_inputs: Optional[Dict[str, Any]] = None,
        per_node_inputs: Optional[Dict[int, Dict[str, Any]]] = None,
        pulses: Optional[int] = None,
        delay_rng: Optional[random.Random] = None,
        min_delay: float = 0.05,
        max_delay: float = 1.0,
    ) -> None:
        # The engine constructor validates the delay window and pulses; it
        # is also the single owner of those knobs (see the properties).
        self._engine = AsyncEngine(
            pulses=pulses, min_delay=min_delay, max_delay=max_delay
        )
        self.network = network
        self.protocol = protocol
        self.config = config or CongestConfig()
        self.global_inputs = global_inputs
        self.per_node_inputs = per_node_inputs
        self.delay_rng = delay_rng or random.Random(0)

    @property
    def pulses(self) -> Optional[int]:
        return self._engine.pulses

    @property
    def min_delay(self) -> float:
        return self._engine.min_delay

    @property
    def max_delay(self) -> float:
        return self._engine.max_delay

    def run(self) -> AsyncRunResult:
        """Execute the protocol asynchronously and return the result."""
        return self._engine._run(
            self.network,
            self.protocol,
            config=self.config,
            global_inputs=self.global_inputs,
            per_node_inputs=self.per_node_inputs,
            reuse_contexts=False,
            delay_rng=self.delay_rng,
        )


register_engine(AsyncEngine())
