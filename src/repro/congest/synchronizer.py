"""Asynchronous execution via an alpha synchronizer.

Section 2 of the paper notes that because no processor crashes are assumed,
"any synchronous algorithm can be executed in an asynchronous environment
using a synchronizer" (Awerbuch's synchronizers, reference [3]).  This module
implements the classic *alpha* synchronizer on top of an event-driven
asynchronous message simulation:

* every message (protocol payload, acknowledgement, or safety notification)
  experiences an independent random link delay;
* after a node's pulse-*k* protocol messages have all been acknowledged the
  node is *safe* for pulse *k* and announces this to its neighbours;
* a node generates its pulse-*k+1* messages only when it is safe for pulse
  *k* and has heard that all its neighbours are safe for pulse *k*.

The guarantee of the alpha synchronizer is that when a node executes pulse
*k + 1*, every pulse-*k* message addressed to it has already been delivered;
consequently the asynchronous execution computes exactly the same outputs as
the synchronous one, at the cost of the acknowledgement / safety overhead
measured in :class:`AsyncRunResult`.

Because the protocols in this package detect termination by network
quiescence (see :mod:`repro.congest.scheduler`), the number of pulses to
execute is determined up front: either supplied by the caller, or measured by
first executing the protocol synchronously.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.congest.config import CongestConfig
from repro.congest.errors import ProtocolError
from repro.congest.message import Inbound, Message
from repro.congest.metrics import RunMetrics
from repro.congest.network import Network
from repro.congest.node import NodeContext, Protocol
from repro.congest.scheduler import run_protocol

_PROTO = "proto"
_ACK = "ack"
_SAFE = "safe"


@dataclass
class AsyncRunResult:
    """Outcome of an asynchronous (synchronized) execution.

    Attributes
    ----------
    outputs:
        Per-node outputs, identical to the synchronous outputs when the
        protocol is deterministic given the node-local randomness.
    pulses:
        Number of synchronizer pulses executed (equals the synchronous round
        count when the pulse budget was derived automatically).
    protocol_messages / control_messages:
        Counts of payload messages versus synchronizer overhead (acks and
        safety notifications).
    protocol_bits:
        Total payload bits (control messages are O(1) bits each and are not
        included).
    completion_time:
        The simulated wall-clock time at which the last event was processed;
        with unit-mean link delays this is Theta(pulses) in expectation.
    """

    outputs: Dict[int, Any]
    pulses: int
    protocol_messages: int
    control_messages: int
    protocol_bits: int
    completion_time: float
    contexts: Dict[int, NodeContext] = field(default_factory=dict)


class _NodeRuntime:
    """Synchronizer bookkeeping for one node."""

    __slots__ = (
        "node_id",
        "pulse",
        "pending_acks",
        "safe",
        "safe_neighbors",
        "inbox_by_pulse",
        "done_generating",
    )

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.pulse = 0
        self.pending_acks: Dict[int, int] = {}
        self.safe: Dict[int, bool] = {}
        self.safe_neighbors: Dict[int, set] = {}
        self.inbox_by_pulse: Dict[int, List[Inbound]] = {}
        self.done_generating = False


class AlphaSynchronizer:
    """Execute a synchronous protocol over asynchronous links.

    Parameters
    ----------
    network, protocol, config, global_inputs, per_node_inputs:
        As for :class:`repro.congest.scheduler.SynchronousScheduler`.  When
        the pulse budget is derived automatically, the preliminary
        synchronous execution honours ``config.engine``, so large networks
        can use the batched fast path for it.
    pulses:
        Number of synchronizer pulses to execute.  ``None`` (default) first
        runs the protocol synchronously on the same network to learn the
        required round count.
    delay_rng:
        Random source for link delays.  Delays are uniform on
        ``[min_delay, max_delay]``.
    """

    def __init__(
        self,
        network: Network,
        protocol: Protocol,
        config: Optional[CongestConfig] = None,
        global_inputs: Optional[Dict[str, Any]] = None,
        per_node_inputs: Optional[Dict[int, Dict[str, Any]]] = None,
        pulses: Optional[int] = None,
        delay_rng: Optional[random.Random] = None,
        min_delay: float = 0.05,
        max_delay: float = 1.0,
    ) -> None:
        if min_delay <= 0 or max_delay < min_delay:
            raise ValueError("delays must satisfy 0 < min_delay <= max_delay")
        self.network = network
        self.protocol = protocol
        self.config = config or CongestConfig()
        self.global_inputs = global_inputs
        self.per_node_inputs = per_node_inputs
        self.pulses = pulses
        self.delay_rng = delay_rng or random.Random(0)
        self.min_delay = min_delay
        self.max_delay = max_delay

    # ------------------------------------------------------------------
    def run(self) -> AsyncRunResult:
        """Execute the protocol asynchronously and return the result."""
        pulse_budget = self.pulses
        if pulse_budget is None:
            sync_result = run_protocol(
                self.network,
                self.protocol,
                config=self.config,
                global_inputs=self.global_inputs,
                per_node_inputs=self.per_node_inputs,
            )
            pulse_budget = max(1, sync_result.metrics.rounds)

        contexts = self.network.build_contexts(
            global_inputs=self.global_inputs,
            per_node_inputs=self.per_node_inputs,
            fresh=True,
        )
        runtimes = {node_id: _NodeRuntime(node_id) for node_id in contexts}

        self._events: List[Tuple[float, int, Tuple]] = []
        self._event_seq = 0
        self._now = 0.0
        self._protocol_messages = 0
        self._control_messages = 0
        self._protocol_bits = 0

        # Pulse 0: on_start plays the role of the first message generation.
        for node_id, ctx in contexts.items():
            ctx._advance_round(0)
            self.protocol.on_start(ctx)
        for node_id, ctx in contexts.items():
            self._dispatch_pulse_output(node_id, ctx, runtimes, pulse=0)

        while self._events:
            when, _, event = heapq.heappop(self._events)
            self._now = when
            self._handle_event(event, contexts, runtimes, pulse_budget)

        outputs = {
            node_id: self.protocol.collect_output(ctx)
            for node_id, ctx in contexts.items()
        }
        return AsyncRunResult(
            outputs=outputs,
            pulses=pulse_budget,
            protocol_messages=self._protocol_messages,
            control_messages=self._control_messages,
            protocol_bits=self._protocol_bits,
            completion_time=self._now,
            contexts=contexts,
        )

    # ------------------------------------------------------------------
    # event machinery
    # ------------------------------------------------------------------
    def _schedule(self, event: Tuple) -> None:
        delay = self.delay_rng.uniform(self.min_delay, self.max_delay)
        self._event_seq += 1
        heapq.heappush(self._events, (self._now + delay, self._event_seq, event))

    def _dispatch_pulse_output(
        self,
        node_id: int,
        ctx: NodeContext,
        runtimes: Dict[int, _NodeRuntime],
        pulse: int,
    ) -> None:
        """Ship the messages a node queued while executing *pulse*."""
        runtime = runtimes[node_id]
        outgoing = ctx._collect_outgoing()
        count = 0
        for receiver, messages in outgoing.items():
            if self.config.enforce_congestion and len(messages) > 1:
                raise ProtocolError(
                    "node %r queued %d messages for %r in a single pulse"
                    % (node_id, len(messages), receiver)
                )
            for message in messages:
                count += 1
                self._protocol_messages += 1
                self._protocol_bits += message.bits
                self._schedule((_PROTO, node_id, receiver, pulse, message))
        runtime.pending_acks[pulse] = count
        if count == 0:
            self._mark_safe(node_id, runtimes, pulse)

    def _mark_safe(
        self, node_id: int, runtimes: Dict[int, _NodeRuntime], pulse: int
    ) -> None:
        runtime = runtimes[node_id]
        if runtime.safe.get(pulse):
            return
        runtime.safe[pulse] = True
        for neighbor in self.network.neighbors(node_id):
            self._control_messages += 1
            self._schedule((_SAFE, node_id, neighbor, pulse))

    def _handle_event(
        self,
        event: Tuple,
        contexts: Dict[int, NodeContext],
        runtimes: Dict[int, _NodeRuntime],
        pulse_budget: int,
    ) -> None:
        kind = event[0]
        if kind == _PROTO:
            _, sender, receiver, pulse, message = event
            runtimes[receiver].inbox_by_pulse.setdefault(pulse, []).append(
                Inbound(sender=sender, message=message)
            )
            self._control_messages += 1
            self._schedule((_ACK, receiver, sender, pulse))
            self._try_advance(receiver, contexts, runtimes, pulse_budget)
        elif kind == _ACK:
            _, sender, receiver, pulse = event
            runtime = runtimes[receiver]
            runtime.pending_acks[pulse] -= 1
            if runtime.pending_acks[pulse] == 0:
                self._mark_safe(receiver, runtimes, pulse)
            self._try_advance(receiver, contexts, runtimes, pulse_budget)
        elif kind == _SAFE:
            _, sender, receiver, pulse = event
            runtimes[receiver].safe_neighbors.setdefault(pulse, set()).add(sender)
            self._try_advance(receiver, contexts, runtimes, pulse_budget)
        else:  # pragma: no cover - defensive
            raise ProtocolError("unknown event kind %r" % (kind,))

    def _try_advance(
        self,
        node_id: int,
        contexts: Dict[int, NodeContext],
        runtimes: Dict[int, _NodeRuntime],
        pulse_budget: int,
    ) -> None:
        """Execute the node's next pulse if the synchronizer permits it."""
        runtime = runtimes[node_id]
        ctx = contexts[node_id]
        while True:
            if runtime.done_generating:
                return
            current = runtime.pulse
            next_pulse = current + 1
            if next_pulse > pulse_budget:
                runtime.done_generating = True
                return
            if not runtime.safe.get(current, False):
                return
            neighbors = set(self.network.neighbors(node_id))
            if runtime.safe_neighbors.get(current, set()) < neighbors:
                return
            inbox = runtime.inbox_by_pulse.pop(current, [])
            ctx._advance_round(next_pulse)
            if not self.protocol.finished(ctx):
                self.protocol.on_round(ctx, inbox)
            runtime.pulse = next_pulse
            self._dispatch_pulse_output(node_id, ctx, runtimes, pulse=next_pulse)
