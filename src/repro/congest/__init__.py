"""Synchronous CONGEST model simulator.

The CONGEST model (Peleg, *Distributed Computing: A Locality-Sensitive
Approach*) is the execution model assumed by the paper (Section 2):

* the system is an undirected graph whose nodes are processors and whose
  edges are communication links;
* every node has a unique O(log n)-bit identifier;
* execution proceeds in synchronous rounds — in each round every node sends
  at most one message per incident edge, receives the messages sent to it in
  the previous round, and performs local computation;
* every message carries O(log n) bits.

This package simulates that model in-process.  The pieces are:

``Message`` / ``Inbound``
    The unit of communication, with explicit bit-size accounting.

``Protocol`` / ``NodeContext``
    The programming interface for distributed algorithms: a protocol is a
    per-node state machine driven by ``on_start`` and ``on_round`` callbacks;
    the context restricts a node to purely local information (its identifier,
    its incident edges, and received messages).

``Network``
    The communication graph plus per-node state containers.

``SynchronousScheduler`` / ``run_protocol``
    The round-driving entry points, including congestion enforcement (at
    most one message per edge direction per round) and message-size checks.

``Engine`` and its implementations
    Pluggable implementations of the round loop itself, selected with
    ``CongestConfig.engine`` or the ``engine=`` argument of
    ``run_protocol``.  All engines are bit-identical in outputs and
    protocol metrics; the differential suite
    (``tests/test_engine_equivalence.py``) enforces the contract.

    ==============  ===================  =====================================
    ``engine=``     class                execution
    ==============  ===================  =====================================
    ``batched``     ``BatchedEngine``    CSR flat-array fast path with an
                                         active frontier; ≥2× faster at
                                         n≈2000.  The default.
    ``reference``   ``ReferenceEngine``  per-object round loop; the
                                         semantics oracle of the
                                         differential harness
    ``async``       ``AsyncEngine``      event-driven asynchronous links
                                         under an alpha synchronizer;
                                         ack/safety overhead reported in the
                                         metrics' control fields
    ``sharded``     ``ShardedEngine``    partition-parallel execution:
                                         ``shards`` regions step their own
                                         frontier (serially, on a thread
                                         pool, or in worker processes —
                                         ``shard_backend``) and trade
                                         boundary messages at round barriers
                                         (packed wire format across the
                                         process boundary)
    ==============  ===================  =====================================

``CongestSession`` / ``Engine.open_session``
    Engine state shared across the ``execute`` calls of a composite
    pipeline.  The default session is a thin per-call wrapper; with
    ``CongestConfig.session_mode == "persistent"`` the sharded engine's
    process backend keeps its worker pool and shared-memory CSR mapping
    alive for the session, re-arming workers between phases.  Bit-identical
    either way (the differential suite has a session arm).

``metrics``
    Round, message, and bit accounting used by the complexity experiments
    (E2, E5, E6 in DESIGN.md), including the async engine's control-message
    overhead fields.

``AlphaSynchronizer``
    Pre-engine convenience wrapper around ``AsyncEngine`` showing that, as
    the paper notes, the synchronous algorithm can be executed in an
    asynchronous environment using a synchronizer; prefer
    ``run_protocol(..., engine="async")`` in new code.
"""

from repro.congest.config import SESSION_MODES, CongestConfig
from repro.congest.engine import (
    BatchedEngine,
    CongestSession,
    Engine,
    ReferenceEngine,
    available_engines,
    get_engine,
    register_engine,
)
from repro.congest.errors import (
    CongestError,
    CongestionViolation,
    MessageSizeViolation,
    ProtocolError,
    RoundLimitExceeded,
    ShardWorkerError,
)
from repro.congest.message import Inbound, Message, estimate_payload_bits, id_bits_for
from repro.congest.metrics import RoundMetrics, RunMetrics
from repro.congest.network import Network
from repro.congest.node import NodeContext, Protocol
from repro.congest.scheduler import RunResult, SynchronousScheduler, run_protocol
from repro.congest.sharding import (
    PARTITION_STRATEGIES,
    SHARD_BACKENDS,
    ShardPlan,
    ShardedEngine,
    ShardingStats,
    partition_network,
)
from repro.congest.synchronizer import AlphaSynchronizer, AsyncEngine, AsyncRunResult

__all__ = [
    "CongestConfig",
    "CongestSession",
    "SESSION_MODES",
    "CongestError",
    "CongestionViolation",
    "MessageSizeViolation",
    "ProtocolError",
    "RoundLimitExceeded",
    "Message",
    "Inbound",
    "estimate_payload_bits",
    "id_bits_for",
    "Network",
    "NodeContext",
    "Protocol",
    "SynchronousScheduler",
    "RunResult",
    "run_protocol",
    "Engine",
    "ReferenceEngine",
    "BatchedEngine",
    "AsyncEngine",
    "ShardedEngine",
    "ShardPlan",
    "ShardingStats",
    "ShardWorkerError",
    "PARTITION_STRATEGIES",
    "SHARD_BACKENDS",
    "partition_network",
    "available_engines",
    "get_engine",
    "register_engine",
    "RoundMetrics",
    "RunMetrics",
    "AlphaSynchronizer",
    "AsyncRunResult",
]
