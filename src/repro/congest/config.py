"""Simulator configuration.

The configuration object collects every knob the scheduler honours, so that
experiments can state their execution assumptions explicitly (and tests can
exercise both the strict and the permissive behaviours).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Optional, Tuple

#: Session lifetimes accepted by ``CongestConfig.session_mode``.
#:
#: ``"per-call"`` (the default)
#:     ``Engine.open_session`` returns a thin wrapper that delegates every
#:     ``execute`` to the engine unchanged — exactly the per-``execute``
#:     behaviour every engine has always had.
#: ``"persistent"``
#:     Engines with per-``execute`` setup worth amortising keep it alive for
#:     the session's lifetime.  Today that is the sharded engine's
#:     ``"process"`` backend: one worker pool plus one shared-memory CSR
#:     mapping serve every ``execute`` of a composite pipeline, re-armed
#:     between phases instead of respawned (see
#:     :mod:`repro.congest.sharding.workers`).  Engines without such setup
#:     treat ``"persistent"`` as ``"per-call"``.  Outputs and protocol
#:     metrics are bit-identical in either mode, by the engine contract.
SESSION_MODES: Tuple[str, ...] = ("per-call", "persistent")

#: Pipeline planning modes accepted by ``CongestConfig.pipeline_mode``.
#:
#: ``"off"`` (the default)
#:     Composite runners execute their phase sequence strictly one phase per
#:     session ``execute``, exactly as before.
#: ``"fuse"``
#:     Composite runners compile the sequence with
#:     :func:`repro.congest.pipeline.compile_pipeline` and execute fused
#:     groups of adjacent effect-declared phases through
#:     ``CongestSession.execute_fused`` — one arm, one context fold-back and
#:     one barrier stream per group on backends that support it (the
#:     persistent process session; every other session runs the group as a
#:     sequential loop).  Outputs, round counts and per-phase-labeled
#:     metrics are bit-identical in either mode, by the engine contract.
PIPELINE_MODES: Tuple[str, ...] = ("off", "fuse")


@dataclass(frozen=True)
class RetryPolicy:
    """Supervised-retry policy for persistent process sessions.

    When an ``execute`` of a :class:`~repro.congest.sharding.workers.ProcessSession`
    dies with a :class:`~repro.congest.errors.ShardWorkerError` (a crashed,
    hung or corrupt-wire worker — infrastructure failures, never model-rule
    violations), the session respawns the pool and **replays the phase from
    its pre-phase context snapshot**.  Replay is provably safe: the parent's
    contexts are only folded after *every* worker reported, so a failed
    phase left them bit-identical to its start, and the engine contract
    makes the replay deterministic.  Defined here (not in the sharding
    package) so :class:`CongestConfig` can carry a policy without an import
    cycle.

    Parameters
    ----------
    max_attempts:
        Total attempts per phase, the first one included (``2`` = one
        retry).  Must be at least 1.
    backoff_seconds / backoff_multiplier:
        Deterministic delay before retry *k* (1-based):
        ``backoff_seconds * backoff_multiplier ** (k - 1)``.  The default
        0.0 retries immediately — respawning a pool is already a pause.
    degrade:
        After exhausting the attempts, complete the phase (and every later
        one of the session) on the serial in-process sharded backend
        instead of raising — slower, but bit-identical by the engine
        contract, and immune to worker-process failures.  ``False`` lets
        the final error escape.
    """

    max_attempts: int = 2
    backoff_seconds: float = 0.0
    backoff_multiplier: float = 2.0
    degrade: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                "max_attempts must be >= 1 (got %d); 1 means no retry, "
                "only the optional degradation" % self.max_attempts
            )
        if self.backoff_seconds < 0:
            raise ValueError(
                "backoff_seconds must be >= 0, got %r" % (self.backoff_seconds,)
            )
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                "backoff_multiplier must be >= 1, got %r"
                % (self.backoff_multiplier,)
            )

    def delay_before(self, attempt: int) -> float:
        """Deterministic backoff before retry *attempt* (1-based)."""
        if attempt <= 0 or self.backoff_seconds <= 0:
            return 0.0
        return self.backoff_seconds * self.backoff_multiplier ** (attempt - 1)


@dataclass
class CongestConfig:
    """Configuration for a :class:`repro.congest.scheduler.SynchronousScheduler`.

    Parameters
    ----------
    max_rounds:
        Deterministic cap on the number of rounds.  ``None`` means no cap.
        The paper's Section 4.1 wrapper corresponds to setting a finite cap
        and treating :class:`repro.congest.errors.RoundLimitExceeded` as a
        failed repetition.
    enforce_congestion:
        When True (the default) a node may send at most one message per
        neighbour per round, as the CONGEST model requires; a second send on
        the same edge raises
        :class:`repro.congest.errors.CongestionViolation`.
    message_bit_budget:
        Hard per-message bit limit.  ``None`` disables the check (used by the
        LOCAL-model neighbours'-neighbours baseline, whose whole point is
        that its messages are *not* O(log n) bits).  Use
        :meth:`CongestConfig.with_log_budget` to derive a budget of
        ``budget_multiplier * ceil(log2 n)`` bits.
    budget_multiplier:
        The constant in front of log n used by :meth:`with_log_budget`.
        The protocols in this package fit comfortably within 12·log2(n) bits
        per message (a constant number of identifiers and counters plus a
        constant header).
    record_round_metrics:
        When True the scheduler keeps a per-round metrics trace; disable for
        very long runs to save memory.
    engine:
        Name of the execution engine driving the round loop —
        ``"batched"`` (the CSR-backed fast path, the default), ``"reference"``
        (the per-object semantics oracle kept for the differential harness),
        ``"async"`` (the event-driven alpha-synchronizer backend) or
        ``"sharded"`` (partition-parallel execution over ``shards`` shards);
        see :mod:`repro.congest.engine`.  All engines are guaranteed to
        produce bit-identical outputs and protocol metrics, so the choice is
        an execution-model / throughput knob: ``"async"`` additionally
        reports the synchronizer's control-message overhead in the metrics'
        ``ack_messages`` / ``safety_messages`` fields.  The default flipped
        from ``"reference"`` to ``"batched"`` once the fast path had
        survived several releases of differential CI.
    shards:
        Shard count for ``engine="sharded"`` (ignored by the other
        engines).  May exceed the node count; surplus shards are empty.
    shard_workers:
        Pool width for the sharded engine's ``"thread"`` backend.  ``0`` or
        ``1`` selects the serial deterministic mode (the default, and what
        the differential harness runs); ``>= 2`` steps shards on a thread
        pool.  The ``"process"`` backend ignores this knob — it always runs
        one worker process per non-empty shard.  Outputs and metrics are
        bit-identical for every setting.
    shard_strategy:
        Partitioner strategy for the sharded engine — one of
        :data:`repro.congest.sharding.PARTITION_STRATEGIES`
        (``"contiguous"``, ``"bfs"``, ``"bfs+refine"``).
    shard_backend:
        Execution backend of the sharded engine:

        ``"thread"`` (the default)
            Shards step in-process — serially when ``shard_workers <= 1``
            (fully deterministic), on a thread pool otherwise.  Thread mode
            is GIL-bound: its winnings are cache locality, not parallelism.
        ``"serial"``
            Force the serial deterministic mode regardless of
            ``shard_workers``.
        ``"process"``
            One long-lived worker process per non-empty shard, each owning
            its shard's contexts and inbox buffers for the whole run;
            boundary traffic crosses the round barrier in the packed wire
            format of :mod:`repro.congest.sharding.wire`.  True multi-core
            parallelism; requires the protocol object and all per-node
            state to be picklable.  Outputs, round counts and protocol
            metrics remain bit-identical by the engine contract.
    session_mode:
        Lifetime of the execution session a composite runner opens over its
        phases — one of :data:`SESSION_MODES`.  ``"per-call"`` (the
        default) keeps every ``execute`` self-contained; ``"persistent"``
        lets the sharded engine's process backend keep its worker pool and
        shared-memory CSR mapping alive across the phases of one
        :class:`~repro.congest.engine.CongestSession`, re-arming workers
        between executes instead of respawning them.  Bit-identical either
        way; purely a setup-amortisation knob.
    pipeline_mode:
        Planning mode of the phase-graph pipeline compiler for composite
        runners — one of :data:`PIPELINE_MODES`.  ``"off"`` (the default)
        runs the composite phase sequence one phase per ``execute``;
        ``"fuse"`` compiles the sequence
        (:func:`repro.congest.pipeline.compile_pipeline`) and executes
        fused groups of adjacent effect-declared phases through one
        ``execute_fused`` each — eliding the per-phase re-arm and context
        fold-back on the persistent process backend.  Purely a
        coordination-cost knob: outputs, round counts and per-phase metrics
        traces are bit-identical in either mode.
    round_timeout:
        Per-round barrier deadline in seconds for the sharded engine's
        ``"process"`` backend.  ``None`` (the default) keeps the original
        blocking barrier: a worker that hangs in protocol code is
        indistinguishable from a slow round and is waited on forever.
        A positive value arms a coordinator-side watchdog
        (``multiprocessing.connection.wait`` instead of blocking ``recv``):
        a worker missing the deadline raises
        :class:`~repro.congest.errors.ShardWorkerTimeout` — with a
        liveness probe distinguishing hung from silently-dead workers —
        instead of blocking the barrier.  In-process backends have no
        cross-process barrier to time out; there the knob only bounds
        *simulated* hang faults (see ``fault_plan``).
    worker_join_timeout:
        Seconds a process-backend worker gets to exit after its pipe is
        closed before pool teardown escalates to ``terminate``.  A healthy
        worker exits on the EOF immediately; only one stuck in protocol
        code ever waits this long (and a teardown forced by a watchdog
        timeout terminates straight away, skipping the wait).  Must be
        positive.
    retry_policy:
        Optional :class:`RetryPolicy` enabling supervised retry (and, by
        default, graceful degradation to the serial sharded backend) for
        persistent process sessions.  ``None`` (the default) keeps the
        original fail-fast semantics: any worker failure aborts the
        ``execute``.
    fault_plan:
        Optional :class:`repro.congest.sharding.faults.FaultPlan` injecting
        deterministic failures into the sharded execution stack — worker
        crash/hang/pipe-EOF at named points, corrupted wire batches.
        Testing machinery: ``None`` (always the default outside tests)
        injects nothing and costs nothing.  Typed loosely to keep this
        module import-cycle-free; validated structurally at construction.
    """

    max_rounds: Optional[int] = None
    enforce_congestion: bool = True
    message_bit_budget: Optional[int] = None
    budget_multiplier: float = 12.0
    record_round_metrics: bool = True
    engine: str = "batched"
    shards: int = 4
    shard_workers: int = 0
    shard_strategy: str = "contiguous"
    shard_backend: str = "thread"
    session_mode: str = "per-call"
    pipeline_mode: str = "off"
    round_timeout: Optional[float] = None
    worker_join_timeout: float = 5.0
    retry_policy: Optional[RetryPolicy] = None
    fault_plan: Optional[Any] = None

    def __post_init__(self) -> None:
        # ``engine`` / ``shard_backend`` / ``shard_strategy`` are validated
        # with their allowed values listed when they are resolved (the
        # registry lookup, ``ShardedEngine.resolve_structure``); the session
        # mode used to be checked only when a session was opened, which let
        # a typo survive until deep inside a composite run.  Fail at
        # construction instead — ``dataclasses.replace`` re-runs this, so
        # every ``with_*`` derivation is covered too.
        if self.session_mode not in SESSION_MODES:
            raise ValueError(
                "unknown session mode %r; available modes: %s"
                % (self.session_mode, ", ".join(SESSION_MODES))
            )
        if self.pipeline_mode not in PIPELINE_MODES:
            raise ValueError(
                "unknown pipeline mode %r; available modes: %s"
                % (self.pipeline_mode, ", ".join(PIPELINE_MODES))
            )
        # The sharding knobs share that history: ``shards=0`` used to
        # produce an empty plan that only blew up once the partitioner ran.
        # Note ``shard_workers=0`` is *valid* — it selects the serial
        # deterministic mode (see the field docs) — so the floor is 0,
        # not 1; only genuinely meaningless negatives are rejected.
        if self.shards < 1:
            raise ValueError(
                "shards must be >= 1 (got %d); the sharded engine needs at "
                "least one shard, and surplus shards beyond the node count "
                "are simply left empty" % self.shards
            )
        if self.shard_workers < 0:
            raise ValueError(
                "shard_workers must be >= 0 (got %d); 0 or 1 selects the "
                "serial deterministic mode, >= 2 a thread pool"
                % self.shard_workers
            )
        # The fault-tolerance knobs fail at construction for the same
        # reason as the session mode above: all of them are consumed deep
        # inside a phase execute, where a bad value would otherwise
        # surface mid-pipeline (or worse, silently disable the watchdog).
        if self.round_timeout is not None and not self.round_timeout > 0:
            raise ValueError(
                "round_timeout must be positive or None (got %r); None "
                "disables the barrier watchdog" % (self.round_timeout,)
            )
        if not self.worker_join_timeout > 0:
            raise ValueError(
                "worker_join_timeout must be positive (got %r); a "
                "non-positive grace period would terminate healthy workers "
                "before their EOF exit" % (self.worker_join_timeout,)
            )
        if self.retry_policy is not None and not isinstance(
            self.retry_policy, RetryPolicy
        ):
            raise ValueError(
                "retry_policy must be a RetryPolicy or None, got %r"
                % (self.retry_policy,)
            )
        if self.fault_plan is not None and not (
            hasattr(self.fault_plan, "specs")
            and hasattr(self.fault_plan, "for_attempt")
        ):
            # Structural check instead of an isinstance: importing the
            # sharding package here would create a cycle (it imports this
            # module for the config type).
            raise ValueError(
                "fault_plan must be a repro.congest.sharding.faults."
                "FaultPlan or None, got %r" % (self.fault_plan,)
            )

    def with_log_budget(self, n: int) -> "CongestConfig":
        """Return a copy whose message budget is ``budget_multiplier * log2 n``.

        The budget never drops below 32 bits so that tiny test graphs (n of a
        few nodes) do not spuriously reject constant-size headers.
        """
        budget = max(32, int(math.ceil(self.budget_multiplier * math.log2(max(2, n)))))
        return replace(self, message_bit_budget=budget)

    def with_max_rounds(self, max_rounds: Optional[int]) -> "CongestConfig":
        """Return a copy with a different deterministic round cap."""
        return replace(self, max_rounds=max_rounds)

    def with_engine(self, engine: str) -> "CongestConfig":
        """Return a copy that selects a different execution engine."""
        return replace(self, engine=engine)

    def with_session_mode(self, session_mode: str) -> "CongestConfig":
        """Return a copy that selects a different session lifetime.

        ``session_mode`` must be one of :data:`SESSION_MODES`; anything else
        raises ``ValueError`` here (via dataclass construction), listing the
        allowed values, so typos fail fast instead of surfacing when a
        session is eventually opened.
        """
        return replace(self, session_mode=session_mode)

    def with_pipeline_mode(self, pipeline_mode: str) -> "CongestConfig":
        """Return a copy that selects a different pipeline planning mode.

        ``pipeline_mode`` must be one of :data:`PIPELINE_MODES`; anything
        else raises ``ValueError`` here (via dataclass construction),
        listing the allowed values.
        """
        return replace(self, pipeline_mode=pipeline_mode)

    def with_sharding(
        self,
        shards: Optional[int] = None,
        workers: Optional[int] = None,
        strategy: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> "CongestConfig":
        """Return a copy selecting the sharded engine with the given knobs.

        ``None`` keeps the current value of the corresponding field; the
        engine is always switched to ``"sharded"``.
        """
        return replace(
            self,
            engine="sharded",
            shards=self.shards if shards is None else shards,
            shard_workers=self.shard_workers if workers is None else workers,
            shard_strategy=self.shard_strategy if strategy is None else strategy,
            shard_backend=self.shard_backend if backend is None else backend,
        )

    @staticmethod
    def local_model(max_rounds: Optional[int] = None) -> "CongestConfig":
        """Configuration for LOCAL-model protocols (unbounded message size).

        Used by the neighbours'-neighbours baseline of Section 3, whose
        messages may contain all node identifiers.
        """
        return CongestConfig(
            max_rounds=max_rounds,
            enforce_congestion=True,
            message_bit_budget=None,
        )
