"""Simulator configuration.

The configuration object collects every knob the scheduler honours, so that
experiments can state their execution assumptions explicitly (and tests can
exercise both the strict and the permissive behaviours).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

#: Session lifetimes accepted by ``CongestConfig.session_mode``.
#:
#: ``"per-call"`` (the default)
#:     ``Engine.open_session`` returns a thin wrapper that delegates every
#:     ``execute`` to the engine unchanged — exactly the per-``execute``
#:     behaviour every engine has always had.
#: ``"persistent"``
#:     Engines with per-``execute`` setup worth amortising keep it alive for
#:     the session's lifetime.  Today that is the sharded engine's
#:     ``"process"`` backend: one worker pool plus one shared-memory CSR
#:     mapping serve every ``execute`` of a composite pipeline, re-armed
#:     between phases instead of respawned (see
#:     :mod:`repro.congest.sharding.workers`).  Engines without such setup
#:     treat ``"persistent"`` as ``"per-call"``.  Outputs and protocol
#:     metrics are bit-identical in either mode, by the engine contract.
SESSION_MODES: Tuple[str, ...] = ("per-call", "persistent")


@dataclass
class CongestConfig:
    """Configuration for a :class:`repro.congest.scheduler.SynchronousScheduler`.

    Parameters
    ----------
    max_rounds:
        Deterministic cap on the number of rounds.  ``None`` means no cap.
        The paper's Section 4.1 wrapper corresponds to setting a finite cap
        and treating :class:`repro.congest.errors.RoundLimitExceeded` as a
        failed repetition.
    enforce_congestion:
        When True (the default) a node may send at most one message per
        neighbour per round, as the CONGEST model requires; a second send on
        the same edge raises
        :class:`repro.congest.errors.CongestionViolation`.
    message_bit_budget:
        Hard per-message bit limit.  ``None`` disables the check (used by the
        LOCAL-model neighbours'-neighbours baseline, whose whole point is
        that its messages are *not* O(log n) bits).  Use
        :meth:`CongestConfig.with_log_budget` to derive a budget of
        ``budget_multiplier * ceil(log2 n)`` bits.
    budget_multiplier:
        The constant in front of log n used by :meth:`with_log_budget`.
        The protocols in this package fit comfortably within 12·log2(n) bits
        per message (a constant number of identifiers and counters plus a
        constant header).
    record_round_metrics:
        When True the scheduler keeps a per-round metrics trace; disable for
        very long runs to save memory.
    engine:
        Name of the execution engine driving the round loop —
        ``"batched"`` (the CSR-backed fast path, the default), ``"reference"``
        (the per-object semantics oracle kept for the differential harness),
        ``"async"`` (the event-driven alpha-synchronizer backend) or
        ``"sharded"`` (partition-parallel execution over ``shards`` shards);
        see :mod:`repro.congest.engine`.  All engines are guaranteed to
        produce bit-identical outputs and protocol metrics, so the choice is
        an execution-model / throughput knob: ``"async"`` additionally
        reports the synchronizer's control-message overhead in the metrics'
        ``ack_messages`` / ``safety_messages`` fields.  The default flipped
        from ``"reference"`` to ``"batched"`` once the fast path had
        survived several releases of differential CI.
    shards:
        Shard count for ``engine="sharded"`` (ignored by the other
        engines).  May exceed the node count; surplus shards are empty.
    shard_workers:
        Pool width for the sharded engine's ``"thread"`` backend.  ``0`` or
        ``1`` selects the serial deterministic mode (the default, and what
        the differential harness runs); ``>= 2`` steps shards on a thread
        pool.  The ``"process"`` backend ignores this knob — it always runs
        one worker process per non-empty shard.  Outputs and metrics are
        bit-identical for every setting.
    shard_strategy:
        Partitioner strategy for the sharded engine — one of
        :data:`repro.congest.sharding.PARTITION_STRATEGIES`
        (``"contiguous"``, ``"bfs"``, ``"bfs+refine"``).
    shard_backend:
        Execution backend of the sharded engine:

        ``"thread"`` (the default)
            Shards step in-process — serially when ``shard_workers <= 1``
            (fully deterministic), on a thread pool otherwise.  Thread mode
            is GIL-bound: its winnings are cache locality, not parallelism.
        ``"serial"``
            Force the serial deterministic mode regardless of
            ``shard_workers``.
        ``"process"``
            One long-lived worker process per non-empty shard, each owning
            its shard's contexts and inbox buffers for the whole run;
            boundary traffic crosses the round barrier in the packed wire
            format of :mod:`repro.congest.sharding.wire`.  True multi-core
            parallelism; requires the protocol object and all per-node
            state to be picklable.  Outputs, round counts and protocol
            metrics remain bit-identical by the engine contract.
    session_mode:
        Lifetime of the execution session a composite runner opens over its
        phases — one of :data:`SESSION_MODES`.  ``"per-call"`` (the
        default) keeps every ``execute`` self-contained; ``"persistent"``
        lets the sharded engine's process backend keep its worker pool and
        shared-memory CSR mapping alive across the phases of one
        :class:`~repro.congest.engine.CongestSession`, re-arming workers
        between executes instead of respawning them.  Bit-identical either
        way; purely a setup-amortisation knob.
    """

    max_rounds: Optional[int] = None
    enforce_congestion: bool = True
    message_bit_budget: Optional[int] = None
    budget_multiplier: float = 12.0
    record_round_metrics: bool = True
    engine: str = "batched"
    shards: int = 4
    shard_workers: int = 0
    shard_strategy: str = "contiguous"
    shard_backend: str = "thread"
    session_mode: str = "per-call"

    def __post_init__(self) -> None:
        # ``engine`` / ``shard_backend`` / ``shard_strategy`` are validated
        # with their allowed values listed when they are resolved (the
        # registry lookup, ``ShardedEngine.resolve_structure``); the session
        # mode used to be checked only when a session was opened, which let
        # a typo survive until deep inside a composite run.  Fail at
        # construction instead — ``dataclasses.replace`` re-runs this, so
        # every ``with_*`` derivation is covered too.
        if self.session_mode not in SESSION_MODES:
            raise ValueError(
                "unknown session mode %r; available modes: %s"
                % (self.session_mode, ", ".join(SESSION_MODES))
            )
        # The sharding knobs share that history: ``shards=0`` used to
        # produce an empty plan that only blew up once the partitioner ran.
        # Note ``shard_workers=0`` is *valid* — it selects the serial
        # deterministic mode (see the field docs) — so the floor is 0,
        # not 1; only genuinely meaningless negatives are rejected.
        if self.shards < 1:
            raise ValueError(
                "shards must be >= 1 (got %d); the sharded engine needs at "
                "least one shard, and surplus shards beyond the node count "
                "are simply left empty" % self.shards
            )
        if self.shard_workers < 0:
            raise ValueError(
                "shard_workers must be >= 0 (got %d); 0 or 1 selects the "
                "serial deterministic mode, >= 2 a thread pool"
                % self.shard_workers
            )

    def with_log_budget(self, n: int) -> "CongestConfig":
        """Return a copy whose message budget is ``budget_multiplier * log2 n``.

        The budget never drops below 32 bits so that tiny test graphs (n of a
        few nodes) do not spuriously reject constant-size headers.
        """
        budget = max(32, int(math.ceil(self.budget_multiplier * math.log2(max(2, n)))))
        return replace(self, message_bit_budget=budget)

    def with_max_rounds(self, max_rounds: Optional[int]) -> "CongestConfig":
        """Return a copy with a different deterministic round cap."""
        return replace(self, max_rounds=max_rounds)

    def with_engine(self, engine: str) -> "CongestConfig":
        """Return a copy that selects a different execution engine."""
        return replace(self, engine=engine)

    def with_session_mode(self, session_mode: str) -> "CongestConfig":
        """Return a copy that selects a different session lifetime.

        ``session_mode`` must be one of :data:`SESSION_MODES`; anything else
        raises ``ValueError`` here (via dataclass construction), listing the
        allowed values, so typos fail fast instead of surfacing when a
        session is eventually opened.
        """
        return replace(self, session_mode=session_mode)

    def with_sharding(
        self,
        shards: Optional[int] = None,
        workers: Optional[int] = None,
        strategy: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> "CongestConfig":
        """Return a copy selecting the sharded engine with the given knobs.

        ``None`` keeps the current value of the corresponding field; the
        engine is always switched to ``"sharded"``.
        """
        return replace(
            self,
            engine="sharded",
            shards=self.shards if shards is None else shards,
            shard_workers=self.shard_workers if workers is None else workers,
            shard_strategy=self.shard_strategy if strategy is None else strategy,
            shard_backend=self.shard_backend if backend is None else backend,
        )

    @staticmethod
    def local_model(max_rounds: Optional[int] = None) -> "CongestConfig":
        """Configuration for LOCAL-model protocols (unbounded message size).

        Used by the neighbours'-neighbours baseline of Section 3, whose
        messages may contain all node identifiers.
        """
        return CongestConfig(
            max_rounds=max_rounds,
            enforce_congestion=True,
            message_bit_budget=None,
        )
