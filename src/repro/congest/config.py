"""Simulator configuration.

The configuration object collects every knob the scheduler honours, so that
experiments can state their execution assumptions explicitly (and tests can
exercise both the strict and the permissive behaviours).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass
class CongestConfig:
    """Configuration for a :class:`repro.congest.scheduler.SynchronousScheduler`.

    Parameters
    ----------
    max_rounds:
        Deterministic cap on the number of rounds.  ``None`` means no cap.
        The paper's Section 4.1 wrapper corresponds to setting a finite cap
        and treating :class:`repro.congest.errors.RoundLimitExceeded` as a
        failed repetition.
    enforce_congestion:
        When True (the default) a node may send at most one message per
        neighbour per round, as the CONGEST model requires; a second send on
        the same edge raises
        :class:`repro.congest.errors.CongestionViolation`.
    message_bit_budget:
        Hard per-message bit limit.  ``None`` disables the check (used by the
        LOCAL-model neighbours'-neighbours baseline, whose whole point is
        that its messages are *not* O(log n) bits).  Use
        :meth:`CongestConfig.with_log_budget` to derive a budget of
        ``budget_multiplier * ceil(log2 n)`` bits.
    budget_multiplier:
        The constant in front of log n used by :meth:`with_log_budget`.
        The protocols in this package fit comfortably within 12·log2(n) bits
        per message (a constant number of identifiers and counters plus a
        constant header).
    record_round_metrics:
        When True the scheduler keeps a per-round metrics trace; disable for
        very long runs to save memory.
    engine:
        Name of the execution engine driving the round loop —
        ``"batched"`` (the CSR-backed fast path, the default), ``"reference"``
        (the per-object semantics oracle kept for the differential harness),
        ``"async"`` (the event-driven alpha-synchronizer backend) or
        ``"sharded"`` (partition-parallel execution over ``shards`` shards);
        see :mod:`repro.congest.engine`.  All engines are guaranteed to
        produce bit-identical outputs and protocol metrics, so the choice is
        an execution-model / throughput knob: ``"async"`` additionally
        reports the synchronizer's control-message overhead in the metrics'
        ``ack_messages`` / ``safety_messages`` fields.  The default flipped
        from ``"reference"`` to ``"batched"`` once the fast path had
        survived several releases of differential CI.
    shards:
        Shard count for ``engine="sharded"`` (ignored by the other
        engines).  May exceed the node count; surplus shards are empty.
    shard_workers:
        Thread-pool width for the sharded engine.  ``0`` or ``1`` selects
        the serial deterministic mode (the default, and what the
        differential harness runs); ``>= 2`` steps shards on a thread pool.
        Outputs and metrics are bit-identical either way.
    shard_strategy:
        Partitioner strategy for the sharded engine — one of
        :data:`repro.congest.sharding.PARTITION_STRATEGIES`
        (``"contiguous"``, ``"bfs"``).
    """

    max_rounds: Optional[int] = None
    enforce_congestion: bool = True
    message_bit_budget: Optional[int] = None
    budget_multiplier: float = 12.0
    record_round_metrics: bool = True
    engine: str = "batched"
    shards: int = 4
    shard_workers: int = 0
    shard_strategy: str = "contiguous"

    def with_log_budget(self, n: int) -> "CongestConfig":
        """Return a copy whose message budget is ``budget_multiplier * log2 n``.

        The budget never drops below 32 bits so that tiny test graphs (n of a
        few nodes) do not spuriously reject constant-size headers.
        """
        budget = max(32, int(math.ceil(self.budget_multiplier * math.log2(max(2, n)))))
        return replace(self, message_bit_budget=budget)

    def with_max_rounds(self, max_rounds: Optional[int]) -> "CongestConfig":
        """Return a copy with a different deterministic round cap."""
        return replace(self, max_rounds=max_rounds)

    def with_engine(self, engine: str) -> "CongestConfig":
        """Return a copy that selects a different execution engine."""
        return replace(self, engine=engine)

    def with_sharding(
        self,
        shards: Optional[int] = None,
        workers: Optional[int] = None,
        strategy: Optional[str] = None,
    ) -> "CongestConfig":
        """Return a copy selecting the sharded engine with the given knobs.

        ``None`` keeps the current value of the corresponding field; the
        engine is always switched to ``"sharded"``.
        """
        return replace(
            self,
            engine="sharded",
            shards=self.shards if shards is None else shards,
            shard_workers=self.shard_workers if workers is None else workers,
            shard_strategy=self.shard_strategy if strategy is None else strategy,
        )

    @staticmethod
    def local_model(max_rounds: Optional[int] = None) -> "CongestConfig":
        """Configuration for LOCAL-model protocols (unbounded message size).

        Used by the neighbours'-neighbours baseline of Section 3, whose
        messages may contain all node identifiers.
        """
        return CongestConfig(
            max_rounds=max_rounds,
            enforce_congestion=True,
            message_bit_budget=None,
        )
