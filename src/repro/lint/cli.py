"""Argument handling shared by ``python -m repro.lint`` and the
``repro-nearclique lint`` subcommand.

The lint package itself is stdlib-only (``ast`` + ``tokenize``); running it
never imports or executes the code under analysis, so it works on files that
would fail to import.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.lint.core import run_lint
from repro.lint.report import render_json, render_rules, render_text


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to *parser* (used by both entry points)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (text is clickable file:line:col lines)",
    )
    parser.add_argument(
        "--select",
        help="comma-separated rule-id prefixes to run (e.g. DET,HOOK001)",
    )
    parser.add_argument(
        "--ignore",
        help="comma-separated rule-id prefixes to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry (id, severity, invariant) and exit",
    )


def _split(spec: Optional[str]) -> Optional[Sequence[str]]:
    if not spec:
        return None
    return tuple(part.strip() for part in spec.split(",") if part.strip())


def run_from_args(args: argparse.Namespace) -> int:
    """Execute lint for parsed arguments; returns the process exit code."""
    if args.list_rules:
        print(render_rules())
        return 0
    findings = run_lint(
        args.paths, select=_split(args.select), ignore=_split(args.ignore)
    )
    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Static protocol-contract analyzer: checks every Protocol "
            "subclass against the engine stack's determinism, pickling, "
            "wire-vocabulary, bit-budget and hook-discipline invariants."
        ),
    )
    configure_parser(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
