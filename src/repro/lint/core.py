"""Shared driver of the protocol-contract analyzer.

The driver owns everything the individual rules share: file discovery, AST
parsing, the cross-module :class:`~repro.lint.protocols.PackageIndex`, the
rule registry (stable ids, severities, the invariant each rule protects),
inline suppressions and the unused-suppression check.  A rule is a function
``(ModuleUnit) -> Iterable[LintFinding]`` registered with the :func:`rule`
decorator; rules never do their own I/O and never import target code.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.protocols import (
    HookFunction,
    PackageIndex,
    collect_hooks,
    import_aliases,
    module_name_for,
    package_root_for,
)

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: Rule id reserved for files the analyzer cannot parse.
SYNTAX_RULE_ID = "SYNTAX"


@dataclass(frozen=True, order=True)
class LintFinding:
    """One reported contract violation, anchored to ``path:line:col``."""

    path: str
    line: int
    col: int  # 1-based, matching editors / clickable terminal output
    rule_id: str
    severity: str
    message: str

    @property
    def location(self) -> str:
        return "%s:%d:%d" % (self.path, self.line, self.col)


@dataclass(frozen=True)
class Rule:
    """A registered rule: stable id, severity, and the invariant it protects."""

    rule_id: str
    severity: str
    invariant: str
    check: Optional[Callable[["ModuleUnit"], Iterable[LintFinding]]] = None


_REGISTRY: Dict[str, Rule] = {}
_RULES_LOADED = False


def rule(rule_id: str, severity: str, invariant: str):
    """Class-registry decorator for rule check functions."""

    def decorate(fn: Callable[["ModuleUnit"], Iterable[LintFinding]]):
        if rule_id in _REGISTRY:
            raise ValueError("duplicate lint rule id %r" % rule_id)
        _REGISTRY[rule_id] = Rule(rule_id, severity, invariant, fn)
        return fn

    return decorate


def _ensure_rules_loaded() -> None:
    """Import the rule modules exactly once (they self-register)."""
    global _RULES_LOADED
    if not _RULES_LOADED:
        import repro.lint.rules  # noqa: F401  (registration side effect)

        _RULES_LOADED = True


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule plus the driver-owned suppression rules."""
    _ensure_rules_loaded()
    rules = dict(_REGISTRY)
    rules.setdefault(
        "SUP001",
        Rule(
            "SUP001",
            SEVERITY_WARNING,
            "a `# repro-lint: ignore[...]` comment must suppress a real "
            "finding; stale suppressions hide contract drift",
        ),
    )
    rules.setdefault(
        "SUP002",
        Rule(
            "SUP002",
            SEVERITY_WARNING,
            "suppression comments may only name registered rule ids",
        ),
    )
    return tuple(rules[key] for key in sorted(rules))


def get_rule(rule_id: str) -> Rule:
    for registered in all_rules():
        if registered.rule_id == rule_id:
            return registered
    raise KeyError("unknown lint rule %r" % rule_id)


# ---------------------------------------------------------------------------
# per-module analysis context
# ---------------------------------------------------------------------------
@dataclass
class ModuleUnit:
    """Everything a rule may look at for one source file."""

    path: str
    module: str
    source: str
    tree: ast.Module
    index: PackageIndex
    aliases: Dict[str, str] = field(default_factory=dict)
    protocol_classes: List[ast.ClassDef] = field(default_factory=list)
    hooks: List[HookFunction] = field(default_factory=list)

    def qualified_class_name(self, cls: ast.ClassDef) -> str:
        return "%s.%s" % (self.module, cls.name) if self.module else cls.name

    def resolve_call_target(self, node: ast.AST) -> Optional[str]:
        """Dotted name a call resolves to, through the module's import aliases.

        ``rnd.random()`` after ``import random as rnd`` resolves to
        ``random.random``; unresolvable expressions return ``None``.
        """
        from repro.lint.protocols import dotted_name

        dotted = dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        resolved = self.aliases.get(head)
        if resolved is not None:
            return "%s.%s" % (resolved, rest) if rest else resolved
        return dotted

    def finding(
        self, rule_id: str, node: ast.AST, message: str
    ) -> LintFinding:
        registered = _REGISTRY[rule_id]
        return LintFinding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=rule_id,
            severity=registered.severity,
            message=message,
        )


def build_unit(path: str, source: str, index: PackageIndex) -> ModuleUnit:
    tree = ast.parse(source, filename=path)
    unit = ModuleUnit(
        path=path,
        module=module_name_for(path),
        source=source,
        tree=tree,
        index=index,
        aliases=import_aliases(tree),
    )
    protocol_names = index.protocol_class_names()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.ClassDef)
            and unit.qualified_class_name(node) in protocol_names
        ):
            unit.protocol_classes.append(node)
    unit.hooks = collect_hooks(tree, unit.protocol_classes)
    return unit


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*ignore\[([^\]]*)\]")


@dataclass
class Suppression:
    """One ``# repro-lint: ignore[...]`` comment and its target line."""

    path: str
    line: int  # line the comment sits on
    target_line: int  # line whose findings it suppresses
    rule_ids: Tuple[str, ...]
    used: Set[str] = field(default_factory=set)


def parse_suppressions(path: str, source: str) -> List[Suppression]:
    """Collect suppression comments via the token stream (not naive regex over
    lines, so string literals containing the marker are never misread).

    An inline comment suppresses findings on its own line; a standalone
    comment (nothing but whitespace before the ``#``) suppresses findings on
    the following line.
    """
    suppressions: List[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenizeError, SyntaxError, IndentationError):
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        ids = tuple(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        line = token.start[0]
        standalone = token.line[: token.start[1]].strip() == ""
        suppressions.append(
            Suppression(
                path=path,
                line=line,
                target_line=line + 1 if standalone else line,
                rule_ids=ids,
            )
        )
    return suppressions


# ---------------------------------------------------------------------------
# the driver
# ---------------------------------------------------------------------------
def discover_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    found: List[str] = []
    seen: Set[str] = set()
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d not in ("__pycache__", ".git")
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        candidate = os.path.join(root, name)
                        if candidate not in seen:
                            seen.add(candidate)
                            found.append(candidate)
        elif path.endswith(".py") and path not in seen:
            seen.add(path)
            found.append(path)
    return sorted(found)


def _index_roots(files: Sequence[str]) -> List[str]:
    roots: List[str] = []
    for path in files:
        root = package_root_for(path)
        if root not in roots:
            roots.append(root)
    return roots


def build_index(files: Sequence[str]) -> PackageIndex:
    """Index class definitions across each input's whole package root.

    Linting a single file must still resolve protocol classes whose bases
    live elsewhere in the package, so the index pass always covers the full
    package tree around every input — indexing parses only, which is cheap.
    """
    index = PackageIndex()
    indexed: Set[str] = set()
    for path in list(files) + discover_files(_index_roots(files)):
        if path in indexed:
            continue
        indexed.add(path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            index.add_module(path, ast.parse(source, filename=path))
        except (OSError, SyntaxError, ValueError):
            continue  # unreadable/unparsable files simply contribute nothing
    return index


def _matches(rule_id: str, prefixes: Optional[Sequence[str]]) -> bool:
    if not prefixes:
        return False
    return any(rule_id.startswith(prefix) for prefix in prefixes)


def run_lint(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[LintFinding]:
    """Analyze *paths* and return every finding, sorted by location.

    ``select`` / ``ignore`` filter by rule-id prefix (``select=["DET"]`` runs
    only the determinism rules).  Suppressed findings are dropped; unused or
    unknown suppressions surface as ``SUP001`` / ``SUP002`` findings.
    """
    _ensure_rules_loaded()
    files = discover_files(paths)
    index = build_index(files)
    known_ids = {registered.rule_id for registered in all_rules()}

    findings: List[LintFinding] = []
    for path in files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            findings.append(
                LintFinding(path, 1, 1, SYNTAX_RULE_ID, SEVERITY_ERROR, str(exc))
            )
            continue
        try:
            unit = build_unit(path, source, index)
        except SyntaxError as exc:
            findings.append(
                LintFinding(
                    path,
                    exc.lineno or 1,
                    (exc.offset or 0) + 1,
                    SYNTAX_RULE_ID,
                    SEVERITY_ERROR,
                    "syntax error: %s" % (exc.msg,),
                )
            )
            continue

        raw: List[LintFinding] = []
        for registered in _REGISTRY.values():
            if select and not _matches(registered.rule_id, select):
                continue
            if ignore and _matches(registered.rule_id, ignore):
                continue
            raw.extend(registered.check(unit))

        suppressions = parse_suppressions(path, source)
        by_line: Dict[int, List[Suppression]] = {}
        for suppression in suppressions:
            by_line.setdefault(suppression.target_line, []).append(suppression)

        for finding in raw:
            suppressed = False
            for suppression in by_line.get(finding.line, ()):
                if finding.rule_id in suppression.rule_ids:
                    suppression.used.add(finding.rule_id)
                    suppressed = True
            if not suppressed:
                findings.append(finding)

        for suppression in suppressions:
            for rule_id in suppression.rule_ids:
                if rule_id not in known_ids:
                    if not (
                        (select and not _matches("SUP002", select))
                        or (ignore and _matches("SUP002", ignore))
                    ):
                        findings.append(
                            LintFinding(
                                path,
                                suppression.line,
                                1,
                                "SUP002",
                                SEVERITY_WARNING,
                                "suppression names unknown rule %r" % rule_id,
                            )
                        )
                elif rule_id not in suppression.used:
                    # A select/ignore filter that skipped the rule would make
                    # every suppression of it look stale; only report unused
                    # suppressions for rules that actually ran.
                    ran = not (select and not _matches(rule_id, select)) and not (
                        ignore and _matches(rule_id, ignore)
                    )
                    report_sup = not (
                        (select and not _matches("SUP001", select))
                        or (ignore and _matches("SUP001", ignore))
                    )
                    if ran and report_sup:
                        findings.append(
                            LintFinding(
                                path,
                                suppression.line,
                                1,
                                "SUP001",
                                SEVERITY_WARNING,
                                "unused suppression of %s (nothing to "
                                "suppress on line %d)"
                                % (rule_id, suppression.target_line),
                            )
                        )

    return sorted(findings)
