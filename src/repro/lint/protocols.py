"""Static resolution of protocol classes and protocol hook code.

The rules in :mod:`repro.lint.rules` only apply to *protocol code* — the
methods of (transitive) subclasses of :class:`repro.congest.node.Protocol`
plus the module-level ``ctx``-first hook functions protocol modules pass into
phase constructors (``pre_start`` / ``items_fn`` / ``store_fn`` in
``core/phases.py``).  Engine internals legitimately reach into context
privates and ship whole containers, so scoping is what keeps the analyzer's
findings honest.

Resolution is purely syntactic and cross-module: a first pass indexes every
class definition under each input's package root (local name → qualified name
via the module's import aliases), then a fixpoint marks as protocol classes
exactly those whose base chain reaches ``repro.congest.node.Protocol``.  No
target code is imported — the analyzer works on files that would fail to
import (which is precisely when static checking is most useful).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: The root of the protocol class hierarchy (fully qualified).
PROTOCOL_ROOT = "repro.congest.node.Protocol"


def module_name_for(path: str) -> str:
    """Best-effort dotted module name for *path* (``src/repro/x.py`` → ``repro.x``).

    The name is derived by ascending from the file while ``__init__.py``
    markers are present, so files outside any package (test fixtures, scripts)
    simply use their stem — all that matters is that names are stable within
    one analysis run.
    """
    path = os.path.abspath(path)
    directory, filename = os.path.split(path)
    parts: List[str] = []
    stem = os.path.splitext(filename)[0]
    if stem != "__init__":
        parts.append(stem)
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        parts.append(package)
        if not package:
            break
    return ".".join(reversed(parts))


def package_root_for(path: str) -> str:
    """Topmost package directory containing *path* (or its own directory)."""
    directory = os.path.dirname(os.path.abspath(path))
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        parent = os.path.dirname(directory)
        if parent == directory:
            break
        directory = parent
    return directory


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names bound by imports to the dotted names they denote.

    ``import random`` → ``{"random": "random"}``; ``import numpy as np`` →
    ``{"np": "numpy"}``; ``from repro.congest.node import Protocol as P`` →
    ``{"P": "repro.congest.node.Protocol"}``.  Relative imports keep their
    module part unresolved (rare in this codebase, which imports absolutely).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                local = item.asname or item.name.split(".")[0]
                aliases[local] = item.name if item.asname else item.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            for item in node.names:
                if item.name == "*":
                    continue
                local = item.asname or item.name
                aliases[local] = "%s.%s" % (module, item.name) if module else item.name
    return aliases


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render a ``Name`` / ``Attribute`` chain as ``"a.b.c"`` (else ``None``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class ClassInfo:
    """One class definition, as seen by the cross-module index."""

    qualified_name: str
    node: ast.ClassDef
    path: str
    bases: Tuple[str, ...]  # qualified where resolvable
    methods: Set[str] = field(default_factory=set)


class PackageIndex:
    """Cross-module registry of class definitions and protocol resolution."""

    def __init__(self) -> None:
        self.classes: Dict[str, ClassInfo] = {}
        self._protocol_names: Optional[Set[str]] = None

    # ------------------------------------------------------------------
    def add_module(self, path: str, tree: ast.Module) -> None:
        module = module_name_for(path)
        aliases = import_aliases(tree)
        local_classes = {
            stmt.name
            for stmt in ast.walk(tree)
            if isinstance(stmt, ast.ClassDef)
        }

        def resolve(base: ast.AST) -> Optional[str]:
            dotted = dotted_name(base)
            if dotted is None:
                return None  # e.g. a subscripted Generic[...] base
            head, _, rest = dotted.partition(".")
            if not rest and head in local_classes:
                return "%s.%s" % (module, head)
            if head in aliases:
                resolved = aliases[head]
                return "%s.%s" % (resolved, rest) if rest else resolved
            return dotted

        for stmt in ast.walk(tree):
            if not isinstance(stmt, ast.ClassDef):
                continue
            qualified = "%s.%s" % (module, stmt.name) if module else stmt.name
            bases = tuple(
                resolved
                for resolved in (resolve(base) for base in stmt.bases)
                if resolved is not None
            )
            methods = {
                item.name
                for item in stmt.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            self.classes[qualified] = ClassInfo(
                qualified_name=qualified,
                node=stmt,
                path=path,
                bases=bases,
                methods=methods,
            )
        self._protocol_names = None  # force re-resolution

    # ------------------------------------------------------------------
    def protocol_class_names(self) -> Set[str]:
        """Qualified names of every class whose base chain reaches Protocol."""
        if self._protocol_names is None:
            protocol: Set[str] = {PROTOCOL_ROOT}
            changed = True
            while changed:
                changed = False
                for info in self.classes.values():
                    if info.qualified_name in protocol:
                        continue
                    if any(base in protocol for base in info.bases):
                        protocol.add(info.qualified_name)
                        changed = True
            self._protocol_names = protocol
        return self._protocol_names

    def is_protocol_class(self, qualified_name: str) -> bool:
        return qualified_name in self.protocol_class_names()

    # ------------------------------------------------------------------
    def ancestry_defines(
        self, qualified_name: str, method_names: Sequence[str]
    ) -> bool:
        """True when the class or any indexed ancestor (excluding the root
        ``Protocol`` base itself, whose hooks are deliberate no-ops) defines
        one of *method_names*."""
        seen: Set[str] = set()
        stack = [qualified_name]
        while stack:
            current = stack.pop()
            if current in seen or current == PROTOCOL_ROOT:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if any(name in info.methods for name in method_names):
                return True
            stack.extend(info.bases)
        return False


@dataclass(frozen=True)
class HookFunction:
    """One unit of protocol code: a method or a module-level ctx-hook."""

    func: ast.AST  # FunctionDef | AsyncFunctionDef
    owner: Optional[ast.ClassDef]  # the protocol class, or None for module hooks


def collect_hooks(
    tree: ast.Module, protocol_classes: Sequence[ast.ClassDef]
) -> List[HookFunction]:
    """Protocol code units of one module.

    * every method defined in the body of a protocol class (helpers such as
      ``_forward`` / ``_items`` are called from hooks and carry the same
      obligations), and
    * module-level functions whose first parameter is named ``ctx`` —
      the ``pre_start`` / ``items_fn`` / ``store_fn`` hook functions protocol
      modules hand to phase constructors — but only in modules that define at
      least one protocol class (engine modules also pass contexts around, and
      *their* internals are exempt by design).
    """
    hooks: List[HookFunction] = []
    for cls in protocol_classes:
        for item in cls.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                hooks.append(HookFunction(func=item, owner=cls))
    if protocol_classes:
        for stmt in tree.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = stmt.args.posonlyargs + stmt.args.args
            if args and args[0].arg == "ctx":
                hooks.append(HookFunction(func=stmt, owner=None))
    return hooks
