"""Reporters for lint findings: clickable text and machine-readable JSON."""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.lint.core import SEVERITY_ERROR, LintFinding, all_rules


def summarize(findings: Sequence[LintFinding]) -> Dict[str, int]:
    errors = sum(1 for f in findings if f.severity == SEVERITY_ERROR)
    return {
        "findings": len(findings),
        "errors": errors,
        "warnings": len(findings) - errors,
        "files": len({f.path for f in findings}),
    }


def render_text(findings: Sequence[LintFinding]) -> str:
    """One ``path:line:col: RULE severity: message`` line per finding.

    The ``path:line:col`` prefix is the conventional clickable form, so
    terminals and editors jump straight to the finding.
    """
    lines: List[str] = [
        "%s: %s %s: %s"
        % (finding.location, finding.rule_id, finding.severity, finding.message)
        for finding in findings
    ]
    counts = summarize(findings)
    if findings:
        lines.append(
            "%d finding%s (%d error%s, %d warning%s) in %d file%s"
            % (
                counts["findings"],
                "s" if counts["findings"] != 1 else "",
                counts["errors"],
                "s" if counts["errors"] != 1 else "",
                counts["warnings"],
                "s" if counts["warnings"] != 1 else "",
                counts["files"],
                "s" if counts["files"] != 1 else "",
            )
        )
    else:
        lines.append("clean: no protocol-contract findings")
    return "\n".join(lines)


def render_json(findings: Sequence[LintFinding]) -> str:
    """A stable JSON document: the findings plus a count summary."""
    payload = {
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "rule": finding.rule_id,
                "severity": finding.severity,
                "message": finding.message,
            }
            for finding in findings
        ],
        "summary": summarize(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rules() -> str:
    """The rule registry as a table (``--list-rules``)."""
    rules = all_rules()
    width = max(len(r.rule_id) for r in rules)
    lines = [
        "%-*s  %-7s  %s" % (width, r.rule_id, r.severity, r.invariant)
        for r in rules
    ]
    return "\n".join(lines)
