"""``repro lint`` — static analysis of the engine stack's protocol contract.

Every execution backend in this package (batched, async, sharded, process,
vectorized) leans on one safety net: a :class:`repro.congest.node.Protocol`
must be *deterministic* (same inputs, same ``ctx.rng`` draws → same traffic),
*picklable* (the process backend ships protocol objects and per-node state
across worker pipes), *wire-encodable* (payloads restricted to the vocabulary
of :func:`repro.congest.message.estimate_payload_bits`) and *O(log n)-bounded*
(the CONGEST bit budget).  Those obligations are enforced dynamically — by
the differential suite, by ``ShardWorkerError``, by budget checks at drain
time — but only on the backends and graphs a test happens to run.  This
package turns the contract into *pre-runtime* tooling: an AST-level analyzer
that resolves every protocol class in a source tree and checks each rule of
the contract against it, with stable rule ids, inline suppressions and
``file:line`` reporting.

Usage
-----
Command line (the analyzer parses, never imports, the code under analysis)::

    python -m repro.lint src/repro
    repro-nearclique lint src/repro --format json

Library::

    from repro.lint import run_lint
    findings = run_lint(["src/repro"])

Suppressions
------------
A finding is silenced by a ``# repro-lint: ignore[RULE_ID]`` comment on the
offending line, or on a standalone comment line directly above it::

    chosen = random.choice(peers)  # repro-lint: ignore[DET001] seeded upstream

Multiple ids may be given comma-separated.  Suppressions that silence
nothing are themselves reported (``SUP001``), so stale justifications cannot
accumulate; unknown rule ids in a suppression are reported as ``SUP002``.
"""

from repro.lint.core import (  # noqa: F401
    LintFinding,
    Rule,
    all_rules,
    get_rule,
    run_lint,
)
from repro.lint.report import render_json, render_text  # noqa: F401

__all__ = [
    "LintFinding",
    "Rule",
    "all_rules",
    "get_rule",
    "render_json",
    "render_text",
    "run_lint",
]
