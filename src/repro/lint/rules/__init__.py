"""Rule modules of the protocol-contract analyzer.

Importing this package registers every rule with the core registry.  Each
module covers one family of engine invariants:

``determinism``  (DET0xx)
    Bit-identity across engines requires every random draw to come from
    ``ctx.rng`` and every send order to be deterministic.
``process_safety``  (PROC0xx)
    The sharded process backend pickles protocol objects and per-node state
    across worker pipes (``sharding/workers.py``).
``wire``  (WIRE0xx)
    Payloads must stay inside the vocabulary the packed wire format
    round-trips (``sharding/wire.py``, property-tested in ``test_wire.py``).
``budget``  (BDG0xx)
    CONGEST messages carry O(log n) bits; whole containers in a payload can
    only violate ``message_bit_budget`` at scale.
``hooks``  (HOOK0xx)
    The sanctioned protocol life cycle: no sends after ``ctx.halt()``, no
    private context access, vectorized kernels paired with callback
    semantics.
``pipeline``  (PIPE0xx)
    Declared ``PhaseEffects`` drive phase fusion and prefix caching
    (``congest/pipeline.py``); hooks must not touch context keys their
    declaration omits.
"""

from repro.lint.rules import (  # noqa: F401
    budget,
    determinism,
    hooks,
    pipeline,
    process_safety,
    wire,
)
