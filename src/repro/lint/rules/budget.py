"""Bit-budget rule (BDG0xx).

CONGEST messages carry O(log n) bits — a constant number of identifiers and
polynomially-bounded counters.  A payload built from a whole container
(``ctx.neighbors``, an accumulator in ``ctx.state``) scales with node degree
or with round count instead, which only trips the runtime
``message_bit_budget`` check on graphs large enough to exceed it — exactly
the graphs tests rarely run.  The sanctioned pattern is pipelining: one
element per message through :class:`repro.primitives.pipelines.Outbox`.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.core import SEVERITY_WARNING, LintFinding, ModuleUnit, rule
from repro.lint.rules._helpers import (
    is_message_call,
    message_payload_expr,
    walk_function,
)


def _unbounded_reason(payload: ast.AST) -> Optional[str]:
    for child in ast.walk(payload):
        if isinstance(child, ast.Attribute) and child.attr == "neighbors":
            return "the node's whole neighbour list"
        if isinstance(child, ast.Attribute) and child.attr == "state":
            return "a ctx.state container"
        if isinstance(child, ast.Starred):
            return "an unpacked container"
    return None


@rule(
    "BDG001",
    SEVERITY_WARNING,
    "message payloads must stay O(log n) bits; containers that scale with "
    "degree or with accumulated rounds must be pipelined element-wise",
)
def unbounded_payload(unit: ModuleUnit) -> Iterator[LintFinding]:
    for hook in unit.hooks:
        for node in walk_function(hook.func):
            if not is_message_call(node, unit):
                continue
            payload = message_payload_expr(node)
            if payload is None:
                continue
            reason = _unbounded_reason(payload)
            if reason is not None:
                yield unit.finding(
                    "BDG001",
                    payload,
                    "message payload ships %s; the bit budget is O(log n) — "
                    "pipeline one element per round via Outbox instead"
                    % reason,
                )
