"""Wire-vocabulary rule (WIRE0xx).

Message payloads are restricted to the vocabulary every layer of the stack
agrees on — ``None``, ``bool``, ``int``, ``float``, ``str`` and nested
tuples thereof.  ``estimate_payload_bits`` rejects anything else at send
time *on the engines that validate eagerly*; the packed wire codec
(``sharding/wire.py``, property-tested in ``tests/test_wire.py``) rejects it
at the process boundary.  Flagging the construction site statically catches
the payloads that never cross a validating path in tests.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.core import SEVERITY_ERROR, LintFinding, ModuleUnit, rule
from repro.lint.rules._helpers import (
    is_message_call,
    message_payload_expr,
    walk_function,
)

_BAD_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "frozenset", "bytearray", "bytes"}
)


def _vocabulary_violation(node: ast.AST) -> Optional[str]:
    """Describe the first out-of-vocabulary form in a payload expression."""
    for child in ast.walk(node):
        if isinstance(child, (ast.List, ast.ListComp)):
            return "a list"
        if isinstance(child, (ast.Dict, ast.DictComp)):
            return "a dict"
        if isinstance(child, (ast.Set, ast.SetComp)):
            return "a set"
        if isinstance(child, ast.Lambda):
            return "a lambda"
        if isinstance(child, ast.Constant) and isinstance(
            child.value, bytes
        ):
            return "a bytes literal"
        if (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Name)
            and child.func.id in _BAD_CONSTRUCTORS
        ):
            return "a %s(...) value" % child.func.id
    return None


@rule(
    "WIRE001",
    SEVERITY_ERROR,
    "payloads must stay inside the wire vocabulary (None, bool, int, float, "
    "str, nested tuples) that every engine and the packed codec round-trip",
)
def payload_vocabulary(unit: ModuleUnit) -> Iterator[LintFinding]:
    for hook in unit.hooks:
        for node in walk_function(hook.func):
            if not is_message_call(node, unit):
                continue
            payload = message_payload_expr(node)
            if payload is None:
                continue
            violation = _vocabulary_violation(payload)
            if violation is not None:
                yield unit.finding(
                    "WIRE001",
                    payload,
                    "message payload contains %s, which is outside the wire "
                    "vocabulary; serialise structured data into tuples"
                    % violation,
                )
