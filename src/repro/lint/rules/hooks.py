"""Hook-discipline rules (HOOK0xx).

The protocol life cycle is narrow by design: a node that called
``ctx.halt()`` must stay silent, context internals belong to the engines,
and a :meth:`~repro.congest.node.Protocol.vectorized_kernel` is only an
*alternative execution* of callback semantics that must exist — the
differential suite holds kernels to bit-identity against those callbacks.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.lint.core import SEVERITY_ERROR, LintFinding, ModuleUnit, rule
from repro.lint.rules._helpers import is_send_call, walk_function


def _is_ctx_halt(stmt: ast.stmt) -> bool:
    if not isinstance(stmt, ast.Expr):
        return False
    call = stmt.value
    return (
        isinstance(call, ast.Call)
        and isinstance(call.func, ast.Attribute)
        and call.func.attr == "halt"
        and isinstance(call.func.value, ast.Name)
        and call.func.value.id == "ctx"
    )


def _child_blocks(stmt: ast.stmt) -> Iterator[List[ast.stmt]]:
    for attr in ("body", "orelse", "finalbody"):
        block = getattr(stmt, attr, None)
        if isinstance(block, list) and block and isinstance(
            block[0], ast.stmt
        ):
            yield block
    for handler in getattr(stmt, "handlers", ()):
        yield handler.body


@rule(
    "HOOK001",
    SEVERITY_ERROR,
    "a halted node takes no further part in the protocol; a send after "
    "ctx.halt() raises ProtocolError at runtime on every engine",
)
def send_after_halt(unit: ModuleUnit) -> Iterator[LintFinding]:
    def scan_block(stmts: List[ast.stmt]) -> Iterator[LintFinding]:
        halted = False
        for stmt in stmts:
            if halted:
                for node in ast.walk(stmt):
                    if is_send_call(node):
                        yield unit.finding(
                            "HOOK001",
                            node,
                            "message enqueued after ctx.halt() in the same "
                            "block; halted nodes must stay silent",
                        )
            else:
                for block in _child_blocks(stmt):
                    for finding in scan_block(block):
                        yield finding
                if _is_ctx_halt(stmt):
                    halted = True

    for hook in unit.hooks:
        for finding in scan_block(list(hook.func.body)):
            yield finding


@rule(
    "HOOK002",
    SEVERITY_ERROR,
    "NodeContext underscore internals are engine-facing; protocol code must "
    "stay on the public API so every backend can honour the contract",
)
def private_context_access(unit: ModuleUnit) -> Iterator[LintFinding]:
    for hook in unit.hooks:
        for node in walk_function(hook.func):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "ctx"
                and node.attr.startswith("_")
            ):
                yield unit.finding(
                    "HOOK002",
                    node,
                    "access to engine-internal ctx.%s from protocol code; "
                    "use the public NodeContext API (send/send_all/halt/"
                    "write_output/state)" % node.attr,
                )


def _returns_value(func: ast.AST) -> bool:
    """True when the function's own scope returns something other than None."""
    stack: List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # nested scopes return for themselves
        if isinstance(node, ast.Return) and node.value is not None:
            if not (
                isinstance(node.value, ast.Constant) and node.value.value is None
            ):
                return True
        stack.extend(ast.iter_child_nodes(node))
    return False


@rule(
    "HOOK003",
    SEVERITY_ERROR,
    "a vectorized_kernel() is an alternative execution of the callbacks, "
    "which remain the executable semantics the differential suite enforces",
)
def kernel_without_callbacks(unit: ModuleUnit) -> Iterator[LintFinding]:
    for cls in unit.protocol_classes:
        kernel_def = None
        for item in cls.body:
            if (
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name == "vectorized_kernel"
            ):
                kernel_def = item
                break
        if kernel_def is None or not _returns_value(kernel_def):
            continue
        qualified = unit.qualified_class_name(cls)
        if not unit.index.ancestry_defines(qualified, ("on_start", "on_round")):
            yield unit.finding(
                "HOOK003",
                kernel_def,
                "%s declares a vectorized_kernel() but neither defines nor "
                "inherits on_start/on_round callback semantics for the "
                "kernel to be held bit-identical to" % cls.name,
            )
