"""Pipeline-effects rules (PIPE0xx).

The pipeline compiler (``repro.congest.pipeline``) plans phase fusion and
prefix caching from each protocol's declared :class:`PhaseEffects` — an
``effects()`` declaration that omits a context key the hooks actually touch
can validate a plan whose dataflow is wrong.  PIPE001 keeps declarations
honest: every ``ctx.state[...]`` / ``ctx.globals[...]`` key a hook touches
with a statically resolvable name must appear in the declaration.

The check is deliberately conservative, both ways:

* **Usage side** — only string-literal keys and module-level string
  constants resolve; ``self.*`` attributes, call results and other dynamic
  keys are skipped (the declaration names them via the same dynamic
  spelling, which no static check can match up).
* **Declaration side** — a category containing an unresolvable element
  (``self.participant_key``, ``Outbox.STATE_KEY``) is treated as *open*:
  any usage key may be covered by it, so nothing in that category is
  reported.  A declaration composed dynamically (``.merged(...)``,
  ``super().effects()``, ``self.extra_effects``) makes the whole class
  uncheckable and is skipped entirely.

A protocol that does not define ``effects()`` in its own body is out of
scope — undeclared phases are legal (the compiler plans them as opaque
singletons); only *lying* declarations are findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.core import SEVERITY_ERROR, LintFinding, ModuleUnit, rule
from repro.lint.rules._helpers import walk_function

#: ``PhaseEffects`` keyword -> the declaration category it feeds.
_DECLARED_KEYWORDS = ("reads", "writes", "globals_read")

#: Dict-style accessor methods on the context containers and the
#: (reads, writes) roles each implies for its key argument.
_ACCESSOR_ROLES = {
    "get": (True, False),
    "setdefault": (True, True),
    "pop": (True, True),
}


def _module_string_constants(tree: ast.Module) -> Dict[str, str]:
    """Module-level ``KEY_FOO = "foo"`` bindings (the key-naming idiom)."""
    constants: Dict[str, str] = {}
    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if (
            len(targets) == 1
            and isinstance(targets[0], ast.Name)
            and isinstance(value, ast.Constant)
            and isinstance(value.value, str)
        ):
            constants[targets[0].id] = value.value
    return constants


def _resolve_key(node: ast.AST, constants: Dict[str, str]) -> Optional[str]:
    """The string a key expression statically names, or ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        return constants.get(node.id)
    return None


@dataclass
class _Declaration:
    """One class's resolved ``effects()`` declaration."""

    reads: Set[str] = field(default_factory=set)
    writes: Set[str] = field(default_factory=set)
    globals_read: Set[str] = field(default_factory=set)
    #: Categories containing an element the analyzer could not resolve —
    #: any usage key may be covered by it, so the category is not checked.
    open_categories: Set[str] = field(default_factory=set)

    def covers_state_read(self, key: str) -> bool:
        # A phase legitimately reads back keys it wrote itself.
        if {"reads", "writes"} & self.open_categories:
            return True
        return key in self.reads or key in self.writes

    def covers_state_write(self, key: str) -> bool:
        return "writes" in self.open_categories or key in self.writes

    def covers_global_read(self, key: str) -> bool:
        return "globals_read" in self.open_categories or key in self.globals_read


def _is_phase_effects_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "PhaseEffects"
    return isinstance(func, ast.Attribute) and func.attr == "PhaseEffects"


def _parse_declaration(
    effects_def: ast.AST, constants: Dict[str, str]
) -> Optional[_Declaration]:
    """Resolve the declaration, or ``None`` when it is composed dynamically."""
    declaration = _Declaration()
    inside_literals: Set[int] = set()
    saw_constructor = False
    for node in walk_function(effects_def):
        if isinstance(node, ast.Call) and _is_phase_effects_call(node):
            saw_constructor = True
            inside_literals.add(id(node.func))
            for keyword in node.keywords:
                if keyword.arg is None:  # **kwargs: anything may be declared
                    declaration.open_categories.update(_DECLARED_KEYWORDS)
                    continue
                if keyword.arg not in _DECLARED_KEYWORDS:
                    continue
                category = getattr(declaration, keyword.arg)
                value = keyword.value
                if not isinstance(value, (ast.Tuple, ast.List)):
                    declaration.open_categories.add(keyword.arg)
                    for child in ast.walk(value):
                        inside_literals.add(id(child))
                    continue
                for element in value.elts:
                    resolved = _resolve_key(element, constants)
                    if resolved is None:
                        declaration.open_categories.add(keyword.arg)
                    else:
                        category.add(resolved)
                    for child in ast.walk(element):
                        inside_literals.add(id(child))
    for node in walk_function(effects_def):
        if id(node) in inside_literals:
            continue
        if isinstance(node, ast.Call) and not _is_phase_effects_call(node):
            return None  # .merged(...), super().effects(), helper calls
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return None  # self.extra_effects and friends
    if not saw_constructor:
        return None
    return declaration


def _context_container(node: ast.AST) -> Optional[str]:
    """``"state"`` / ``"globals"`` for ``ctx.state`` / ``ctx.globals``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "ctx"
        and node.attr in ("state", "globals")
    ):
        return node.attr
    return None


def _key_usages(
    func: ast.AST, constants: Dict[str, str]
) -> Iterator[Tuple[str, str, bool, ast.AST]]:
    """(container, key, is_write, node) for every resolvable touched key."""
    for node in walk_function(func):
        if isinstance(node, ast.Subscript):
            container = _context_container(node.value)
            if container is None:
                continue
            key = _resolve_key(node.slice, constants)
            if key is None:
                continue
            yield container, key, not isinstance(node.ctx, ast.Load), node
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            roles = _ACCESSOR_ROLES.get(node.func.attr)
            container = _context_container(node.func.value)
            if roles is None or container is None or not node.args:
                continue
            key = _resolve_key(node.args[0], constants)
            if key is None:
                continue
            is_read, is_write = roles
            if is_read:
                yield container, key, False, node
            if is_write:
                yield container, key, True, node


@rule(
    "PIPE001",
    SEVERITY_ERROR,
    "the pipeline compiler fuses phases and caches prefixes from declared "
    "PhaseEffects; a hook touching a context key the declaration omits "
    "plans dataflow the execution does not honour",
)
def undeclared_effect_key(unit: ModuleUnit) -> Iterator[LintFinding]:
    constants = _module_string_constants(unit.tree)
    for cls in unit.protocol_classes:
        effects_def = None
        for item in cls.body:
            if (
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name == "effects"
            ):
                effects_def = item
                break
        if effects_def is None:
            continue
        declaration = _parse_declaration(effects_def, constants)
        if declaration is None:
            continue
        for hook in unit.hooks:
            if hook.owner is not cls or hook.func is effects_def:
                continue
            for container, key, is_write, node in _key_usages(
                hook.func, constants
            ):
                if container == "state":
                    if is_write and not declaration.covers_state_write(key):
                        yield unit.finding(
                            "PIPE001",
                            node,
                            "%s writes ctx.state[%r] but its effects() "
                            "declaration omits the key from writes"
                            % (cls.name, key),
                        )
                    elif not is_write and not declaration.covers_state_read(key):
                        yield unit.finding(
                            "PIPE001",
                            node,
                            "%s reads ctx.state[%r] but its effects() "
                            "declaration lists the key in neither reads "
                            "nor writes" % (cls.name, key),
                        )
                elif container == "globals" and not is_write:
                    if not declaration.covers_global_read(key):
                        yield unit.finding(
                            "PIPE001",
                            node,
                            "%s reads ctx.globals[%r] but its effects() "
                            "declaration omits the key from globals_read"
                            % (cls.name, key),
                        )
