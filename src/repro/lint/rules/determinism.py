"""Determinism rules (DET0xx).

The engine contract demands bit-identical runs across every backend
(reference, batched, async, sharded serial/thread/process, vectorized).
That only holds when protocol code draws randomness exclusively from the
node's seeded ``ctx.rng`` stream and never lets interpreter-level accidents
— set iteration order, object addresses, wall clocks — influence what goes
on the wire.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import SEVERITY_ERROR, LintFinding, ModuleUnit, rule
from repro.lint.rules._helpers import (
    bound_names,
    contains_send,
    is_set_expression,
    walk_function,
)

#: Dotted call targets whose results vary per process / per run.  Exact
#: entries match one function; entries ending in ``.`` match a whole module.
_NONDETERMINISTIC_CALLS = (
    "random.",
    "secrets.",
    "os.urandom",
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "uuid.uuid1",
    "uuid.uuid4",
)


def _is_banned(target: str) -> bool:
    for banned in _NONDETERMINISTIC_CALLS:
        if banned.endswith("."):
            if target.startswith(banned) and target != banned.rstrip("."):
                return True
        elif target == banned:
            return True
    return False


@rule(
    "DET001",
    SEVERITY_ERROR,
    "protocol hooks must draw randomness (and never wall-clock time) from "
    "ctx.rng, the per-node seeded stream every engine replays identically",
)
def module_level_randomness(unit: ModuleUnit) -> Iterator[LintFinding]:
    for hook in unit.hooks:
        for node in walk_function(hook.func):
            if not isinstance(node, ast.Call):
                continue
            target = unit.resolve_call_target(node.func)
            if target is not None and _is_banned(target):
                yield unit.finding(
                    "DET001",
                    node,
                    "call to %s() in protocol hook code; use ctx.rng so "
                    "every engine replays the same draws" % target,
                )


@rule(
    "DET002",
    SEVERITY_ERROR,
    "send order is part of the bit-identity contract; iterating a bare set "
    "to emit messages makes it hash-order dependent",
)
def unordered_set_iteration(unit: ModuleUnit) -> Iterator[LintFinding]:
    for hook in unit.hooks:
        for node in walk_function(hook.func):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            if not is_set_expression(node.iter):
                continue
            if any(contains_send(stmt) for stmt in node.body):
                yield unit.finding(
                    "DET002",
                    node.iter,
                    "iteration over a set feeds send/push calls; wrap the "
                    "set in sorted(...) to pin the emission order",
                )


@rule(
    "DET003",
    SEVERITY_ERROR,
    "id() values are process-local object addresses; using them in protocol "
    "code breaks replay across the process backend's workers",
)
def id_based_ordering(unit: ModuleUnit) -> Iterator[LintFinding]:
    for hook in unit.hooks:
        shadowed = "id" in bound_names(hook.func)
        if shadowed:
            continue
        for node in walk_function(hook.func):
            if (
                isinstance(node, ast.Name)
                and node.id == "id"
                and isinstance(node.ctx, ast.Load)
            ):
                yield unit.finding(
                    "DET003",
                    node,
                    "reference to builtin id() in protocol hook code; "
                    "object addresses differ per process and per run",
                )
