"""AST helpers shared by the rule modules."""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

#: Methods that enqueue protocol traffic (NodeContext and Outbox spellings).
SEND_METHODS = frozenset(
    {"send", "send_all", "push", "push_all", "push_many"}
)


def walk_function(func: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` over a function body (the function node itself excluded)."""
    for stmt in getattr(func, "body", ()):
        for node in ast.walk(stmt):
            yield node


def call_attr_name(node: ast.AST) -> Optional[str]:
    """For ``<recv>.<attr>(...)`` calls, the attribute name; else ``None``."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def is_send_call(node: ast.AST) -> bool:
    return call_attr_name(node) in SEND_METHODS


def contains_send(node: ast.AST) -> bool:
    return any(is_send_call(child) for child in ast.walk(node))


def receiver_name(node: ast.Call) -> Optional[str]:
    """For ``name.attr(...)`` calls, the receiver ``name``; else ``None``."""
    if isinstance(node.func, ast.Attribute) and isinstance(
        node.func.value, ast.Name
    ):
        return node.func.value.id
    return None


def bound_names(func: ast.AST) -> Set[str]:
    """Names bound inside a function: parameters, assignments, nested defs.

    Used to tell a genuine builtin reference (``id``) from a local that
    happens to shadow it.
    """
    names: Set[str] = set()
    args = getattr(func, "args", None)
    if args is not None:
        for arg in (
            args.posonlyargs + args.args + args.kwonlyargs
        ):
            names.add(arg.arg)
        if args.vararg:
            names.add(args.vararg.arg)
        if args.kwarg:
            names.add(args.kwarg.arg)
    for node in walk_function(func):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            names.add(node.id)
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            names.add(node.name)
    return names


def is_set_expression(node: ast.AST) -> bool:
    """Syntactic forms whose iteration order is set order (nondeterministic)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def message_payload_expr(node: ast.Call) -> Optional[ast.AST]:
    """The payload expression of a ``Message(...)`` construction, if any.

    Accepts the keyword form and the second positional argument (the
    signature is ``Message(kind, payload=None, bits=-1)``).
    """
    for keyword in node.keywords:
        if keyword.arg == "payload":
            return keyword.value
    if len(node.args) >= 2:
        return node.args[1]
    return None


def is_message_call(node: ast.AST, unit) -> bool:
    """True for calls that construct ``repro.congest.message.Message``."""
    if not isinstance(node, ast.Call):
        return False
    target = unit.resolve_call_target(node.func)
    if target is None:
        return False
    return target == "repro.congest.message.Message" or target.endswith(
        ".Message"
    ) or target == "Message"
