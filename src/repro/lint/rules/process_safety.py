"""Process-safety rules (PROC0xx).

The sharded engine's ``"process"`` backend (``sharding/workers.py``) ships
the protocol object over a pipe at arm time and round-trips every node's
``ctx.state`` / ``ctx.output`` at phase finish — so everything a protocol
stores must be picklable, and nothing may live in module globals (each
worker process has its own copy, silently diverging from the coordinator's).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.lint.core import SEVERITY_ERROR, LintFinding, ModuleUnit, rule
from repro.lint.rules._helpers import walk_function

#: Constructors whose results never survive a pickle round trip.
_UNPICKLABLE_CALLS = frozenset(
    {
        "open",
        "io.open",
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "threading.Event",
        "threading.local",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
        "multiprocessing.Queue",
    }
)


def _is_state_target(node: ast.AST) -> bool:
    """Targets that end up in pickled protocol state.

    ``ctx.state[...]`` / ``state[...]`` (the common local alias) / any
    subscript of an attribute named ``state``, plus ``self.<attr>`` — the
    protocol object itself crosses the pipe at arm time.
    """
    if isinstance(node, ast.Subscript):
        value = node.value
        if isinstance(value, ast.Attribute) and value.attr == "state":
            return True
        if isinstance(value, ast.Name) and value.id == "state":
            return True
        return _is_state_target(value)
    if isinstance(node, ast.Attribute):
        return isinstance(node.value, ast.Name) and node.value.id in (
            "self",
            "ctx",
        )
    return False


def _nested_function_names(func: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in walk_function(func):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
    return names


def _unpicklable_reason(
    unit: ModuleUnit, value: ast.AST, nested: Set[str]
) -> Optional[str]:
    if isinstance(value, ast.Lambda):
        return "a lambda"
    if isinstance(value, ast.Call):
        target = unit.resolve_call_target(value.func)
        if target in _UNPICKLABLE_CALLS:
            return "a %s() result" % target
    if isinstance(value, ast.Name) and value.id in nested:
        return "a locally defined function (closure)"
    return None


@rule(
    "PROC001",
    SEVERITY_ERROR,
    "protocol state and protocol objects cross worker pipes by pickle; "
    "lambdas, closures, locks and open handles cannot",
)
def unpicklable_in_state(unit: ModuleUnit) -> Iterator[LintFinding]:
    for hook in unit.hooks:
        nested = _nested_function_names(hook.func)
        for node in walk_function(hook.func):
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if node.value is None:
                    continue
                targets, value = [node.target], node.value
            else:
                continue
            if not any(_is_state_target(target) for target in targets):
                continue
            reason = _unpicklable_reason(unit, value, nested)
            if reason is not None:
                yield unit.finding(
                    "PROC001",
                    node,
                    "storing %s in protocol state; the process backend "
                    "cannot pickle it across the worker pipe" % reason,
                )


@rule(
    "PROC002",
    SEVERITY_ERROR,
    "per-node state must live in ctx.state; module globals are per-process "
    "copies that silently diverge under the process backend",
)
def global_mutation_in_hook(unit: ModuleUnit) -> Iterator[LintFinding]:
    for hook in unit.hooks:
        for node in walk_function(hook.func):
            if isinstance(node, ast.Global):
                yield unit.finding(
                    "PROC002",
                    node,
                    "protocol hook declares 'global %s'; module-global "
                    "mutation does not propagate across shard workers — "
                    "keep the value in ctx.state or ctx.globals"
                    % ", ".join(node.names),
                )
