"""The incremental near-clique query service.

:class:`NearCliqueService` owns one long-lived :class:`Network`, one
persistent execution session, and the cache/repair logic that makes a
query after a small topology delta cost a small fraction of a full run.

The incremental argument rests on *component locality*: CONGEST messages
never cross connected components, and the algorithm's per-node behaviour
is a function of the node's neighbourhood, its announced system size
``n``, its private seed and the global parameters.  After a batched
delta, define the **dirty region** as the union of the *current* graph's
connected components containing any touched node.  Every clean component
is then bitwise unchanged — its edge set cannot have changed (a changed
edge touches both endpoints) and it cannot have gained or lost members
(a split or merge would involve a touched edge endpoint inside it) — so
its cached per-node outputs, sample coins and candidate sets are exactly
what a fresh full run with the same seed would recompute.  The service
therefore re-executes the pipeline only on the dirty region:

* per-node seeds are replayed — a fresh ``Network(G, seed=s)`` draws one
  63-bit seed per node in ascending id order, so the service draws the
  same stream and hands the dirty nodes their exact seeds via
  ``Network(node_seeds=...)``;
* the sub-network announces the *full* system size
  (``Network(announced_n=...)``) so message-size accounting is identical;
* the Section 4.1 sample guard is evaluated globally: the sub-run's
  bound is ``max_sample_size`` minus the cached sample kept outside the
  region, which aborts exactly when the merged sample would exceed the
  bound (with the full run's abort reason, verbatim);
* candidate sets are spliced — cached candidates whose component is
  disjoint from the region, plus the sub-run's, re-sorted by component
  root as the full harvest orders them.

The result is **bit-identical** (labels, sample, candidates, components)
to a fresh full run on the final edge set — the property the service
tests assert for random delta sequences across engines.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.congest.config import CongestConfig
from repro.congest.engine import CongestSession, get_engine
from repro.congest.errors import DeltaError
from repro.congest.network import AppliedDelta, Network
from repro.core.dist_near_clique import DistNearCliqueRunner
from repro.core.params import AlgorithmParameters
from repro.core.result import CandidateSet, NearCliqueResult

from repro.service.stats import QueryRecord, ServiceStats

__all__ = ["NearCliqueService", "QueryOutcome"]


@dataclass(frozen=True)
class QueryOutcome:
    """One answered query: the algorithm's result plus how it was answered."""

    result: NearCliqueResult
    record: QueryRecord


class NearCliqueService:
    """A long-lived near-clique query service over a mutable graph.

    Parameters
    ----------
    graph:
        The initial communication graph.  Deltas may later add or remove
        edges between its nodes; the node set is fixed for the service's
        lifetime (adding nodes changes every node's announced ``n`` and
        hence invalidates all caching — restart the service instead).
    parameters:
        A full :class:`AlgorithmParameters`, or pass ``epsilon`` /
        ``sample_probability`` (and optional guard fields) as keywords.
    config:
        CONGEST configuration, engine selection included.  Defaults to
        ``CongestConfig().with_log_budget(n)`` exactly as the runner does.
    """

    def __init__(
        self,
        graph: nx.Graph,
        parameters: Optional[AlgorithmParameters] = None,
        *,
        epsilon: Optional[float] = None,
        sample_probability: Optional[float] = None,
        max_sample_size: Optional[int] = 18,
        min_output_size: int = 0,
        config: Optional[CongestConfig] = None,
    ) -> None:
        if parameters is None:
            if epsilon is None or sample_probability is None:
                raise ValueError(
                    "provide either an AlgorithmParameters record or both "
                    "epsilon and sample_probability"
                )
            parameters = AlgorithmParameters(
                epsilon=epsilon,
                sample_probability=sample_probability,
                max_sample_size=max_sample_size,
                min_output_size=min_output_size,
            )
        self.parameters = parameters
        self.network = Network(graph)
        self.config = config or CongestConfig().with_log_budget(self.network.n)
        self._engine = get_engine(self.config.engine)
        self._runner = DistNearCliqueRunner(
            parameters=parameters, config=self.config
        )
        self._session: Optional[CongestSession] = None
        self._cached: Optional[NearCliqueResult] = None
        self._cached_seed: Optional[int] = None
        self._dirty_ids: Set[int] = set()
        self.stats = ServiceStats()
        #: How many of the live session's recovery events have already been
        #: folded into :attr:`stats` (events below it are counted; see
        #: :meth:`_harvest_recovery`).
        self._recovery_watermark = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "NearCliqueService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Close the persistent execution session (idempotent)."""
        session, self._session = self._session, None
        if session is not None and not session.closed:
            session.close()

    def recover(self) -> None:
        """Tear down a (possibly crashed) session; the next query respawns.

        The daemon calls this after a :class:`ShardWorkerError`: the last
        cached result stays valid (the crash happened mid-query, before
        any output was published) and pending dirty nodes are retained, so
        the retry repeats exactly the interrupted work on a fresh pool.
        """
        # Harvest before closing: a supervised session may have recorded
        # retries on earlier phases of the very query whose final failure
        # brought us here.
        self._harvest_recovery()
        self.close()
        self.stats.observe_recovery()

    def _harvest_recovery(self) -> None:
        """Fold the session's new recovery events into the service stats.

        Supervised sessions (``CongestConfig.retry_policy``) record every
        worker failure and its outcome on their own stats; the watermark
        makes each event count exactly once across the many queries one
        session serves.
        """
        session = self._session
        events = getattr(getattr(session, "stats", None), "recovery_events", None)
        if not events:
            return
        for event in events[self._recovery_watermark:]:
            self.stats.observe_recovery_event(event)
        self._recovery_watermark = len(events)

    def _ensure_session(self) -> CongestSession:
        if self._session is None or self._session.closed:
            self._session = self._engine.open_session(self.network, self.config)
            self._recovery_watermark = 0
        return self._session

    @property
    def session(self) -> Optional[CongestSession]:
        """The live execution session, if one is open (tests introspect it)."""
        return self._session

    # ------------------------------------------------------------------
    # deltas
    # ------------------------------------------------------------------
    def apply_delta(
        self,
        additions: Iterable[Tuple[Any, Any]] = (),
        removals: Iterable[Tuple[Any, Any]] = (),
    ) -> AppliedDelta:
        """Apply a batched edge update, in the input graph's own labels.

        Validation happens before any mutation (unknown labels, self
        loops, an edge on both sides): a :class:`DeltaError` leaves the
        graph, the cache and the session untouched.
        """
        id_of = self.network.id_of

        def translate(edges: Iterable[Tuple[Any, Any]]) -> List[Tuple[int, int]]:
            pairs: List[Tuple[int, int]] = []
            for u, v in edges:
                if u not in id_of or v not in id_of:
                    unknown = u if u not in id_of else v
                    raise DeltaError(
                        "unknown node %r in delta (the service's node set is "
                        "fixed at construction)" % (unknown,)
                    )
                pairs.append((id_of[u], id_of[v]))
            return pairs

        record = self.network.apply_delta(translate(additions), translate(removals))
        self._dirty_ids.update(record.touched)
        self.stats.observe_delta(record.edges_changed)
        return record

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, seed: int = 0) -> QueryOutcome:
        """Answer one near-clique query for the current topology.

        Cached when nothing changed since an identical query; incremental
        (dirty region only) when the cached result for the same seed can
        be spliced; a full pipeline run otherwise.  All three paths return
        outputs bit-identical to ``DistNearCliqueRunner`` on a fresh
        ``Network(graph, seed=seed)`` of the current edge set.
        """
        if not self._dirty_ids and self._cached is not None:
            if self._cached_seed == seed and not self._cached.aborted:
                record = QueryRecord(
                    kind="cached", recomputed_nodes=0, total_nodes=self.network.n
                )
                self.stats.observe_query(record)
                return QueryOutcome(self._cached, record)
        if (
            self._cached is None
            or self._cached_seed != seed
            or self._cached.aborted
        ):
            return self._full_query(seed)
        outcome = self._incremental_query(seed)
        if outcome is None:  # sub-run aborted for a non-sample reason
            return self._full_query(seed)
        return outcome

    def _finish(
        self, result: NearCliqueResult, seed: int, record: QueryRecord
    ) -> QueryOutcome:
        self._cached = result
        self._cached_seed = seed
        self._dirty_ids.clear()
        self.stats.observe_query(record)
        self._harvest_recovery()
        return QueryOutcome(result, record)

    def _full_query(self, seed: int) -> QueryOutcome:
        self.network.reseed(seed)
        result = self._runner.run(
            network=self.network, session=self._ensure_session()
        )
        record = QueryRecord(
            kind="full",
            recomputed_nodes=self.network.n,
            total_nodes=self.network.n,
            dirty_shards=self._shards_of(self.network.node_ids),
        )
        return self._finish(result, seed, record)

    # -- the incremental path ------------------------------------------
    def _dirty_region(self) -> List[int]:
        """Current-graph components containing any dirty node (sorted ids)."""
        seen: Set[int] = set()
        stack = list(self._dirty_ids)
        while stack:
            v = stack.pop()
            if v in seen:
                continue
            seen.add(v)
            stack.extend(
                u for u in self.network.neighbors(v) if u not in seen
            )
        return sorted(seen)

    def _incremental_query(self, seed: int) -> Optional[QueryOutcome]:
        cached = self._cached
        assert cached is not None
        network = self.network
        region = self._dirty_region()
        region_labels: FrozenSet[Any] = frozenset(
            network.label_of[v] for v in region
        )
        kept_sample = frozenset(cached.sample) - region_labels

        # Replay the seed stream of ``Network(G, seed=seed)``: one 63-bit
        # draw per node in ascending id order.  Dirty nodes receive their
        # exact draws; clean nodes already hold theirs in the cache.
        rng = random.Random(seed)
        seed_of: Dict[int, int] = {
            v: rng.getrandbits(63) for v in network.node_ids
        }
        sub_network = Network(
            network.induced_subgraph(region),
            node_seeds={v: seed_of[v] for v in region},
            announced_n=network.n,
        )

        # The deterministic sample guard is global: budget the sub-run
        # with whatever the kept cached sample leaves of the bound.
        params = self.parameters
        if params.max_sample_size is not None:
            params = replace(
                params,
                max_sample_size=params.max_sample_size - len(kept_sample),
            )
        # Any engine yields bit-identical outputs and metrics (the engine
        # contract), so the region re-run uses the in-process batched
        # engine rather than spinning up shard workers for a small
        # subgraph.  The config otherwise stays the service's — same
        # message budget (derived from the full n), same parameters.
        sub_runner = DistNearCliqueRunner(
            parameters=params, config=self.config.with_engine("batched")
        )
        sub_result = sub_runner.run(network=sub_network)

        record = QueryRecord(
            kind="incremental",
            recomputed_nodes=len(region),
            total_nodes=network.n,
            dirty_shards=self._shards_of(region),
        )

        if sub_result.aborted:
            reason = sub_result.abort_reason or ""
            if not reason.startswith("sample size"):
                return None  # round-limit etc.: let the caller run full
            # A fresh full run would realise kept ∪ sub samples and abort
            # on the global bound; reproduce its result verbatim.
            merged_sample = kept_sample | frozenset(sub_result.sample)
            assert self.parameters.max_sample_size is not None
            result = NearCliqueResult(
                labels={network.label_of[v]: None for v in network.node_ids},
                sample=merged_sample,
                epsilon=self.parameters.epsilon,
                sample_probability=self.parameters.sample_probability,
                aborted=True,
                abort_reason="sample size %d exceeds the deterministic bound %d"
                % (len(merged_sample), self.parameters.max_sample_size),
                metrics=sub_result.metrics,
            )
            return self._finish(result, seed, record)

        result = self._splice(cached, sub_result, region, region_labels)
        return self._finish(result, seed, record)

    def _splice(
        self,
        cached: NearCliqueResult,
        sub_result: NearCliqueResult,
        region: List[int],
        region_labels: FrozenSet[Any],
    ) -> NearCliqueResult:
        """Merge the region re-run into the cached full result."""
        network = self.network
        label_of = network.label_of

        def out_label(value: Optional[int]) -> Optional[Any]:
            return None if value is None else label_of[value]

        # The sub-network's nodes are this network's integer ids, so the
        # sub-result is keyed (and valued) in ids; translate on the way in.
        labels: Dict[Any, Optional[Any]] = dict(cached.labels)
        for v in region:
            labels[label_of[v]] = out_label(sub_result.labels[v])

        sample = (frozenset(cached.sample) - region_labels) | frozenset(
            label_of[v] for v in sub_result.sample
        )

        merged: List[Tuple[CandidateSet, FrozenSet[Any]]] = [
            (candidate, component)
            for candidate, component in zip(cached.candidates, cached.components)
            if candidate.component_members.isdisjoint(region_labels)
        ]
        for candidate, component in zip(
            sub_result.candidates, sub_result.components
        ):
            translated = CandidateSet(
                component_root=label_of[candidate.component_root],
                component_members=frozenset(
                    label_of[v] for v in candidate.component_members
                ),
                subset_index=candidate.subset_index,
                subset=frozenset(label_of[v] for v in candidate.subset),
                members=frozenset(label_of[v] for v in candidate.members),
                survived=candidate.survived,
            )
            merged.append(
                (translated, frozenset(label_of[v] for v in component))
            )
        # The full harvest emits candidates in ascending component-root id
        # (the root is the smallest sampled id of its component).
        merged.sort(key=lambda pair: network.id_of[pair[0].component_root])

        return NearCliqueResult(
            labels=labels,
            candidates=[candidate for candidate, _ in merged],
            sample=sample,
            components=tuple(component for _, component in merged),
            epsilon=cached.epsilon,
            sample_probability=cached.sample_probability,
            metrics=sub_result.metrics,
        )

    # ------------------------------------------------------------------
    def _shards_of(self, nodes: Iterable[int]) -> Tuple[int, ...]:
        """Shards of the service's plan owning *nodes* (sharded engine only)."""
        if self.config.engine != "sharded":
            return ()
        plan = getattr(self._session, "plan", None)
        if plan is None:
            from repro.congest.sharding import cached_partition
            from repro.congest.sharding.engine import ShardedEngine

            engine = self._engine
            if not isinstance(engine, ShardedEngine):  # pragma: no cover
                return ()
            shards, strategy, _backend = engine.resolve_structure(self.config)
            plan = cached_partition(self.network, shards, strategy)
        index_of = self.network.node_index_of
        return tuple(sorted({plan.owner[index_of[v]] for v in nodes}))
