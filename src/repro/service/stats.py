"""Accounting for the near-clique service.

One :class:`ServiceStats` instance lives for the service's lifetime and
counts what the daemon's ``stats`` command reports: queries by kind (full /
incremental / cached), deltas absorbed, nodes recomputed, worker crashes
survived.  :class:`QueryRecord` is the per-query slice the service returns
inside every :class:`repro.service.incremental.QueryOutcome` — tests assert
against it ("the follow-up query recomputed only the dirty region") and the
daemon serialises it into the query response.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: The ways one query can be answered.
QUERY_KINDS: Tuple[str, ...] = ("full", "incremental", "cached")


@dataclass(frozen=True)
class QueryRecord:
    """How one query was answered.

    Attributes
    ----------
    kind:
        ``"full"`` (complete pipeline over the whole network),
        ``"incremental"`` (pipeline over the dirty region only, spliced
        with cached fragments) or ``"cached"`` (no dirty nodes: the cached
        result returned as-is).
    recomputed_nodes / total_nodes:
        Size of the region the CONGEST pipeline actually ran on versus the
        system size — the incremental win is their ratio.
    dirty_shards:
        Shards (of the service's partition plan) owning recomputed nodes;
        empty when the configured engine is not sharded or nothing ran.
    """

    kind: str
    recomputed_nodes: int
    total_nodes: int
    dirty_shards: Tuple[int, ...] = ()

    @property
    def recomputed_fraction(self) -> float:
        if self.total_nodes == 0:
            return 0.0
        return self.recomputed_nodes / self.total_nodes


@dataclass
class ServiceStats:
    """Lifetime counters of one :class:`~repro.service.NearCliqueService`."""

    queries: int = 0
    full_queries: int = 0
    incremental_queries: int = 0
    cached_hits: int = 0
    deltas: int = 0
    edges_changed: int = 0
    nodes_recomputed: int = 0
    worker_crashes: int = 0
    recoveries: int = 0
    #: Phase replays / watchdog timeouts / serial-backend degradations —
    #: the supervised-retry ledger.  ``retries`` and ``degradations`` are
    #: harvested from the session's per-failure
    #: :class:`repro.congest.sharding.engine.RecoveryEvent` records;
    #: ``worker_timeouts`` counts timeouts that *escaped* to the daemon
    #: (a timeout the session retried away is visible in ``retries``
    #: instead — the split avoids double counting one failure).
    retries: int = 0
    worker_timeouts: int = 0
    degradations: int = 0
    records: List[QueryRecord] = field(default_factory=list)

    def observe_query(self, record: QueryRecord) -> None:
        self.queries += 1
        if record.kind == "full":
            self.full_queries += 1
        elif record.kind == "incremental":
            self.incremental_queries += 1
        else:
            self.cached_hits += 1
        self.nodes_recomputed += record.recomputed_nodes
        self.records.append(record)

    def observe_delta(self, edges_changed: int) -> None:
        self.deltas += 1
        self.edges_changed += edges_changed

    def observe_crash(self) -> None:
        self.worker_crashes += 1

    def observe_recovery(self) -> None:
        self.recoveries += 1

    def observe_timeout(self) -> None:
        """A barrier-watchdog timeout escaped a query to the daemon."""
        self.worker_timeouts += 1

    def observe_recovery_event(self, event) -> None:
        """Fold one session-level recovery event into the service ledger.

        *event* is a
        :class:`repro.congest.sharding.engine.RecoveryEvent` harvested
        from the session's stats.  Deliberately does not touch
        ``worker_timeouts``: a timeout the session recovered from is
        counted as its ``retries``/``degradations`` outcome, while
        ``worker_timeouts`` counts only timeouts that escaped to the
        daemon — one failure, one counter.
        """
        if event.action == "retry":
            self.retries += 1
        elif event.action == "degrade":
            self.degradations += 1

    def as_dict(self) -> Dict[str, int]:
        """Flat counters for the daemon's ``stats`` response (JSON-ready)."""
        return {
            "queries": self.queries,
            "full_queries": self.full_queries,
            "incremental_queries": self.incremental_queries,
            "cached_hits": self.cached_hits,
            "deltas": self.deltas,
            "edges_changed": self.edges_changed,
            "nodes_recomputed": self.nodes_recomputed,
            "worker_crashes": self.worker_crashes,
            "recoveries": self.recoveries,
            "retries": self.retries,
            "worker_timeouts": self.worker_timeouts,
            "degradations": self.degradations,
        }
