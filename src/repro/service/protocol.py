"""The JSONL wire protocol of the near-clique daemon.

One request per line on stdin, one response per line on stdout — the
simplest long-lived transport that composes with shell pipelines, unit
tests (``io.StringIO``) and process supervisors alike.

Requests
--------
Every request is a JSON object with a ``"cmd"`` key:

``{"cmd": "query", "seed": 0}``
    Run (or reuse / repair) the near-clique computation.  ``seed`` drives
    the per-node sampling coins and defaults to 0; repeating a seed on an
    unchanged graph is answered from cache.

``{"cmd": "delta", "add": [[u, v], ...], "remove": [[u, v], ...]}``
    Apply a batched topology update.  Nodes are the input graph's own
    labels.  The delta is validated *before* any mutation: a rejected
    delta (unknown node, self-loop, edge listed on both sides) leaves the
    graph untouched and yields a ``bad-delta`` error response.

``{"cmd": "stats"}``
    Lifetime service counters (queries by kind, deltas, crashes, …).

``{"cmd": "shutdown"}``
    Acknowledge and stop the serve loop.

Responses
---------
``{"ok": true, "cmd": <cmd>, ...payload}`` on success, or
``{"ok": false, "error": {"code": <code>, "message": <msg>}}`` on failure.
Error codes: ``bad-request`` (unparseable/unknown command, or a request
line exceeding the daemon's length bound), ``bad-delta`` (delta
validation), ``worker-crash`` (a shard worker died mid-query; the daemon
respawned and keeps serving), ``worker-timeout`` (the barrier watchdog
gave up on a hung worker; same recovery as a crash), ``congest-error``
(any other simulator-contract violation) and ``internal-error``.
Responses are emitted with sorted keys so transcripts are reproducible.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.result import NearCliqueResult

from repro.service.stats import QueryRecord

#: Commands the daemon understands.
COMMANDS: Tuple[str, ...] = ("query", "delta", "stats", "shutdown")

#: Error codes a response may carry.
ERROR_CODES: Tuple[str, ...] = (
    "bad-request",
    "bad-delta",
    "worker-crash",
    "worker-timeout",
    "congest-error",
    "internal-error",
)


class RequestError(ValueError):
    """A request line that violates the protocol (code ``bad-request``)."""

    code = "bad-request"


def parse_request(line: str) -> Dict[str, Any]:
    """Parse one request line into a validated command dict.

    Raises
    ------
    RequestError
        If the line is not a JSON object, names no known command, or
        carries malformed arguments.  The daemon answers these with a
        ``bad-request`` response and keeps serving.
    """
    try:
        request = json.loads(line)
    except json.JSONDecodeError as exc:
        raise RequestError("not valid JSON: %s" % exc) from exc
    if not isinstance(request, dict):
        raise RequestError(
            "a request must be a JSON object, got %s" % type(request).__name__
        )
    cmd = request.get("cmd")
    if cmd not in COMMANDS:
        raise RequestError(
            "unknown command %r (expected one of %s)" % (cmd, ", ".join(COMMANDS))
        )
    if cmd == "query":
        seed = request.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise RequestError("query seed must be an integer, got %r" % (seed,))
    elif cmd == "delta":
        for key in ("add", "remove"):
            edges = request.get(key, [])
            if not isinstance(edges, list):
                raise RequestError("delta %r must be a list of edges" % key)
            for edge in edges:
                if (
                    not isinstance(edge, (list, tuple))
                    or len(edge) != 2
                ):
                    raise RequestError(
                        "delta edges must be [u, v] pairs, got %r" % (edge,)
                    )
    return request


def _edge_pairs(request: Dict[str, Any], key: str) -> List[Tuple[Any, Any]]:
    return [(edge[0], edge[1]) for edge in request.get(key, [])]


def delta_edges(
    request: Dict[str, Any]
) -> Tuple[List[Tuple[Any, Any]], List[Tuple[Any, Any]]]:
    """The (additions, removals) edge lists of a parsed ``delta`` request."""
    return _edge_pairs(request, "add"), _edge_pairs(request, "remove")


# ----------------------------------------------------------------------
# response encoding
# ----------------------------------------------------------------------
def encode_response(payload: Dict[str, Any]) -> str:
    """One response line (no trailing newline), keys sorted for stability."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def ok_response(cmd: str, **payload: Any) -> Dict[str, Any]:
    response: Dict[str, Any] = {"ok": True, "cmd": cmd}
    response.update(payload)
    return response


def error_response(code: str, message: str) -> Dict[str, Any]:
    if code not in ERROR_CODES:
        code = "internal-error"
    return {"ok": False, "error": {"code": code, "message": message}}


def _jsonable_label(label: Any) -> Any:
    """Graph labels are ints or strings in practice; stringify anything else."""
    if isinstance(label, (int, str)) and not isinstance(label, bool):
        return label
    return repr(label)


def _sorted_values(values: Iterable[Any]) -> List[Any]:
    """Natural sort when the values support it, repr-sort for mixed labels."""
    items = list(values)
    try:
        return sorted(items)
    except TypeError:
        return sorted(items, key=repr)


def result_payload(
    result: NearCliqueResult, record: Optional[QueryRecord] = None
) -> Dict[str, Any]:
    """Serialise a query answer for the ``query`` response.

    ``labels`` is a list of ``[node, label-or-null]`` pairs (JSON object
    keys must be strings, which would silently stringify integer node
    labels); candidates carry the fields the experiments read.
    """
    payload: Dict[str, Any] = {
        "aborted": result.aborted,
        "abort_reason": result.abort_reason,
        "sample": _sorted_values(_jsonable_label(v) for v in result.sample),
        "labels": sorted(
            (
                [_jsonable_label(node), None if label is None else _jsonable_label(label)]
                for node, label in result.labels.items()
            ),
            key=repr,
        ),
        "candidates": [
            {
                "component_root": _jsonable_label(c.component_root),
                "size": c.size,
                "survived": c.survived,
                "members": _sorted_values(
                    _jsonable_label(v) for v in c.members
                ),
            }
            for c in result.candidates
        ],
    }
    if result.metrics is not None:
        payload["metrics"] = {
            "rounds": result.metrics.rounds,
            "total_messages": result.metrics.total_messages,
            "total_bits": result.metrics.total_bits,
            "max_message_bits": result.metrics.max_message_bits,
        }
    if record is not None:
        payload["query"] = {
            "kind": record.kind,
            "recomputed_nodes": record.recomputed_nodes,
            "total_nodes": record.total_nodes,
            "dirty_shards": list(record.dirty_shards),
        }
    return payload
