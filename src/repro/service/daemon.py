"""The long-lived query daemon: a JSONL serve loop over a service.

:class:`NearCliqueDaemon` reads requests line by line (stdin by default),
dispatches them to a :class:`~repro.service.incremental.NearCliqueService`
and writes exactly one JSON response line per request.  It is transport
agnostic — tests drive it with ``io.StringIO`` pairs, the CLI's ``serve``
subcommand wires it to the process's standard streams.

Graceful degradation is the design centre: **no request kills the
daemon**.  A malformed line answers ``bad-request``; a rejected delta
answers ``bad-delta`` (the graph provably untouched — validation precedes
mutation); a shard worker crash mid-query answers ``worker-crash``, tears
the session down and lets the next query respawn a fresh pool against the
unchanged cached state; anything else answers ``congest-error`` /
``internal-error``.  Only ``shutdown`` (or EOF on the request stream)
ends the loop.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, IO, Optional

from repro.congest.errors import CongestError, DeltaError, ShardWorkerError

from repro.service import protocol
from repro.service.incremental import NearCliqueService

__all__ = ["NearCliqueDaemon"]


class NearCliqueDaemon:
    """Serve JSONL requests against one :class:`NearCliqueService`.

    Parameters
    ----------
    service:
        The service instance the daemon owns; :meth:`serve_forever` closes
        it when the loop ends.
    reader / writer:
        Request source and response sink (text streams).  Default to the
        process's stdin/stdout.
    """

    def __init__(
        self,
        service: NearCliqueService,
        reader: Optional[IO[str]] = None,
        writer: Optional[IO[str]] = None,
    ) -> None:
        self.service = service
        self.reader = reader if reader is not None else sys.stdin
        self.writer = writer if writer is not None else sys.stdout
        #: Set by a ``shutdown`` request; checked by the serve loop.
        self._shutdown = False

    # ------------------------------------------------------------------
    def serve_forever(self) -> int:
        """Run the serve loop until ``shutdown`` or EOF; returns #requests."""
        served = 0
        try:
            for line in self.reader:
                if not line.strip():
                    continue
                response = self.handle_line(line)
                self._emit(response)
                served += 1
                if self._shutdown:
                    break
        finally:
            self.service.close()
        return served

    def _emit(self, response: Dict[str, Any]) -> None:
        self.writer.write(protocol.encode_response(response) + "\n")
        self.writer.flush()

    # ------------------------------------------------------------------
    def handle_line(self, line: str) -> Dict[str, Any]:
        """Answer one request line; never raises (the degradation contract)."""
        try:
            request = protocol.parse_request(line)
        except protocol.RequestError as exc:
            return protocol.error_response(exc.code, str(exc))
        try:
            return self._dispatch(request)
        except DeltaError as exc:
            return protocol.error_response("bad-delta", str(exc))
        except ShardWorkerError as exc:
            # A worker died mid-query.  The cached result and pending
            # dirty set are untouched; drop the session so the next query
            # respawns a fresh pool, and keep serving.
            self.service.stats.observe_crash()
            self.service.recover()
            return protocol.error_response("worker-crash", str(exc))
        except CongestError as exc:
            return protocol.error_response("congest-error", str(exc))
        except Exception as exc:  # pragma: no cover - defensive backstop
            return protocol.error_response(
                "internal-error", "%s: %s" % (type(exc).__name__, exc)
            )

    def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        cmd = request["cmd"]
        if cmd == "query":
            outcome = self.service.query(seed=request.get("seed", 0))
            return protocol.ok_response(
                "query", **protocol.result_payload(outcome.result, outcome.record)
            )
        if cmd == "delta":
            additions, removals = protocol.delta_edges(request)
            record = self.service.apply_delta(additions, removals)
            return protocol.ok_response(
                "delta",
                epoch=record.epoch,
                added=len(record.added),
                removed=len(record.removed),
                touched=len(record.touched),
            )
        if cmd == "stats":
            return protocol.ok_response("stats", **self.service.stats.as_dict())
        # cmd == "shutdown" (parse_request admits nothing else)
        self._shutdown = True
        return protocol.ok_response("shutdown")
