"""The long-lived query daemon: a JSONL serve loop over a service.

:class:`NearCliqueDaemon` reads requests line by line (stdin by default),
dispatches them to a :class:`~repro.service.incremental.NearCliqueService`
and writes exactly one JSON response line per request.  It is transport
agnostic — tests drive it with ``io.StringIO`` pairs, the CLI's ``serve``
subcommand wires it to the process's standard streams.

Graceful degradation is the design centre: **no request kills the
daemon**.  A malformed line answers ``bad-request`` — as does a line
longer than ``max_line_length``, which is drained and rejected in bounded
memory instead of buffered whole; a rejected delta answers ``bad-delta``
(the graph provably untouched — validation precedes mutation); a shard
worker crash mid-query answers ``worker-crash``, a barrier-watchdog
timeout ``worker-timeout`` — both tear the session down and let the next
query respawn a fresh pool against the unchanged cached state; anything
else answers ``congest-error`` / ``internal-error``.  Only ``shutdown``
(or EOF on the request stream) ends the loop.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, IO, Optional

from repro.congest.errors import (
    CongestError,
    DeltaError,
    ShardWorkerError,
    ShardWorkerTimeout,
)

from repro.service import protocol
from repro.service.incremental import NearCliqueService

__all__ = ["NearCliqueDaemon"]


class NearCliqueDaemon:
    """Serve JSONL requests against one :class:`NearCliqueService`.

    Parameters
    ----------
    service:
        The service instance the daemon owns; :meth:`serve_forever` closes
        it when the loop ends.
    reader / writer:
        Request source and response sink (text streams).  Default to the
        process's stdin/stdout.
    max_line_length:
        Upper bound, in characters, on one request line (default 1 MiB —
        generous for the protocol's biggest legitimate request, a bulk
        delta).  An unbounded ``readline`` would buffer an arbitrarily
        long line wholly in memory before the parser ever saw it; the
        serve loop instead reads at most this many characters, drains the
        remainder of an oversized line chunk-by-chunk, and answers a
        typed ``bad-request``.
    """

    def __init__(
        self,
        service: NearCliqueService,
        reader: Optional[IO[str]] = None,
        writer: Optional[IO[str]] = None,
        max_line_length: int = 1 << 20,
    ) -> None:
        if max_line_length < 1:
            raise ValueError(
                "max_line_length must be positive, got %r" % (max_line_length,)
            )
        self.service = service
        self.reader = reader if reader is not None else sys.stdin
        self.writer = writer if writer is not None else sys.stdout
        self.max_line_length = max_line_length
        #: Set by a ``shutdown`` request; checked by the serve loop.
        self._shutdown = False

    # ------------------------------------------------------------------
    def _drain_oversized_line(self) -> None:
        """Consume the rest of an oversized line in bounded chunks."""
        while True:
            chunk = self.reader.readline(self.max_line_length)
            if not chunk or chunk.endswith("\n"):
                return

    def serve_forever(self) -> int:
        """Run the serve loop until ``shutdown`` or EOF; returns #requests."""
        served = 0
        limit = self.max_line_length
        try:
            while True:
                # ``readline(limit + 1)``: a line of exactly ``limit``
                # characters plus its newline still arrives intact; only a
                # strictly longer one comes back truncated (no trailing
                # newline before EOF would look the same, but then the
                # drain below is a no-op and the verdict unchanged).
                line = self.reader.readline(limit + 1)
                if not line:
                    break  # EOF
                if len(line) > limit and not line.endswith("\n"):
                    self._drain_oversized_line()
                    self._emit(
                        protocol.error_response(
                            "bad-request",
                            "request line exceeds the %d-character limit"
                            % limit,
                        )
                    )
                    served += 1
                    continue
                if not line.strip():
                    continue
                response = self.handle_line(line)
                self._emit(response)
                served += 1
                if self._shutdown:
                    break
        finally:
            self.service.close()
        return served

    def _emit(self, response: Dict[str, Any]) -> None:
        self.writer.write(protocol.encode_response(response) + "\n")
        self.writer.flush()

    # ------------------------------------------------------------------
    def handle_line(self, line: str) -> Dict[str, Any]:
        """Answer one request line; never raises (the degradation contract)."""
        try:
            request = protocol.parse_request(line)
        except protocol.RequestError as exc:
            return protocol.error_response(exc.code, str(exc))
        try:
            return self._dispatch(request)
        except DeltaError as exc:
            return protocol.error_response("bad-delta", str(exc))
        except ShardWorkerTimeout as exc:
            # The barrier watchdog gave up on a hung worker and the
            # session's retry budget (if any) is spent.  Same recovery
            # story as a crash — drop the session, keep the cached state —
            # but the response names the distinct failure mode.
            self.service.stats.observe_timeout()
            self.service.recover()
            return protocol.error_response("worker-timeout", str(exc))
        except ShardWorkerError as exc:
            # A worker died mid-query.  The cached result and pending
            # dirty set are untouched; drop the session so the next query
            # respawns a fresh pool, and keep serving.
            self.service.stats.observe_crash()
            self.service.recover()
            return protocol.error_response("worker-crash", str(exc))
        except CongestError as exc:
            return protocol.error_response("congest-error", str(exc))
        except Exception as exc:  # pragma: no cover - defensive backstop
            return protocol.error_response(
                "internal-error", "%s: %s" % (type(exc).__name__, exc)
            )

    def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        cmd = request["cmd"]
        if cmd == "query":
            outcome = self.service.query(seed=request.get("seed", 0))
            return protocol.ok_response(
                "query", **protocol.result_payload(outcome.result, outcome.record)
            )
        if cmd == "delta":
            additions, removals = protocol.delta_edges(request)
            record = self.service.apply_delta(additions, removals)
            return protocol.ok_response(
                "delta",
                epoch=record.epoch,
                added=len(record.added),
                removed=len(record.removed),
                touched=len(record.touched),
            )
        if cmd == "stats":
            return protocol.ok_response("stats", **self.service.stats.as_dict())
        # cmd == "shutdown" (parse_request admits nothing else)
        self._shutdown = True
        return protocol.ok_response("shutdown")
