"""Service mode: streaming deltas, incremental repair, a query daemon.

The paper's algorithm answers one-shot queries; this package turns the
reproduction into a *service* over a graph that changes in small batches
— the regime where the algorithm's locality pays off a second time.
Three layers, each usable on its own:

:mod:`repro.service.incremental`
    :class:`NearCliqueService` — one long-lived
    :class:`~repro.congest.network.Network`, one persistent execution
    session, and the component-locality argument that lets a query after
    a delta re-run the CONGEST pipeline on the dirty region only, splice
    the cached clean components back in, and still be **bit-identical**
    to a fresh full run on the final edge set (that module's docstring
    carries the argument; the service tests assert it for random delta
    sequences across engines).

:mod:`repro.service.protocol`
    The JSONL wire protocol — ``query`` / ``delta`` / ``stats`` /
    ``shutdown`` requests, typed error codes, deterministic (sorted-key)
    response encoding.

:mod:`repro.service.daemon`
    :class:`NearCliqueDaemon` — the serve loop behind the CLI's ``serve``
    subcommand.  No request kills it: bad input, rejected deltas and
    shard-worker crashes each map to a typed error response and the loop
    keeps serving (a crash tears down the worker pool; the next query
    respawns it against the intact cached state).

:mod:`repro.service.stats`
    :class:`ServiceStats` / :class:`QueryRecord` — lifetime counters and
    the per-query record (full / incremental / cached, nodes recomputed,
    dirty shards) the acceptance tests assert against.

The underlying delta machinery lives with the structures it mutates:
:meth:`Network.apply_delta <repro.congest.network.Network.apply_delta>`
(validated batch updates, amortised CSR rebuild, the applied-delta
ledger), :func:`repair_plan <repro.congest.sharding.repair_plan>`
(incremental FM repair of a shard plan around the touched nodes) and the
persistent ``ProcessSession``'s delta absorption (respawn only the dirty
shards' workers).
"""

from repro.service.daemon import NearCliqueDaemon
from repro.service.incremental import NearCliqueService, QueryOutcome
from repro.service.protocol import RequestError, parse_request, result_payload
from repro.service.stats import QueryRecord, ServiceStats

__all__ = [
    "NearCliqueDaemon",
    "NearCliqueService",
    "QueryOutcome",
    "QueryRecord",
    "RequestError",
    "ServiceStats",
    "parse_request",
    "result_payload",
]
