"""The neighbours'-neighbours baseline (Section 3 of the paper).

The idea: in one round every node tells its neighbours who *its* neighbours
are; afterwards every node knows the topology up to distance two and can
locally find the largest clique it belongs to, killing cliques that
intersect larger ones.  The paper rules this approach out for two reasons,
both of which this implementation makes measurable:

1. **Communication** — a message may contain all node identifiers, i.e. the
   algorithm needs the LOCAL model, not CONGEST.  The implementation reports
   the largest message it would send (``max_message_bits``), which grows as
   Θ(Δ · log n) instead of O(log n).
2. **Computation** — every node locally solves a maximum-clique instance on
   its distance-2 ball, which is NP-hard in general; the implementation
   reports how many maximal cliques each node had to enumerate
   (``cliques_enumerated``), which explodes on dense balls.

The function is still *correct* (it outputs genuine cliques), so experiment
E10 can use it as a quality reference on small graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

import networkx as nx

from repro.congest.message import id_bits_for


@dataclass
class NeighborsNeighborsResult:
    """Outcome of the neighbours'-neighbours algorithm."""

    labels: Dict[int, Optional[int]] = field(default_factory=dict)
    cliques: List[FrozenSet[int]] = field(default_factory=list)
    #: Size in bits of the largest "here are my neighbours" message.
    max_message_bits: int = 0
    #: Total number of maximal cliques enumerated across all nodes — the
    #: local-computation cost the paper calls "notoriously hard".
    cliques_enumerated: int = 0
    rounds: int = 1

    def largest_clique(self) -> FrozenSet[int]:
        if not self.cliques:
            return frozenset()
        return max(self.cliques, key=lambda c: (len(c), sorted(c)))


def neighbors_neighbors(graph: nx.Graph) -> NeighborsNeighborsResult:
    """Run the neighbours'-neighbours algorithm (LOCAL model, 1 round).

    Every node receives its neighbours' adjacency lists (one round of
    unbounded messages), finds the maximum clique within its distance-2 view
    that contains itself, and adopts it as its candidate.  Candidates are
    then reconciled exactly as the paper sketches: a candidate survives only
    if it does not intersect a larger candidate (ties broken towards the
    candidate containing the smaller minimum identifier), and surviving
    cliques label their members.
    """
    n = graph.number_of_nodes()
    id_bits = id_bits_for(max(2, n))
    result = NeighborsNeighborsResult()

    # Communication cost of the single round: node v sends its adjacency list
    # to every neighbour; the message size is deg(v) identifiers.
    result.max_message_bits = max(
        (graph.degree(v) * id_bits for v in graph.nodes()), default=0
    )

    # Local computation: the maximum clique containing v inside its
    # distance-2 ball.
    best_clique_of: Dict[int, FrozenSet[int]] = {}
    for v in graph.nodes():
        ball = {v} | set(graph[v])
        for u in list(graph[v]):
            ball |= set(graph[u])
        view = graph.subgraph(ball)
        best: Tuple[int, Tuple[int, ...]] = (0, ())
        for clique in nx.find_cliques(view):
            result.cliques_enumerated += 1
            if v not in clique:
                continue
            key = (len(clique), tuple(sorted(clique)))
            if key[0] > best[0] or (key[0] == best[0] and key[1] < best[1]):
                best = key
        best_clique_of[v] = frozenset(best[1])

    # Conflict resolution: distinct candidates, larger first, smaller minimum
    # identifier as the tie breaker; greedily keep non-overlapping ones.
    distinct = sorted(
        {clique for clique in best_clique_of.values() if clique},
        key=lambda c: (-len(c), min(c)),
    )
    taken: set = set()
    survivors: List[FrozenSet[int]] = []
    for clique in distinct:
        if clique & taken:
            continue
        survivors.append(clique)
        taken |= clique

    labels: Dict[int, Optional[int]] = {v: None for v in graph.nodes()}
    for clique in survivors:
        leader = min(clique)
        for member in clique:
            labels[member] = leader

    result.labels = labels
    result.cliques = survivors
    return result
