"""Centralized dense-subgraph comparators from the related-work section.

The paper situates ``DistNearClique`` against the centralized literature:
the Dense-k-Subgraph problem of Feige, Kortsarz and Peleg [7, 8], the
quasi-clique heuristic of Abello, Resende and Sudarsky [1], and the classic
densest-subgraph objective.  Experiment E10 runs these comparators on the
same planted-near-clique workloads.

Objectives differ subtly and matter for interpreting E10:

* :func:`charikar_peeling` maximises *average degree* |E(S)| / |S| — a
  densest subgraph is usually much larger and sparser (as a near-clique)
  than the planted set;
* :func:`greedy_dense_k_subgraph` maximises edges under a hard cardinality
  constraint k, the DkS objective;
* :func:`quasi_clique_local_search` looks directly for a large γ-quasi-clique
  (our ε-near clique with ε = 1 − γ), the objective closest to the paper's;
* :func:`peel_to_near_clique` is the natural greedy the paper's Definition 1
  suggests: repeatedly drop the vertex with the fewest internal neighbours
  until the remaining set is an ε-near clique.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.core import near_clique


def _internal_degrees(adjacency, members: Set[int]) -> Dict[int, int]:
    return {v: len(adjacency[v] & members) for v in members}


def charikar_peeling(graph: nx.Graph) -> Tuple[FrozenSet[int], float]:
    """Greedy peeling 2-approximation for the densest-subgraph problem.

    Repeatedly removes a minimum-degree vertex and remembers the prefix with
    the best average degree |E(S)|/|S|.  Returns the best set and its average
    degree.
    """
    if graph.number_of_nodes() == 0:
        return frozenset(), 0.0
    adjacency = {v: set(graph[v]) for v in graph.nodes()}
    members: Set[int] = set(graph.nodes())
    edges = graph.number_of_edges()

    best_set = frozenset(members)
    best_score = edges / float(len(members))
    degrees = {v: len(adjacency[v]) for v in members}

    while len(members) > 1:
        victim = min(members, key=lambda v: (degrees[v], v))
        members.discard(victim)
        edges -= degrees[victim]
        for neighbor in adjacency[victim]:
            if neighbor in members:
                degrees[neighbor] -= 1
                adjacency[neighbor].discard(victim)
        score = edges / float(len(members))
        if score > best_score:
            best_score = score
            best_set = frozenset(members)
    return best_set, best_score


def greedy_dense_k_subgraph(graph: nx.Graph, k: int) -> FrozenSet[int]:
    """Greedy heuristic for Dense-k-Subgraph.

    Seeds the set with the endpoints of a maximum-degree edge, then
    repeatedly adds the outside vertex with the most neighbours inside until
    the set has k members.  (This is the standard greedy that achieves the
    trivial n/k-type guarantee; the sophisticated O(n^δ)-approximation of
    Feige-Kortsarz-Peleg is not needed for the shape comparison in E10.)
    """
    if k <= 0:
        return frozenset()
    nodes = list(graph.nodes())
    if not nodes:
        return frozenset()
    if k >= len(nodes):
        return frozenset(nodes)
    adjacency = near_clique.adjacency_sets(graph)

    if graph.number_of_edges() > 0:
        seed_edge = max(
            graph.edges(),
            key=lambda e: (len(adjacency[e[0]]) + len(adjacency[e[1]]), e),
        )
        members: Set[int] = {seed_edge[0], seed_edge[1]}
    else:
        members = {max(nodes, key=lambda v: (len(adjacency[v]), -v))}

    while len(members) < k:
        outside = [v for v in nodes if v not in members]
        best = max(outside, key=lambda v: (len(adjacency[v] & members), -v))
        members.add(best)
    return frozenset(members)


def peel_to_near_clique(
    graph: nx.Graph, epsilon: float, start: Optional[Iterable[int]] = None
) -> FrozenSet[int]:
    """Peel minimum-internal-degree vertices until an ε-near clique remains.

    Starting from *start* (the whole graph by default), repeatedly removes
    the member with the fewest internal neighbours as long as the current set
    is not an ε-near clique.  Always terminates (singletons are 0-near
    cliques) and returns the first ε-near clique reached — a natural greedy
    upper-envelope for the "how large an ε-near clique can we find"
    question.
    """
    adjacency = near_clique.adjacency_sets(graph)
    members: Set[int] = set(graph.nodes()) if start is None else set(start)
    while len(members) > 1:
        if near_clique.is_near_clique(adjacency, members, epsilon):
            break
        degrees = _internal_degrees(adjacency, members)
        victim = min(members, key=lambda v: (degrees[v], v))
        members.discard(victim)
    return frozenset(members)


def quasi_clique_local_search(
    graph: nx.Graph,
    epsilon: float,
    seed: Optional[int] = None,
    restarts: int = 8,
) -> FrozenSet[int]:
    """Abello-style GRASP heuristic for large ε-near cliques (quasi-cliques).

    Each restart grows a set greedily from a random high-degree seed vertex —
    adding the outside vertex that keeps the density above ``1 − ε`` and has
    the most internal neighbours — followed by a local-search phase that
    tries swap moves (drop the weakest member, add a better outsider).  The
    best set over all restarts is returned.
    """
    if graph.number_of_nodes() == 0:
        return frozenset()
    rng = random.Random(seed)
    adjacency = near_clique.adjacency_sets(graph)
    nodes = sorted(graph.nodes(), key=lambda v: -len(adjacency[v]))
    pool = nodes[: max(1, len(nodes) // 3)]

    def grow(seed_vertex: int) -> Set[int]:
        members: Set[int] = {seed_vertex}
        while True:
            frontier = set()
            for member in members:
                frontier |= adjacency[member]
            frontier -= members
            best_vertex = None
            best_key: Tuple[int, int] = (-1, 0)
            for candidate in frontier:
                inside = len(adjacency[candidate] & members)
                key = (inside, -candidate)
                if key > best_key:
                    best_key = key
                    best_vertex = candidate
            if best_vertex is None:
                return members
            trial = members | {best_vertex}
            if near_clique.is_near_clique(adjacency, trial, epsilon):
                members = trial
            else:
                return members

    def local_search(members: Set[int]) -> Set[int]:
        improved = True
        while improved and len(members) > 1:
            improved = False
            degrees = _internal_degrees(adjacency, members)
            weakest = min(members, key=lambda v: (degrees[v], v))
            without = members - {weakest}
            frontier = set()
            for member in without:
                frontier |= adjacency[member]
            frontier -= members
            additions = []
            for candidate in frontier:
                trial = without | {candidate}
                if near_clique.is_near_clique(adjacency, trial, epsilon):
                    additions.append(candidate)
            if len(additions) >= 2:
                additions.sort(key=lambda v: -len(adjacency[v] & without))
                grown = without | {additions[0], additions[1]}
                if near_clique.is_near_clique(adjacency, grown, epsilon):
                    members = grown
                    improved = True
        return members

    best: Set[int] = set()
    for _ in range(max(1, restarts)):
        seed_vertex = rng.choice(pool)
        candidate = local_search(grow(seed_vertex))
        if len(candidate) > len(best):
            best = candidate
    return frozenset(best)
