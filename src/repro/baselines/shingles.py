"""The shingles baseline (Section 3 of the paper).

Based on the idea of shingles (Broder et al.), each node picks a random
value from a space large enough that collisions are negligible, sends it to
its neighbours, and adopts as its *label* the smallest value seen in its
closed neighbourhood.  All nodes with the same label form a *candidate set*;
each candidate set measures its own size and density (every member is, by
construction, within one hop of the label's namesake node, so the
measurement is a single convergence step); sets that are too small or too
sparse are discarded.

Claim 1 of the paper exhibits an explicit graph family (Figure 1, generated
by :func:`repro.graphs.generators.shingles_counterexample`) on which this
heuristic can never output an ε-near clique of size (1 − ε)δn, for any
ε < min{(1 − δ)/(1 + δ), 1/9} — even though a clique of size δn is present.
Experiment E4 reproduces that failure and contrasts it with
``DistNearClique``.

Two implementations are provided:

* :func:`shingles_run` — a fast centralized simulation (identical outcome
  distribution), used for large sweeps and for the deterministic case
  analysis of Claim 1 (the caller can fix the shingle values);
* :class:`ShinglesProtocol` — a CONGEST protocol (4 communication rounds,
  O(log n)-bit messages) for apples-to-apples metric comparisons with
  ``DistNearClique``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

import networkx as nx

from repro.congest.message import Inbound, Message, id_bits_for, KIND_TAG_BITS
from repro.congest.node import NodeContext, Protocol
from repro.core import near_clique

#: Size of the random shingle space; 2^48 makes collisions negligible for
#: every n used in the experiments while keeping shingles O(log n) bits.
SHINGLE_SPACE_BITS = 48


@dataclass(frozen=True)
class ShinglesCandidate:
    """One candidate set produced by the shingles heuristic."""

    label_owner: int
    members: FrozenSet[int]
    density: float

    @property
    def size(self) -> int:
        return len(self.members)

    def qualifies(self, min_size: int, epsilon: float) -> bool:
        """Does the candidate meet the size and density thresholds?"""
        return self.size >= min_size and self.density >= 1.0 - epsilon - 1e-9


@dataclass
class ShinglesResult:
    """Outcome of one run of the shingles heuristic."""

    candidates: List[ShinglesCandidate] = field(default_factory=list)
    labels: Dict[int, int] = field(default_factory=dict)
    shingles: Dict[int, int] = field(default_factory=dict)

    def best_candidate(self) -> Optional[ShinglesCandidate]:
        """The surviving-conflict winner: largest set, ties to smaller label."""
        if not self.candidates:
            return None
        return max(self.candidates, key=lambda c: (c.size, -c.label_owner))

    def best_qualifying(
        self, min_size: int, epsilon: float
    ) -> Optional[ShinglesCandidate]:
        """The best candidate that clears the size and density thresholds."""
        qualifying = [c for c in self.candidates if c.qualifies(min_size, epsilon)]
        if not qualifying:
            return None
        return max(qualifying, key=lambda c: (c.size, -c.label_owner))

    def achieves(self, epsilon: float, min_size: int) -> bool:
        """Claim 1's success criterion: some candidate is an ε-near clique
        with at least *min_size* members."""
        return self.best_qualifying(min_size, epsilon) is not None


def shingles_run(
    graph: nx.Graph,
    rng: Optional[random.Random] = None,
    shingles: Optional[Dict[int, int]] = None,
) -> ShinglesResult:
    """Centralized simulation of the shingles heuristic.

    Parameters
    ----------
    graph:
        The communication graph.
    rng:
        Randomness source for drawing shingle values (ignored when explicit
        *shingles* are supplied).
    shingles:
        Optional explicit shingle values per node.  The Claim 1 case analysis
        uses this to place the global minimum in each of the four blocks of
        the Figure 1 construction deterministically.
    """
    rng = rng or random.Random()
    if shingles is None:
        shingles = {
            node: rng.getrandbits(SHINGLE_SPACE_BITS) for node in graph.nodes()
        }
    else:
        shingles = dict(shingles)
        if len(set(shingles.values())) != len(shingles):
            raise ValueError("shingle values must be distinct")

    labels: Dict[int, int] = {}
    for node in graph.nodes():
        closed = [node] + list(graph[node])
        labels[node] = min(closed, key=lambda v: shingles[v])

    adjacency = near_clique.adjacency_sets(graph)
    groups: Dict[int, set] = {}
    for node, owner in labels.items():
        groups.setdefault(owner, set()).add(node)

    candidates = [
        ShinglesCandidate(
            label_owner=owner,
            members=frozenset(members),
            density=near_clique.density(adjacency, members),
        )
        for owner, members in groups.items()
    ]
    candidates.sort(key=lambda c: (-c.size, c.label_owner))
    return ShinglesResult(candidates=candidates, labels=labels, shingles=shingles)


# ---------------------------------------------------------------------------
# CONGEST implementation
# ---------------------------------------------------------------------------
_SHINGLE = "sh.value"
_LABEL = "sh.label"
_REPORT = "sh.report"
_DECISION = "sh.decision"

KEY_SHINGLE = "sh_shingle"
KEY_LABEL = "sh_label"
KEY_IN_SET_DEGREE = "sh_in_set_degree"
KEY_DECISION = "sh_decision"

GLOBAL_MIN_SIZE = "shingles_min_size"
GLOBAL_EPSILON = "shingles_epsilon"


class ShinglesProtocol(Protocol):
    """The shingles heuristic as a 4-round CONGEST protocol.

    Round 1: exchange shingle values; adopt the minimum of the closed
    neighbourhood as label.  Round 2: exchange labels; count same-label
    neighbours.  Round 3: report the in-set degree to the label's namesake
    (always within one hop).  Round 4: the namesake computes the set's
    density, applies the size/density thresholds, and announces the verdict;
    members of accepted sets output the label, everyone else outputs ⊥.
    """

    name = "shingles"
    quiesce_terminates = True

    def on_start(self, ctx: NodeContext) -> None:
        shingle = ctx.rng.getrandbits(SHINGLE_SPACE_BITS)
        ctx.state[KEY_SHINGLE] = shingle
        ctx.state["_sh_seen"] = {ctx.node_id: shingle}
        ctx.state["_sh_reports"] = {}
        ctx.state["_sh_same_label"] = 0
        ctx.write_output(None)
        ctx.send_all(
            Message(
                kind=_SHINGLE,
                payload=(shingle,),
                bits=KIND_TAG_BITS + SHINGLE_SPACE_BITS,
            )
        )

    def on_round(self, ctx: NodeContext, inbox: List[Inbound]) -> None:
        round_index = ctx.round_index
        if round_index == 1:
            seen: Dict[int, int] = ctx.state["_sh_seen"]
            for inbound in inbox:
                if inbound.kind == _SHINGLE:
                    seen[inbound.sender] = inbound.payload[0]
            owner = min(seen, key=lambda node: seen[node])
            ctx.state[KEY_LABEL] = owner
            ctx.send_all(
                Message(
                    kind=_LABEL,
                    payload=(owner,),
                    bits=KIND_TAG_BITS + id_bits_for(ctx.n),
                )
            )
        elif round_index == 2:
            label = ctx.state[KEY_LABEL]
            same = 0
            for inbound in inbox:
                if inbound.kind == _LABEL and inbound.payload[0] == label:
                    same += 1
            ctx.state[KEY_IN_SET_DEGREE] = same
            report = Message(
                kind=_REPORT,
                payload=(same,),
                bits=KIND_TAG_BITS + id_bits_for(ctx.n),
            )
            if label == ctx.node_id:
                ctx.state["_sh_reports"][ctx.node_id] = same
            else:
                ctx.send(label, report)
        elif round_index == 3:
            reports: Dict[int, int] = ctx.state["_sh_reports"]
            for inbound in inbox:
                if inbound.kind == _REPORT:
                    reports[inbound.sender] = inbound.payload[0]
            if reports:
                # This node is the namesake of a candidate set (it may or may
                # not be a member of that set itself).
                size = len(reports)
                internal = sum(reports.values())
                density = 1.0 if size <= 1 else internal / float(size * (size - 1))
                min_size = int(ctx.globals.get(GLOBAL_MIN_SIZE, 0))
                epsilon = float(ctx.globals.get(GLOBAL_EPSILON, 0.0))
                accepted = size >= min_size and density >= 1.0 - epsilon - 1e-9
                ctx.state[KEY_DECISION] = (accepted, density, size)
                if accepted and ctx.state[KEY_LABEL] == ctx.node_id:
                    ctx.write_output(ctx.node_id)
                verdict = Message(
                    kind=_DECISION,
                    payload=(1 if accepted else 0,),
                    bits=KIND_TAG_BITS + 1,
                )
                for member in reports:
                    if member != ctx.node_id:
                        ctx.send(member, verdict)
        elif round_index == 4:
            for inbound in inbox:
                if inbound.kind == _DECISION and inbound.payload[0]:
                    if inbound.sender == ctx.state[KEY_LABEL]:
                        ctx.write_output(ctx.state[KEY_LABEL])
            ctx.halt()
        else:  # pragma: no cover - the protocol is silent after round 4
            ctx.halt()

    def finished(self, ctx: NodeContext) -> bool:
        return ctx.halted or ctx.round_index > 4
