"""Baseline algorithms the paper discusses or compares against.

Section 3 of the paper analyses two "simple approaches" and shows why they
fail; the related-work section points at the centralized dense-subgraph
literature.  All of them are implemented here so that the experiments can
reproduce the comparisons:

* :mod:`repro.baselines.shingles` — the shingles heuristic (random minimum
  labels), both as a CONGEST protocol and as a fast centralized simulation;
  Claim 1 / Figure 1 show it fails on an explicit graph family (experiment
  E4).
* :mod:`repro.baselines.neighbors` — the neighbours'-neighbours algorithm:
  correct, but needs LOCAL-model messages (all identifiers in one message)
  and locally solves maximum clique; the experiments measure exactly those
  two costs.
* :mod:`repro.baselines.centralized` — centralized comparators: Charikar's
  greedy peeling for densest subgraph, a greedy Dense-k-Subgraph heuristic,
  an Abello-style quasi-clique local search, and peeling to an ε-near clique
  (experiment E10).
"""

from repro.baselines.centralized import (
    charikar_peeling,
    greedy_dense_k_subgraph,
    peel_to_near_clique,
    quasi_clique_local_search,
)
from repro.baselines.neighbors import NeighborsNeighborsResult, neighbors_neighbors
from repro.baselines.shingles import (
    ShinglesCandidate,
    ShinglesProtocol,
    ShinglesResult,
    shingles_run,
)

__all__ = [
    "shingles_run",
    "ShinglesResult",
    "ShinglesCandidate",
    "ShinglesProtocol",
    "neighbors_neighbors",
    "NeighborsNeighborsResult",
    "charikar_peeling",
    "greedy_dense_k_subgraph",
    "quasi_clique_local_search",
    "peel_to_near_clique",
]
