"""Command-line interface for the near-clique reproduction.

Three subcommands cover the common workflows without writing any Python:

``repro-nearclique find``
    Generate (or load) a workload and run the distributed / boosted /
    centralized near-clique finder on it, printing the discovered clusters
    and the CONGEST metrics.

``repro-nearclique generate``
    Write one of the paper's workload families to an edge-list file
    (planted near-clique, Figure 1 counterexample, path-of-cliques).

``repro-nearclique verify``
    Check whether a given set of nodes is an ε-near clique of a saved graph
    (Definition 1), printing the density certificate.

``repro-nearclique serve``
    Start the long-lived query daemon of :mod:`repro.service`: one request
    per line on stdin (JSON: ``query`` / ``delta`` / ``stats`` /
    ``shutdown``), one JSON response per line on stdout.  Topology deltas
    stream in while the daemon holds one persistent execution session;
    queries after small deltas are answered incrementally (dirty region
    only) yet bit-identical to a fresh full run.

``repro-nearclique lint``
    Run the static protocol-contract analyzer (:mod:`repro.lint`) over a
    source tree: every :class:`~repro.congest.node.Protocol` subclass is
    checked against the engine stack's determinism / pickling /
    wire-vocabulary / bit-budget / hook-discipline invariants before any
    runtime ever executes it.  Also available as ``python -m repro.lint``.

The CLI is intentionally thin: every flag maps one-to-one onto a public API
parameter, so scripts can graduate to the library without translation.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional, Sequence

from repro.analysis import tables
from repro.congest.config import (
    PIPELINE_MODES,
    SESSION_MODES,
    CongestConfig,
    RetryPolicy,
)
from repro.congest.engine import available_engines
from repro.congest.sharding import SHARD_BACKENDS
from repro.core import near_clique
from repro.core.boosting import BoostedNearCliqueRunner
from repro.core.dist_near_clique import DistNearCliqueRunner
from repro.core.reference import CentralizedNearCliqueFinder
from repro.core.params import AlgorithmParameters
from repro.graphs import generators, io
from repro.lint import cli as lint_cli


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be at least 1, got %s" % text)
    return value


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be non-negative, got %s" % text)
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError("must be positive, got %s" % text)
    return value


def _add_congest_arguments(parser: argparse.ArgumentParser) -> None:
    """The CONGEST engine-selection flags shared by ``find`` and ``serve``."""
    parser.add_argument(
        "--congest-engine",
        choices=available_engines(),
        default=CongestConfig().engine,
        help="CONGEST execution engine "
        "(bit-identical results; 'batched' is the fast path and the default, "
        "'reference' the semantics oracle, 'async' runs over asynchronous "
        "links behind an alpha synchronizer, 'sharded' steps graph "
        "partitions in parallel — see --shards/--shard-workers, "
        "'vectorized' runs kernel-covered phases as whole-phase numpy "
        "array operations and falls back to batched elsewhere)",
    )
    parser.add_argument(
        "--shards",
        type=_positive_int,
        default=CongestConfig().shards,
        help="shard count for --congest-engine sharded",
    )
    parser.add_argument(
        "--shard-workers",
        type=_nonnegative_int,
        default=CongestConfig().shard_workers,
        help="thread-pool width for the sharded engine's thread backend "
        "(0 or 1 = serial deterministic mode)",
    )
    parser.add_argument(
        "--shard-backend",
        choices=SHARD_BACKENDS,
        default=CongestConfig().shard_backend,
        help="execution backend for --congest-engine sharded: 'thread' "
        "(in-process; serial when --shard-workers <= 1), 'serial' (force "
        "the deterministic mode), or 'process' (one worker process per "
        "shard — true multi-core, boundary traffic in a packed wire "
        "format)",
    )
    parser.add_argument(
        "--session-mode",
        choices=SESSION_MODES,
        default=CongestConfig().session_mode,
        help="execution-session lifetime across the CONGEST phases: "
        "'per-call' (self-contained executes, the default) or "
        "'persistent' (the sharded process backend keeps one worker pool "
        "and one shared-memory CSR mapping alive across all phases, "
        "re-armed between them; bit-identical results, amortised setup — "
        "session totals are added to the run summary)",
    )
    parser.add_argument(
        "--pipeline-mode",
        choices=PIPELINE_MODES,
        default=CongestConfig().pipeline_mode,
        help="phase-graph pipeline compiler mode: 'off' (per-phase "
        "execution, the default) or 'fuse' (adjacent declared phases run "
        "as one fused group — one worker re-arm and one context fold-back "
        "per group on the persistent process backend; bit-identical "
        "outputs, rounds and per-phase metrics either way)",
    )
    parser.add_argument(
        "--round-timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="barrier-watchdog deadline for the sharded process backend: a "
        "worker that misses a per-round barrier by this many seconds is "
        "declared hung and the phase fails fast with a typed timeout "
        "instead of blocking forever (default: no deadline)",
    )
    parser.add_argument(
        "--retry-attempts",
        type=_nonnegative_int,
        default=0,
        help="supervised-retry budget for shard-worker failures: replay "
        "the failing phase on a fresh pool up to this many times, then "
        "degrade to the serial sharded backend (bit-identical either "
        "way); 0 disables supervision and failures propagate (default)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-nearclique",
        description="Distributed discovery of large near-cliques (PODC 2009 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    find = sub.add_parser("find", help="run the near-clique finder on a workload")
    find.add_argument("--graph", help="edge-list file written by 'generate' (default: generate a planted workload)")
    find.add_argument(
        "--graph-file",
        help="SNAP-style edge list (snap.stanford.edu corpus format: '#' "
        "comments, whitespace-separated pairs, duplicate edges and "
        "self-loops tolerated); nodes are relabelled to the dense range "
        "0..n-1.  Mutually exclusive with --graph.",
    )
    find.add_argument("--n", type=int, default=100, help="nodes of the generated workload")
    find.add_argument("--delta", type=float, default=0.5, help="planted near-clique fraction")
    find.add_argument("--epsilon", type=float, default=0.2, help="the algorithm's epsilon")
    find.add_argument("--background", type=float, default=0.05, help="background edge probability")
    find.add_argument(
        "--engine",
        choices=("distributed", "boosted", "centralized"),
        default="distributed",
        help="which finder to run (algorithm variant)",
    )
    _add_congest_arguments(find)
    find.add_argument("--expected-sample", type=float, default=8.0, help="target E[|S|] = p*n")
    find.add_argument("--max-sample", type=int, default=13, help="Section 4.1 abort threshold on |S|")
    find.add_argument("--repetitions", type=int, default=4, help="boosting repetitions (boosted engine)")
    find.add_argument("--min-output-size", type=int, default=0)
    find.add_argument("--seed", type=int, default=0)

    generate = sub.add_parser("generate", help="write a workload to an edge-list file")
    generate.add_argument("output", help="output path (.edges)")
    generate.add_argument(
        "--family",
        choices=("planted", "figure1", "path-of-cliques", "web"),
        default="planted",
    )
    generate.add_argument("--n", type=int, default=100)
    generate.add_argument("--delta", type=float, default=0.5)
    generate.add_argument("--epsilon", type=float, default=0.008, help="planted defect (planted family)")
    generate.add_argument("--background", type=float, default=0.05)
    generate.add_argument("--seed", type=int, default=0)

    verify = sub.add_parser("verify", help="check Definition 1 for a node set")
    verify.add_argument("graph", help="edge-list file")
    verify.add_argument("--epsilon", type=float, required=True)
    verify.add_argument(
        "--nodes",
        help="comma-separated node ids; default: the planted set recorded in the file",
    )

    serve = sub.add_parser(
        "serve",
        help="long-lived query daemon: JSONL requests on stdin, responses on stdout",
    )
    serve.add_argument(
        "--graph",
        help="edge-list file written by 'generate' (default: generate a planted workload)",
    )
    serve.add_argument(
        "--graph-file",
        help="SNAP-style edge list (snap.stanford.edu corpus format); "
        "nodes are relabelled to the dense range 0..n-1.  Mutually "
        "exclusive with --graph.",
    )
    serve.add_argument("--n", type=int, default=100, help="nodes of the generated workload")
    serve.add_argument("--delta", type=float, default=0.5, help="planted near-clique fraction")
    serve.add_argument("--epsilon", type=float, default=0.2, help="the algorithm's epsilon")
    serve.add_argument("--background", type=float, default=0.05, help="background edge probability")
    _add_congest_arguments(serve)
    serve.add_argument("--expected-sample", type=float, default=8.0, help="target E[|S|] = p*n")
    serve.add_argument("--max-sample", type=int, default=13, help="Section 4.1 abort threshold on |S|")
    serve.add_argument("--min-output-size", type=int, default=0)
    serve.add_argument("--seed", type=int, default=0, help="workload-generation seed")

    lint = sub.add_parser(
        "lint",
        help="static protocol-contract analyzer (pre-runtime engine invariants)",
    )
    lint_cli.configure_parser(lint)
    return parser


def _retry_policy_from_args(args) -> Optional[RetryPolicy]:
    """``--retry-attempts 0`` (the default) means unsupervised: no policy."""
    if not args.retry_attempts:
        return None
    return RetryPolicy(max_attempts=args.retry_attempts)


def _load_or_generate(args) -> tuple:
    graph_file = getattr(args, "graph_file", None)
    if args.graph and graph_file:
        raise SystemExit("--graph and --graph-file are mutually exclusive")
    if graph_file:
        # Real-world corpus input: no planted ground truth to score against.
        return io.load_snap_edgelist(graph_file, relabel=True), None
    if args.graph:
        graph, planted = io.read_edge_list(args.graph)
        return graph, planted
    graph, planted = generators.planted_near_clique(
        n=args.n,
        clique_fraction=args.delta,
        epsilon=args.epsilon ** 3,
        background_p=args.background,
        seed=args.seed,
    )
    return graph, planted.members


def _cmd_find(args) -> int:
    graph, planted = _load_or_generate(args)
    n = graph.number_of_nodes()
    probability = min(1.0, args.expected_sample / max(1, n))
    rng = random.Random(args.seed)
    parameters = AlgorithmParameters(
        epsilon=args.epsilon,
        sample_probability=probability,
        max_sample_size=args.max_sample,
        min_output_size=args.min_output_size,
    )
    congest_config = CongestConfig(
        engine=args.congest_engine,
        shards=args.shards,
        shard_workers=args.shard_workers,
        shard_backend=args.shard_backend,
        session_mode=args.session_mode,
        pipeline_mode=args.pipeline_mode,
        round_timeout=args.round_timeout,
        retry_policy=_retry_policy_from_args(args),
    ).with_log_budget(max(2, n))
    session_stats = []
    if args.engine == "distributed":
        runner = DistNearCliqueRunner(
            parameters=parameters, rng=rng, config=congest_config
        )
        result = runner.run(graph)
        if runner.last_session_stats is not None:
            session_stats.append(runner.last_session_stats)
    elif args.engine == "boosted":
        boosted = BoostedNearCliqueRunner(
            parameters=parameters,
            repetitions=args.repetitions,
            rng=rng,
            congest_config=congest_config,
        )
        result = boosted.run(graph)
        session_stats.extend(
            stats for stats in boosted.session_stats_by_version if stats is not None
        )
    else:
        result = CentralizedNearCliqueFinder(
            graph, args.epsilon, min_output_size=args.min_output_size
        ).run(parameters, rng=rng)

    if result.aborted:
        print("Run aborted:", result.abort_reason)
        return 1

    rows = []
    for label, members in sorted(result.clusters.items(), key=lambda kv: -len(kv[1])):
        rows.append(
            [label, len(members), near_clique.density(graph, members)]
        )
    if not rows:
        rows.append(["(none)", 0, 0.0])
    tables.print_table(["label", "size", "density"], rows, title="Discovered near-cliques")

    summary = [
        ["nodes", n],
        ["sample size", len(result.sample)],
        ["largest cluster", len(result.largest_cluster())],
    ]
    if planted:
        summary.append(["recall of planted set", result.recall_of(planted)])
    if result.metrics is not None:
        summary.extend(
            [
                ["rounds", result.metrics.rounds],
                ["total messages", result.metrics.total_messages],
                ["max message bits", result.metrics.max_message_bits],
            ]
        )
        if result.metrics.control_messages:
            summary.append(
                ["synchronizer control messages", result.metrics.control_messages]
            )
    tables.print_table(["measure", "value"], summary, title="Run summary")
    _print_session_report(session_stats)
    return 0


def _print_session_report(session_stats) -> None:
    """Session totals across the sessions a finder opened (persistent mode).

    One row set aggregated over all sessions (the boosted finder opens one
    per version): phases executed, per-phase setup seconds, packed boundary
    traffic and the shared-memory mapping size.
    """
    session_stats = [stats for stats in session_stats if stats and stats.phases]
    if not session_stats:
        return
    phases = sum(len(stats.phases) for stats in session_stats)
    setup = sum(stats.setup_seconds for stats in session_stats)
    boundary = sum(stats.boundary_bytes for stats in session_stats)
    barriers = sum(stats.barrier_rounds for stats in session_stats)
    messages = sum(stats.protocol_messages for stats in session_stats)
    cross = sum(stats.cross_shard_messages for stats in session_stats)
    rows = [
        ["sessions", len(session_stats)],
        ["phases executed", phases],
        ["setup seconds (total)", round(setup, 4)],
        ["setup seconds / phase", round(setup / max(1, phases), 4)],
        ["boundary bytes", boundary],
        ["barrier rounds", barriers],
        ["bytes / barrier round", round(boundary / max(1, barriers), 1)],
        ["cross-shard msg fraction", round(cross / max(1, messages), 3)],
        ["shm bytes mapped", sum(stats.shm_bytes for stats in session_stats)],
    ]
    rearms = sum(getattr(stats, "rearms", 0) for stats in session_stats)
    fused = sum(getattr(stats, "fused_phases", 0) for stats in session_stats)
    if rearms:
        rows.append(["pool re-arms", rearms])
    if fused:
        rows.append(["re-arms elided by fusion", fused])
    failures = sum(stats.worker_failures for stats in session_stats)
    if failures:
        rows.extend(
            [
                ["worker failures", failures],
                ["worker timeouts", sum(s.timeouts for s in session_stats)],
                ["phases retried", sum(s.retries for s in session_stats)],
                ["degradations", sum(s.degradations for s in session_stats)],
            ]
        )
    tables.print_table(
        ["measure", "value"], rows, title="Execution-session report"
    )


def _cmd_serve(args) -> int:
    # Imported here so the plain one-shot commands never pay for the
    # service layer (and so ``--help`` stays instant).
    from repro.service import NearCliqueDaemon, NearCliqueService

    graph, _planted = _load_or_generate(args)
    n = graph.number_of_nodes()
    probability = min(1.0, args.expected_sample / max(1, n))
    parameters = AlgorithmParameters(
        epsilon=args.epsilon,
        sample_probability=probability,
        max_sample_size=args.max_sample,
        min_output_size=args.min_output_size,
    )
    congest_config = CongestConfig(
        engine=args.congest_engine,
        shards=args.shards,
        shard_workers=args.shard_workers,
        shard_backend=args.shard_backend,
        session_mode=args.session_mode,
        pipeline_mode=args.pipeline_mode,
        round_timeout=args.round_timeout,
        retry_policy=_retry_policy_from_args(args),
    ).with_log_budget(max(2, n))
    service = NearCliqueService(graph, parameters, config=congest_config)
    print(
        "serving near-clique queries over %d nodes / %d edges "
        "(engine=%s); one JSON request per line on stdin"
        % (n, graph.number_of_edges(), congest_config.engine),
        file=sys.stderr,
    )
    daemon = NearCliqueDaemon(service)
    served = daemon.serve_forever()
    stats = service.stats
    print(
        "served %d requests: %d queries (%d full / %d incremental / %d cached), "
        "%d deltas, %d worker crashes survived"
        % (
            served,
            stats.queries,
            stats.full_queries,
            stats.incremental_queries,
            stats.cached_hits,
            stats.deltas,
            stats.worker_crashes,
        ),
        file=sys.stderr,
    )
    if stats.retries or stats.worker_timeouts or stats.degradations:
        print(
            "fault supervision: %d phases retried, %d worker timeouts, "
            "%d degradations to the serial backend"
            % (stats.retries, stats.worker_timeouts, stats.degradations),
            file=sys.stderr,
        )
    return 0


def _cmd_generate(args) -> int:
    if args.family == "planted":
        graph, planted = generators.planted_near_clique(
            n=args.n,
            clique_fraction=args.delta,
            epsilon=args.epsilon,
            background_p=args.background,
            seed=args.seed,
        )
        members = planted.members
    elif args.family == "figure1":
        graph, partition = generators.shingles_counterexample(n=args.n, delta=args.delta)
        members = partition["clique"]
    elif args.family == "path-of-cliques":
        graph, partition = generators.path_of_cliques(args.n)
        members = partition["A"]
    else:
        graph, communities = generators.web_community_graph(args.n, seed=args.seed)
        members = communities[0].members
    io.write_edge_list(
        graph,
        args.output,
        planted=members,
        comment="family: %s" % args.family,
    )
    print(
        "Wrote %s: %d nodes, %d edges, planted set of %d nodes"
        % (args.output, graph.number_of_nodes(), graph.number_of_edges(), len(members))
    )
    return 0


def _cmd_verify(args) -> int:
    graph, planted = io.read_edge_list(args.graph)
    if args.nodes:
        members = {int(part) for part in args.nodes.split(",") if part.strip()}
    elif planted is not None:
        members = set(planted)
    else:
        print("No node set given and the file records no planted set.", file=sys.stderr)
        return 2
    defect = near_clique.near_clique_defect(graph, members)
    verdict = near_clique.is_near_clique(graph, members, args.epsilon)
    tables.print_table(
        ["measure", "value"],
        [
            ["set size", len(members)],
            ["density", 1.0 - defect],
            ["defect", defect],
            ["epsilon", args.epsilon],
            ["is eps-near clique", verdict],
        ],
        title="Definition 1 certificate",
    )
    return 0 if verdict else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point (also exposed as the ``repro-nearclique`` console script)."""
    args = _build_parser().parse_args(argv)
    if args.command == "find":
        return _cmd_find(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "lint":
        return lint_cli.run_from_args(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
