"""The paper's primary contribution.

``repro.core`` contains everything specific to the near-clique discovery
problem:

* :mod:`repro.core.near_clique` — Definition 1 (ε-near clique via ordered
  pairs), the operators :math:`K_\\epsilon(X)` and :math:`T_\\epsilon(X)` of
  Eqs. (1)–(2), the core set :math:`C` of Lemma 5.4, representativeness from
  the proof of Lemma 5.6, and canonical subset indexing shared by the
  distributed and centralized implementations.
* :mod:`repro.core.params` — algorithm parameters and the sample probability
  recommended by Theorem 5.7.
* :mod:`repro.core.reference` — a centralized implementation of exactly the
  computation the distributed algorithm performs; it is the correctness
  oracle for the distributed runner.
* :mod:`repro.core.phases` / :mod:`repro.core.dist_near_clique` — the
  CONGEST-model implementation of Algorithm ``DistNearClique``.
* :mod:`repro.core.boosting` — the Section 4.1 wrapper that amplifies the
  success probability to :math:`1 - q`.
* :mod:`repro.core.result` — the result record shared by all runners.
"""

from repro.core.boosting import BoostedNearCliqueRunner
from repro.core.dist_near_clique import DistNearCliqueRunner
from repro.core.near_clique import (
    core_set,
    density,
    is_near_clique,
    is_representative,
    k_eps,
    near_clique_defect,
    t_eps,
)
from repro.core.params import AlgorithmParameters, recommended_sample_probability
from repro.core.reference import CentralizedNearCliqueFinder
from repro.core.result import CandidateSet, NearCliqueResult

__all__ = [
    "BoostedNearCliqueRunner",
    "DistNearCliqueRunner",
    "CentralizedNearCliqueFinder",
    "AlgorithmParameters",
    "recommended_sample_probability",
    "NearCliqueResult",
    "CandidateSet",
    "density",
    "near_clique_defect",
    "is_near_clique",
    "k_eps",
    "t_eps",
    "core_set",
    "is_representative",
]
