"""The distributed runner for Algorithm ``DistNearClique``.

:class:`DistNearCliqueRunner` executes the full algorithm of Section 4 on a
:class:`repro.congest.network.Network` built from the input graph: the
sampling stage, the exploration stage and the decision stage, as the sequence
of CONGEST phases defined in :mod:`repro.core.phases` (see that module's
table mapping phases to the paper's numbered steps).

The runner owns everything that is *not* part of the distributed computation
proper:

* building the network and seeding per-node randomness;
* the deterministic running-time guard of Section 4.1 (abort when the
  realised sample exceeds ``max_sample_size`` — the round and local-work cost
  of the exploration stage is exponential in |S|, Lemma 5.1);
* accounting (merging the per-phase round/message metrics);
* harvesting the per-node outputs into a :class:`NearCliqueResult`, including
  the per-component candidate sets used by the experiments.

Given the same sample, the runner's output labels are identical to those of
:class:`repro.core.reference.CentralizedNearCliqueFinder` — this equivalence
is asserted by the integration tests and is the algorithm's correctness
argument in executable form.
"""

from __future__ import annotations

import random
from contextlib import ExitStack
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple, Union

import networkx as nx

from repro.congest.config import CongestConfig
from repro.congest.engine import CongestSession, Engine, get_engine
from repro.congest.errors import RoundLimitExceeded
from repro.congest.metrics import RunMetrics
from repro.congest.network import Network
from repro.congest.node import Protocol
from repro.congest.pipeline import (
    ArtifactCache,
    CachedPrefix,
    PhaseEffects,
    PipelinePlan,
    compile_pipeline,
    restore_contexts,
    snapshot_contexts,
)
from repro.congest.scheduler import run_protocol
from repro.core import phases
from repro.core.params import AlgorithmParameters
from repro.core.result import CandidateSet, NearCliqueResult
from repro.core import near_clique
from repro.primitives.bfs_tree import (
    KEY_PARENT,
    KEY_PARTICIPANT,
    KEY_ROOT,
    MinIdBFSTreeProtocol,
    ParentNotificationProtocol,
)
from repro.primitives.broadcast import TreeBroadcastProtocol
from repro.primitives.convergecast import KEY_COLLECTED, ConvergecastCollectProtocol


class DistNearCliqueRunner:
    """Run ``DistNearClique`` on a graph and collect the result.

    Parameters
    ----------
    parameters:
        A fully-specified :class:`AlgorithmParameters`.  Alternatively pass
        ``epsilon`` and ``sample_probability`` (plus any other parameter
        field) as keyword arguments and the record is built for you.
    rng:
        Source of randomness for the per-node coins (sampling stage) and any
        optional estimation sampling.  Defaults to a fresh ``random.Random``.
    config:
        CONGEST simulator configuration.  By default the runner enforces the
        one-message-per-edge rule and a ``12·log₂ n``-bit message budget
        (checked, not just measured).
    engine:
        Execution-engine selector (``"reference"``, ``"batched"``,
        ``"async"`` or ``"sharded"``, see :mod:`repro.congest.engine`)
        applied on top of *config*, or an already-constructed
        :class:`repro.congest.engine.Engine` instance (how benchmarks pass
        a stats-collecting engine).  ``None`` keeps the configuration's
        engine (``"batched"`` by default).  All engines produce
        bit-identical outputs and protocol metrics, so this is an
        execution-model / throughput knob; under ``"async"`` every phase
        runs over asynchronous links behind an alpha synchronizer and the
        merged metrics additionally report the control-message overhead,
        and under ``"sharded"`` every phase steps ``config.shards`` graph
        partitions in parallel.

    The runner executes all of its phases inside **one execution session**
    (:meth:`repro.congest.engine.Engine.open_session`): with the default
    ``CongestConfig.session_mode == "per-call"`` that is a thin wrapper and
    nothing changes, while ``"persistent"`` lets the sharded engine's
    process backend keep one worker pool and one shared-memory CSR mapping
    across all ~14 phases instead of rebuilding them per phase (the E16
    benchmark gates the resulting speedup).  After :meth:`run` returns,
    :attr:`last_session_stats` holds the session's accounting (a
    :class:`repro.congest.sharding.ShardingStats` with per-phase partials
    for persistent sharded sessions, ``None`` otherwise).

    The exploration + decision stages are executed through the **pipeline
    compiler** (:mod:`repro.congest.pipeline`): the phase sequence's
    declared effects are validated once per runner and compiled into a
    :class:`~repro.congest.pipeline.PipelinePlan`.  With the default
    ``CongestConfig.pipeline_mode == "off"`` every phase is its own group
    and execution is exactly the historical per-phase loop; with
    ``"fuse"`` maximal runs of declared phases execute through one
    ``session.execute_fused`` call — one worker re-arm and one context
    fold-back per *group* on the persistent process backend, bit-identical
    outputs, rounds and per-phase metrics either way.  The compiled plan of
    the last :meth:`run` is exposed as :attr:`last_pipeline_plan`.

    Passing an :class:`~repro.congest.pipeline.ArtifactCache` as
    *artifact_cache* additionally caches the tree-building prefix (BFS
    tree + parent notification) keyed by the CSR fingerprint, the realised
    sample and the global inputs: a repeat run on the same network and
    sample replays the recorded context snapshot and per-phase metrics
    instead of rebuilding the tree.  The cache is skipped (and its
    ``skips`` counter bumped) on sessions whose worker-side state is
    authoritative between phases — the persistent process backend — where
    a parent-side restore would desync the pool.
    """

    #: Phases of :meth:`_phase_sequence` covered by the artifact cache: the
    #: BFS tree build and the parent notification, which depend only on the
    #: topology and the realised sample.
    _CACHE_PREFIX_LEN = 2

    #: Context keys written before the exploration stage starts (sampling
    #: outputs and forced-sample inputs) — the compiled plan's external
    #: inputs.
    _EXTERNAL_READS = frozenset(
        {KEY_PARTICIPANT, phases.KEY_IN_SAMPLE, phases.KEY_FORCED_SAMPLE}
    )

    def __init__(
        self,
        parameters: Optional[AlgorithmParameters] = None,
        *,
        epsilon: Optional[float] = None,
        sample_probability: Optional[float] = None,
        max_sample_size: Optional[int] = 18,
        min_output_size: int = 0,
        use_step4f_sampling: bool = False,
        step4f_sample_size: int = 32,
        rng: Optional[random.Random] = None,
        config: Optional[CongestConfig] = None,
        engine: Union[None, str, Engine] = None,
        artifact_cache: Optional[ArtifactCache] = None,
    ) -> None:
        if parameters is None:
            if epsilon is None or sample_probability is None:
                raise ValueError(
                    "provide either an AlgorithmParameters record or both "
                    "epsilon and sample_probability"
                )
            parameters = AlgorithmParameters(
                epsilon=epsilon,
                sample_probability=sample_probability,
                max_sample_size=max_sample_size,
                min_output_size=min_output_size,
                use_step4f_sampling=use_step4f_sampling,
                step4f_sample_size=step4f_sample_size,
            )
        self.parameters = parameters
        self.rng = rng or random.Random()
        self.config = config
        self.engine = engine
        self.artifact_cache = artifact_cache
        #: Accounting of the execution session the last :meth:`run` opened
        #: (``None`` for engines that collect none — every per-call session).
        self.last_session_stats = None
        #: The :class:`~repro.congest.pipeline.PipelinePlan` the last
        #: :meth:`run` executed (``None`` before the first run).
        self.last_pipeline_plan: Optional[PipelinePlan] = None
        #: Compiled plans memoised per (mode, cache-active) — the phase
        #: sequence is static, so validation and planning run once per
        #: runner, not once per run.
        self._plan_cache: Dict[Tuple[str, bool], Tuple[Tuple[Protocol, ...], PipelinePlan]] = {}

    # ------------------------------------------------------------------
    def run(
        self,
        graph: Optional[nx.Graph] = None,
        sample: Optional[Iterable[int]] = None,
        *,
        network: Optional[Network] = None,
        session: Optional["CongestSession"] = None,
    ) -> NearCliqueResult:
        """Execute the algorithm once.

        Parameters
        ----------
        graph:
            The communication graph.  Integer node labels are used as the
            O(log n)-bit identifiers; other labels are relabelled internally
            and translated back in the result.
        sample:
            Optional predetermined sample S (in the graph's original labels).
            When omitted — the normal mode — every node flips its own biased
            coin in the sampling phase.
        network:
            An already-built :class:`~repro.congest.network.Network` to run
            on instead of *graph* (exactly one of the two must be given).
            The runner then performs no seeding of its own — the network's
            RNG state as passed determines the per-node coins, which is how
            the service layer reproduces a fresh run on a long-lived
            network (``Network.reseed`` + inject).
        session:
            An open :class:`~repro.congest.engine.CongestSession` bound to
            *network* to run every phase through.  The runner does **not**
            close an injected session (the owner reuses it across queries);
            without one it opens and closes its own, as before.

        Returns
        -------
        NearCliqueResult
            Labels, candidate sets, the realised sample, and the merged
            round/message metrics of the whole execution.
        """
        params = self.parameters
        if network is None:
            if graph is None:
                raise ValueError("provide a graph or an already-built network")
            network = Network(graph, seed=self.rng.getrandbits(48))
        elif graph is not None:
            raise ValueError("provide either graph or network, not both")
        if session is not None and session.network is not network:
            raise ValueError(
                "the injected session is bound to a different network"
            )
        config = self.config or CongestConfig().with_log_budget(network.n)
        if isinstance(self.engine, Engine):
            engine_obj = self.engine
        else:
            if self.engine is not None:
                config = config.with_engine(self.engine)
            engine_obj = get_engine(config.engine)

        global_inputs = {
            phases.GLOBAL_EPSILON: params.epsilon,
            phases.GLOBAL_SAMPLE_PROBABILITY: params.sample_probability,
            phases.GLOBAL_MIN_OUTPUT_SIZE: params.min_output_size,
            phases.GLOBAL_STEP4F_SAMPLING: params.use_step4f_sampling,
            phases.GLOBAL_STEP4F_SAMPLE_SIZE: params.step4f_sample_size,
        }
        per_node_inputs = None
        if sample is not None:
            sample_ids = {network.id_of[label] for label in sample}
            per_node_inputs = {
                node_id: {phases.KEY_FORCED_SAMPLE: node_id in sample_ids}
                for node_id in network.node_ids
            }

        metrics = RunMetrics()
        self.last_session_stats = None

        # One session spans every phase: with the default per-call mode it
        # is a thin wrapper; in persistent mode the process backend's pool
        # and shared-memory CSR mapping are built once and re-armed per
        # phase instead of respawned ~14 times.  An injected session is
        # used as-is and stays open for its owner; only a self-opened one
        # is closed here (on every exit path, via the stack).
        stack = ExitStack()
        if session is None:
            session = stack.enter_context(engine_obj.open_session(network, config))
        with stack:
            self.last_session_stats = session.stats

            # --- sampling stage ---------------------------------------------
            sampling = phases.SamplingPhase()
            result = run_protocol(
                network,
                sampling,
                config=config,
                global_inputs=global_inputs,
                per_node_inputs=per_node_inputs,
                session=session,
            )
            metrics.merge(result.metrics, label=sampling.name)
            sample_ids = {
                node_id
                for node_id, in_sample in result.outputs.items()
                if in_sample
            }

            if (
                params.max_sample_size is not None
                and len(sample_ids) > params.max_sample_size
            ):
                return self._aborted_result(
                    network,
                    sample_ids,
                    metrics,
                    "sample size %d exceeds the deterministic bound %d"
                    % (len(sample_ids), params.max_sample_size),
                )

            # --- exploration + decision stages ------------------------------
            cache = self.artifact_cache
            use_cache = cache is not None and not getattr(
                session, "worker_state_authoritative", False
            )
            if cache is not None and not use_cache:
                cache.skips += 1
            prefix, plan = self._compiled_plan(config.pipeline_mode, use_cache)
            self.last_pipeline_plan = plan

            try:
                if use_cache:
                    self._run_cached_prefix(
                        network,
                        prefix,
                        cache,
                        sample_ids,
                        global_inputs,
                        config,
                        session,
                        metrics,
                    )
                for group in plan.groups:
                    if group.fused:
                        group_results = session.execute_fused(
                            list(group.protocols),
                            config=config,
                            reuse_contexts=True,
                        )
                        for phase, phase_result in zip(
                            group.protocols, group_results
                        ):
                            metrics.merge(phase_result.metrics, label=phase.name)
                    else:
                        phase = group.protocols[0]
                        phase_result = run_protocol(
                            network,
                            phase,
                            config=config,
                            reuse_contexts=True,
                            session=session,
                        )
                        metrics.merge(phase_result.metrics, label=phase.name)
            except RoundLimitExceeded as exc:
                return self._aborted_result(
                    network, sample_ids, metrics, "round limit exceeded: %s" % exc
                )

        return self._harvest(network, sample_ids, metrics)

    # ------------------------------------------------------------------
    def _compiled_plan(
        self, mode: str, use_cache: bool
    ) -> Tuple[Tuple[Protocol, ...], PipelinePlan]:
        """Compile (once per runner) the exploration/decision plan.

        With the artifact cache active the tree-building prefix is carved
        off and executed through the cache; its writes and produced
        artifacts then count as external inputs of the suffix plan.
        """
        key = (mode, use_cache)
        memo = self._plan_cache.get(key)
        if memo is not None:
            return memo
        sequence = self._phase_sequence()
        prefix_len = self._CACHE_PREFIX_LEN if use_cache else 0
        prefix = tuple(sequence[:prefix_len])
        external_reads = set(self._EXTERNAL_READS)
        external_artifacts: List[str] = []
        for protocol in prefix:
            declared = protocol.effects()
            external_reads |= declared.writes
            external_artifacts.extend(declared.produces)
        plan = compile_pipeline(
            sequence[prefix_len:],
            mode=mode,
            external_reads=external_reads,
            external_artifacts=external_artifacts,
        )
        memo = (prefix, plan)
        self._plan_cache[key] = memo
        return memo

    def _run_cached_prefix(
        self,
        network: Network,
        prefix: Tuple[Protocol, ...],
        cache: ArtifactCache,
        sample_ids: Set[int],
        global_inputs: Dict[str, object],
        config: CongestConfig,
        session: "CongestSession",
        metrics: RunMetrics,
    ) -> None:
        """Run the tree-building prefix through the artifact cache.

        A hit restores the recorded post-prefix context snapshot and merges
        the recorded per-phase metrics — bit-identical to rebuilding,
        including message accounting.  A miss runs the prefix normally and
        records it.
        """
        key = (
            network.csr_fingerprint(),
            frozenset(sample_ids),
            tuple(sorted(global_inputs.items())),
        )
        ordered = [network.contexts[i] for i in sorted(network.contexts)]
        entry = cache.lookup(key)
        if entry is not None:
            restore_contexts(ordered, entry.frames)
            for label, _outputs, phase_metrics in entry.phase_results:
                metrics.merge(phase_metrics, label=label)
            return
        recorded: List[Tuple[str, object, object]] = []
        for phase in prefix:
            phase_result = run_protocol(
                network,
                phase,
                config=config,
                reuse_contexts=True,
                session=session,
            )
            metrics.merge(phase_result.metrics, label=phase.name)
            recorded.append((phase.name, phase_result.outputs, phase_result.metrics))
        cache.store(
            key,
            CachedPrefix(
                frames=snapshot_contexts(ordered), phase_results=recorded
            ),
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _phase_sequence() -> List[Protocol]:
        """The exploration + decision stages, in execution order."""
        return [
            MinIdBFSTreeProtocol(),
            ParentNotificationProtocol(),
            ConvergecastCollectProtocol(),
            TreeBroadcastProtocol(
                input_key=KEY_COLLECTED, output_key=phases.KEY_COMP_BCAST
            ),
            phases.CompDisseminationPhase(),
            phases.LocalSubsetPhase(),
            phases.UpAggregationPhase(
                membership_key=phases.KEY_K_MEMBERSHIP,
                result_key=phases.KEY_K_ROOT_SIZES,
                label="nc-k-aggregation",
            ),
            phases.DownBroadcastPhase(
                items_fn=phases.k_size_items,
                store_fn=phases.store_k_size,
                label="nc-k-size-broadcast",
                # k_size_items / store_k_size touch the root-size and
                # per-node size tables beyond the base phase's footprint.
                extra_effects=PhaseEffects(
                    reads=(phases.KEY_K_ROOT_SIZES, phases.KEY_K_SIZES),
                    writes=(phases.KEY_K_SIZES,),
                ),
            ),
            phases.KAnnouncePhase(),
            phases.UpAggregationPhase(
                membership_key=phases.KEY_T_MEMBERSHIP,
                result_key=phases.KEY_T_ROOT_SIZES,
                pre_start=phases.build_t_membership,
                root_finalize=phases.select_best_subset,
                label="nc-t-aggregation",
                # build_t_membership derives T_ε(X) from the K-tables and
                # the announcer sets; select_best_subset picks the best
                # subset from the component membership at each root.
                extra_effects=PhaseEffects(
                    reads=(
                        phases.KEY_K_MEMBERSHIP,
                        phases.KEY_K_NEIGHBOR_ANNOUNCERS,
                        phases.KEY_COMP_MEMBERS,
                    ),
                    writes=(phases.KEY_T_MEMBERSHIP, phases.KEY_BEST),
                    globals_read=(
                        phases.GLOBAL_EPSILON,
                        phases.GLOBAL_STEP4F_SAMPLING,
                        phases.GLOBAL_STEP4F_SAMPLE_SIZE,
                    ),
                ),
            ),
            phases.DownBroadcastPhase(
                items_fn=phases.best_items,
                store_fn=phases.store_best,
                label="nc-best-broadcast",
                extra_effects=PhaseEffects(
                    reads=(phases.KEY_BEST, phases.KEY_BEST_KNOWN),
                    writes=(phases.KEY_BEST_KNOWN,),
                ),
            ),
            phases.VotePhase(),
            phases.FinalLabelPhase(),
        ]

    # ------------------------------------------------------------------
    def _aborted_result(
        self,
        network: Network,
        sample_ids: Set[int],
        metrics: RunMetrics,
        reason: str,
    ) -> NearCliqueResult:
        labels = {network.label_of[v]: None for v in network.node_ids}
        return NearCliqueResult(
            labels=labels,
            sample=frozenset(network.label_of[v] for v in sample_ids),
            epsilon=self.parameters.epsilon,
            sample_probability=self.parameters.sample_probability,
            aborted=True,
            abort_reason=reason,
            metrics=metrics,
        )

    def _harvest(
        self,
        network: Network,
        sample_ids: Set[int],
        metrics: RunMetrics,
    ) -> NearCliqueResult:
        """Assemble the :class:`NearCliqueResult` from the final node states."""
        contexts = network.contexts
        translate = network.label_of

        labels: Dict[int, Optional[int]] = {}
        for node_id, ctx in contexts.items():
            label = ctx.output
            labels[translate[node_id]] = None if label is None else translate[label]

        # candidate sets, one per component, harvested from the roots
        t_members_by_root: Dict[Tuple[int, int], Set[int]] = {}
        for node_id, ctx in contexts.items():
            t_membership: Dict[int, Set[int]] = ctx.state.get(
                phases.KEY_T_MEMBERSHIP, {}
            )
            for root, indices in t_membership.items():
                for index in indices:
                    t_members_by_root.setdefault((root, index), set()).add(node_id)

        candidates: List[CandidateSet] = []
        components: List[FrozenSet[int]] = []
        for node_id in sorted(sample_ids):
            ctx = contexts[node_id]
            if ctx.state.get(KEY_PARENT) is not None or not ctx.state.get(
                phases.KEY_IN_SAMPLE
            ):
                continue
            root = ctx.state[KEY_ROOT]
            members = ctx.state.get(phases.KEY_COMP_MEMBERS, (node_id,))
            best_index, _best_size = ctx.state.get(phases.KEY_BEST, (0, 0))
            survived = bool(ctx.state.get(phases.KEY_SURVIVED, False))
            t_set = frozenset(
                translate[v] for v in t_members_by_root.get((root, best_index), set())
            )
            subset = (
                near_clique.subset_from_index(tuple(members), best_index)
                if best_index
                else frozenset()
            )
            candidates.append(
                CandidateSet(
                    component_root=translate[root],
                    component_members=frozenset(translate[v] for v in members),
                    subset_index=best_index,
                    subset=frozenset(translate[v] for v in subset),
                    members=t_set,
                    survived=survived,
                )
            )
            components.append(frozenset(translate[v] for v in members))

        return NearCliqueResult(
            labels=labels,
            candidates=candidates,
            sample=frozenset(translate[v] for v in sample_ids),
            components=tuple(components),
            epsilon=self.parameters.epsilon,
            sample_probability=self.parameters.sample_probability,
            metrics=metrics,
        )
