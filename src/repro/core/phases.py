"""The CONGEST-model phases of Algorithm ``DistNearClique``.

The algorithm of Section 4 is implemented as a sequence of protocols executed
on the same network contexts (``reuse_contexts=True``), each corresponding to
one or two numbered steps of the paper's pseudo-code:

====================  =====================================================
Phase (this module)    Paper step
====================  =====================================================
SamplingPhase          Sampling stage (i.i.d. coin flips)
MinIdBFSTreeProtocol   Exploration Step 1 (BFS tree per component of G[S])
ParentNotification     — (children discovery needed for convergecast)
ConvergecastCollect    Exploration Step 2 (component membership to the root)
TreeBroadcast          Exploration Step 2 (membership back down the tree)
CompDisseminationPhase Exploration Step 3 (members of S_i to all neighbours)
LocalSubsetPhase       Exploration Step 4a (+ leaf attachment to the tree)
UpAggregationPhase(K)  Exploration Steps 4b–4c (|K_{2ε²}(X)| at the root)
DownBroadcastPhase(K)  Exploration Step 4d (|K_{2ε²}(X)| back to Γ(S_i))
KAnnouncePhase         Exploration Steps 4e–4f (membership in T_ε(X))
UpAggregationPhase(T)  Decision Step 1 (|T_ε(X)| at the root, pick X(S_i))
DownBroadcastPhase(B)  Decision Step 2 (announce |T_ε(X(S_i))|)
VotePhase              Decision Step 3 (acknowledge / abort votes)
FinalLabelPhase        Decision Step 4 (labels for the surviving candidates)
====================  =====================================================

All phases respect the CONGEST discipline: every message carries a constant
number of identifiers / polynomially-bounded counters (O(log n) bits), and a
node sends at most one message per neighbour per round (larger transfers are
pipelined through :class:`repro.primitives.pipelines.Outbox`).

State shared between phases lives in each node's ``ctx.state`` under the
``KEY_*`` names below; the runner (:mod:`repro.core.dist_near_clique`) wires
the phases together and harvests the final outputs.

**Vectorized-kernel coverage.**  Under ``engine="vectorized"``
(:mod:`repro.congest.vectorized`) the *regular* phases — those whose round
structure is a closed-form pipelined broadcast, with no data-dependent
waiting — execute as columnar gather/apply/scatter kernels instead of
per-node callbacks; the rest fall back to the batched callback path.  The
callbacks below remain the executable semantics either way (the kernels are
held to bit-identity by the differential suite):

=====================  ==========================================
Phase                  ``engine="vectorized"`` execution
=====================  ==========================================
SamplingPhase          kernel (local coin flips, zero rounds)
MinIdBFSTreeProtocol   callback fallback (data-dependent waves)
ParentNotification     callback fallback
ConvergecastCollect    callback fallback (waits on subtrees)
TreeBroadcast          callback fallback
CompDisseminationPhase kernel (pipelined neighbourhood broadcast)
LocalSubsetPhase       callback fallback (single-shot sends)
UpAggregationPhase     callback fallback (waits on leaves/children)
DownBroadcastPhase     callback fallback (multi-hop relay)
KAnnouncePhase         kernel (pipelined neighbourhood broadcast)
VotePhase              callback fallback (waits on subtrees)
FinalLabelPhase        callback fallback (multi-hop relay)
=====================  ==========================================
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.congest.message import Inbound, Message, id_bits_for, KIND_TAG_BITS
from repro.congest.node import NodeContext, Protocol
from repro.congest.pipeline import (
    ARTIFACT_BFS_TREE,
    ARTIFACT_COMPONENT_MAP,
    ARTIFACT_TREE_CHILDREN,
    PhaseEffects,
)
from repro.congest.vectorized import KernelFrame, VectorizedKernel
from repro.core import near_clique
from repro.primitives.bfs_tree import (
    KEY_CHILDREN,
    KEY_PARENT,
    KEY_PARTICIPANT,
    KEY_ROOT,
)
from repro.primitives.pipelines import Outbox

# ---------------------------------------------------------------------------
# shared state keys
# ---------------------------------------------------------------------------
KEY_IN_SAMPLE = "nc_in_sample"
KEY_FORCED_SAMPLE = "nc_forced_sample"
KEY_COMP_BCAST = "nc_comp_bcast"
KEY_COMP_MEMBERS = "nc_comp_members"
KEY_ADJ_COMPONENTS = "nc_adjacent_components"
KEY_ADJ_MEMBERS = "nc_adjacent_members"
KEY_ATTACH_PARENT = "nc_attach_parent"
KEY_ATTACHED_LEAVES = "nc_attached_leaves"
KEY_K_MEMBERSHIP = "nc_k_membership"
KEY_K_SIZES = "nc_k_sizes"
KEY_K_NEIGHBOR_ANNOUNCERS = "nc_k_neighbor_announcers"
KEY_T_MEMBERSHIP = "nc_t_membership"
KEY_K_ROOT_SIZES = "nc_root_k_sizes"
KEY_T_ROOT_SIZES = "nc_root_t_sizes"
KEY_BEST = "nc_best"
KEY_BEST_KNOWN = "nc_best_known"
KEY_ABORT_SEEN = "nc_abort_seen"
KEY_SURVIVED = "nc_survived"

# global input keys (ctx.globals)
GLOBAL_EPSILON = "epsilon"
GLOBAL_SAMPLE_PROBABILITY = "sample_probability"
GLOBAL_MIN_OUTPUT_SIZE = "min_output_size"
GLOBAL_STEP4F_SAMPLING = "use_step4f_sampling"
GLOBAL_STEP4F_SAMPLE_SIZE = "step4f_sample_size"

# message kinds
_COMP = "nc.comp"
_ATTACH = "nc.attach"
_AGG = "nc.agg"
_AGG_DONE = "nc.agg_done"
_DOWN = "nc.down"
_KSIZE = "nc.ksize"
_VOTE = "nc.vote"
_ABORT_STATE = "nc.abort_state"


def _wire(kind: str, payload: Tuple, n: int) -> Message:
    """Build a message whose integers are charged at identifier width.

    All ``DistNearClique`` messages carry a constant number of identifiers,
    subset indices and counters; each element is charged at
    ``max(⌈log₂ n⌉, bit length)`` bits so that the accounting is an honest
    Theta(log n) per element for the parameter regime of the paper.
    """
    bits = KIND_TAG_BITS
    for element in payload:
        bits += max(id_bits_for(n), int(abs(int(element))).bit_length() + 1)
    return Message(kind=kind, payload=tuple(int(e) for e in payload), bits=bits)


def _epsilon(ctx: NodeContext) -> float:
    return float(ctx.globals[GLOBAL_EPSILON])


def _in_sample(ctx: NodeContext) -> bool:
    return bool(ctx.state.get(KEY_IN_SAMPLE))


def _k_membership_indices(
    members: Sequence[int], neighbor_ids: Sequence[int], inner_epsilon: float
) -> Set[int]:
    """Indices of the non-empty X ⊆ members with ``v ∈ K_{2ε²}(X)``.

    ``neighbor_ids`` are the neighbours of the evaluating node v; membership
    is ``|Γ(v) ∩ X| ≥ (1 − 2ε²)|X|`` evaluated with the shared tolerance, via
    bitmask popcounts (exploration Step 4a — purely local computation).
    """
    mask = near_clique.neighbor_mask(members, neighbor_ids)
    result: Set[int] = set()
    for index in near_clique.iter_nonempty_subset_indices(len(members)):
        if near_clique.meets_fraction(
            near_clique.popcount(mask & index),
            near_clique.popcount(index),
            inner_epsilon,
        ):
            result.add(index)
    return result


# ---------------------------------------------------------------------------
# sampling stage
# ---------------------------------------------------------------------------
class SamplingPhase(Protocol):
    """Each node joins S independently with probability p (purely local).

    If the runner supplies a predetermined sample (``KEY_FORCED_SAMPLE`` in
    the per-node inputs) the coin flip is skipped — used by tests that
    cross-check the distributed execution against the centralized oracle on
    the very same sample.
    """

    name = "nc-sampling"
    quiesce_terminates = True

    def effects(self) -> PhaseEffects:
        return PhaseEffects(
            reads=(KEY_FORCED_SAMPLE, KEY_IN_SAMPLE),
            writes=(KEY_IN_SAMPLE, KEY_PARTICIPANT),
            globals_read=(GLOBAL_SAMPLE_PROBABILITY,),
            writes_output=True,
        )

    def on_start(self, ctx: NodeContext) -> None:
        forced = ctx.state.get(KEY_FORCED_SAMPLE)
        if forced is None:
            probability = float(ctx.globals.get(GLOBAL_SAMPLE_PROBABILITY, 0.0))
            in_sample = ctx.rng.random() < probability
        else:
            in_sample = bool(forced)
        ctx.state[KEY_IN_SAMPLE] = in_sample
        ctx.state[KEY_PARTICIPANT] = in_sample
        ctx.write_output(None)
        ctx.halt()

    def collect_output(self, ctx: NodeContext) -> bool:
        return bool(ctx.state.get(KEY_IN_SAMPLE))

    def vectorized_kernel(self) -> "_SamplingKernel":
        return _SamplingKernel()


class _SamplingKernel(VectorizedKernel):
    """Columnar form of :class:`SamplingPhase`.

    Pure apply stage: every node flips its coin (through its own private
    RNG, drawn in dense-index order so the consumption matches the callback
    engines draw for draw), writes the sample flags and halts — the whole
    phase is zero rounds of communication, which the empty broadcast
    schedule reproduces.
    """

    def execute(self, frame: KernelFrame) -> None:
        halted = frame.halted
        for index, ctx in enumerate(frame.ctx_list):
            state = ctx.state
            forced = state.get(KEY_FORCED_SAMPLE)
            if forced is None:
                probability = float(
                    ctx.globals.get(GLOBAL_SAMPLE_PROBABILITY, 0.0)
                )
                in_sample = ctx.rng.random() < probability
            else:
                in_sample = bool(forced)
            state[KEY_IN_SAMPLE] = in_sample
            state[KEY_PARTICIPANT] = in_sample
            ctx.output = None
            halted[index] = True
        frame.run_broadcast_schedule((), ())


# ---------------------------------------------------------------------------
# exploration step 3: component membership to all neighbours
# ---------------------------------------------------------------------------
class CompDisseminationPhase(Protocol):
    """Every sampled node streams Comp(v) to all its neighbours.

    Receivers that are not sampled record, for every adjacent component, the
    component's root, its member list, and which neighbours delivered it
    (candidate attachment parents).  Sampled receivers ignore the traffic —
    a sampled node can only ever be adjacent to its own component.
    """

    name = "nc-comp-dissemination"
    quiesce_terminates = True

    def effects(self) -> PhaseEffects:
        return PhaseEffects(
            reads=(
                KEY_IN_SAMPLE,
                KEY_COMP_BCAST,
                KEY_ROOT,
                KEY_ADJ_COMPONENTS,
                Outbox.STATE_KEY,
            ),
            writes=(KEY_COMP_MEMBERS, KEY_ADJ_COMPONENTS, Outbox.STATE_KEY),
            consumes=(ARTIFACT_COMPONENT_MAP,),
        )

    def on_start(self, ctx: NodeContext) -> None:
        if _in_sample(ctx):
            members = near_clique.canonical_members(ctx.state.get(KEY_COMP_BCAST, []))
            ctx.state[KEY_COMP_MEMBERS] = members
            root = ctx.state[KEY_ROOT]
            outbox = Outbox.for_ctx(ctx)
            for member in members:
                outbox.push_all(_wire(_COMP, (root, member), ctx.n))
        else:
            ctx.state[KEY_ADJ_COMPONENTS] = {}
            if not ctx.neighbors:
                ctx.halt()

    def on_round(self, ctx: NodeContext, inbox: List[Inbound]) -> None:
        if _in_sample(ctx):
            Outbox.for_ctx(ctx).flush()
            return
        records: Dict[int, Dict[str, set]] = ctx.state[KEY_ADJ_COMPONENTS]
        for inbound in inbox:
            if inbound.kind != _COMP:
                continue
            root, member = inbound.payload
            record = records.setdefault(root, {"members": set(), "senders": set()})
            record["members"].add(member)
            record["senders"].add(inbound.sender)

    def vectorized_kernel(self) -> "_CompDisseminationKernel":
        return _CompDisseminationKernel()


class _CompDisseminationKernel(VectorizedKernel):
    """Columnar form of :class:`CompDisseminationPhase`.

    *Apply*: one sweep over the contexts performs the ``on_start`` state
    writes (canonical member lists at sampled nodes, empty component tables
    plus isolation halts at the rest).  *Gather*: instead of folding one
    delivered message at a time, each receiver with a broadcasting
    neighbour folds that neighbour's whole member column at once — the
    segment count over the sampled mask prunes the sweep to receivers that
    actually have mail.  *Scatter*: each sampled node's stream (one
    ``nc.comp`` item per member, pushed to every neighbour) goes to the
    closed-form broadcast schedule, which reproduces the pipelined flush's
    rounds and metrics exactly.
    """

    def execute(self, frame: KernelFrame) -> None:
        np = frame.np
        ctx_list = frame.ctx_list
        degrees = frame.degrees
        halted = frame.halted
        n = frame.network.n
        comp_kind = frame.intern_kind(_COMP)

        sampled = np.zeros(frame.n, dtype=bool)
        broadcasting = np.zeros(frame.n, dtype=bool)
        roots: List[Optional[int]] = [None] * frame.n
        member_lists: List[Tuple[int, ...]] = [()] * frame.n
        senders: List[int] = []
        streams: List[List[int]] = []
        for index, ctx in enumerate(ctx_list):
            state = ctx.state
            if state.get(KEY_IN_SAMPLE):
                sampled[index] = True
                members = near_clique.canonical_members(
                    state.get(KEY_COMP_BCAST, [])
                )
                state[KEY_COMP_MEMBERS] = members
                root = state[KEY_ROOT]
                roots[index] = root
                member_lists[index] = members
                if members:
                    broadcasting[index] = True
                    if degrees[index]:
                        senders.append(index)
                        streams.append(
                            [_wire(_COMP, (root, member), n).bits for member in members]
                        )
            else:
                state[KEY_ADJ_COMPONENTS] = {}
                if not degrees[index]:
                    halted[index] = True

        # Receivers: non-sampled nodes with at least one broadcasting
        # neighbour fold whole member columns; everyone else has no mail.
        mail_counts = frame.count_flagged_neighbors(broadcasting)
        for index in np.nonzero(~sampled & (mail_counts > 0))[0]:
            ctx = ctx_list[index]
            records = ctx.state[KEY_ADJ_COMPONENTS]
            for neighbor in frame.neighbor_slice(int(index)):
                neighbor = int(neighbor)
                if not broadcasting[neighbor]:
                    continue
                record = records.get(roots[neighbor])
                if record is None:
                    record = records[roots[neighbor]] = {
                        "members": set(),
                        "senders": set(),
                    }
                record["members"].update(member_lists[neighbor])
                record["senders"].add(ctx_list[neighbor].node_id)

        frame.run_broadcast_schedule(
            senders, streams, [comp_kind] * len(senders)
        )


# ---------------------------------------------------------------------------
# exploration step 4a: local subset membership + leaf attachment
# ---------------------------------------------------------------------------
class LocalSubsetPhase(Protocol):
    """Local evaluation of ``v ∈ K_{2ε²}(X)`` for every X, plus attachment.

    Non-sampled nodes adjacent to a component pick one neighbour from that
    component as their attachment parent (the paper's ``parent^{S_i}(u)``)
    and notify it, so that the subsequent aggregations know exactly which
    leaves hang off each tree node.
    """

    name = "nc-local-subsets"
    quiesce_terminates = True

    def effects(self) -> PhaseEffects:
        return PhaseEffects(
            reads=(
                KEY_IN_SAMPLE,
                KEY_COMP_MEMBERS,
                KEY_ROOT,
                KEY_ADJ_COMPONENTS,
                KEY_ATTACHED_LEAVES,
                Outbox.STATE_KEY,
            ),
            writes=(
                KEY_ATTACHED_LEAVES,
                KEY_ADJ_MEMBERS,
                KEY_ATTACH_PARENT,
                KEY_K_MEMBERSHIP,
                Outbox.STATE_KEY,
            ),
            globals_read=(GLOBAL_EPSILON,),
        )

    def on_start(self, ctx: NodeContext) -> None:
        eps = _epsilon(ctx)
        inner_eps = 2.0 * eps * eps
        memberships: Dict[int, Set[int]] = {}
        if _in_sample(ctx):
            members = ctx.state.get(KEY_COMP_MEMBERS, ())
            root = ctx.state[KEY_ROOT]
            memberships[root] = _k_membership_indices(members, ctx.neighbors, inner_eps)
            ctx.state[KEY_ATTACHED_LEAVES] = set()
            ctx.state[KEY_ADJ_MEMBERS] = {root: tuple(members)}
        else:
            records = ctx.state.get(KEY_ADJ_COMPONENTS, {})
            if not records:
                ctx.state[KEY_K_MEMBERSHIP] = {}
                ctx.halt()
                return
            attach: Dict[int, int] = {}
            adjacent_members: Dict[int, Tuple[int, ...]] = {}
            outbox = Outbox.for_ctx(ctx)
            for root in sorted(records):
                record = records[root]
                members = near_clique.canonical_members(record["members"])
                adjacent_members[root] = members
                parent = min(record["senders"])
                attach[root] = parent
                outbox.push(parent, _wire(_ATTACH, (root,), ctx.n))
                memberships[root] = _k_membership_indices(
                    members, ctx.neighbors, inner_eps
                )
            ctx.state[KEY_ATTACH_PARENT] = attach
            ctx.state[KEY_ADJ_MEMBERS] = adjacent_members
        ctx.state[KEY_K_MEMBERSHIP] = memberships

    def on_round(self, ctx: NodeContext, inbox: List[Inbound]) -> None:
        if _in_sample(ctx):
            leaves: Set[int] = ctx.state[KEY_ATTACHED_LEAVES]
            for inbound in inbox:
                if inbound.kind == _ATTACH:
                    leaves.add(inbound.sender)
        Outbox.for_ctx(ctx).flush()


# ---------------------------------------------------------------------------
# generic aggregation up the tree (exploration 4b-4c, decision step 1)
# ---------------------------------------------------------------------------
class UpAggregationPhase(Protocol):
    """Sum per-subset membership counts over a component's tree + leaves.

    Every contributing node holds ``ctx.state[membership_key]`` — a mapping
    ``root → set of subset indices it belongs to``.  Attached leaves stream
    their indices to their attachment parent; tree nodes add their own
    indices, wait for all attached leaves and all tree children to finish,
    and forward partial sums to their tree parent; each root ends with the
    component-wide counts in ``ctx.state[result_key]``.

    ``pre_start`` (if given) runs at every node before anything else — the
    T-count aggregation uses it to turn the Step 4e announcements into
    ``T_ε(X)`` membership.  ``root_finalize`` (if given) runs at each root
    once its counts are complete — the decision-stage instance uses it to
    select the maximising subset X(S_i).
    """

    name = "nc-up-aggregation"
    quiesce_terminates = True

    def __init__(
        self,
        membership_key: str,
        result_key: str,
        pre_start: Optional[Callable[[NodeContext], None]] = None,
        root_finalize: Optional[Callable[[NodeContext, Dict[int, int]], None]] = None,
        label: str = "nc-up-aggregation",
        extra_effects: Optional[PhaseEffects] = None,
    ) -> None:
        self.membership_key = membership_key
        self.result_key = result_key
        self.pre_start = pre_start
        self.root_finalize = root_finalize
        self.name = label
        self.extra_effects = extra_effects

    # local state keys (per phase instance we prefix with the result key so
    # that successive aggregations do not trample each other's bookkeeping)
    def _key(self, suffix: str) -> str:
        return "%s.%s" % (self.result_key, suffix)

    def effects(self) -> PhaseEffects:
        # ``extra_effects`` covers the injected ``pre_start`` /
        # ``root_finalize`` callables, whose footprint the class cannot know.
        return PhaseEffects(
            reads=(
                KEY_IN_SAMPLE,
                KEY_ROOT,
                KEY_PARENT,
                KEY_CHILDREN,
                KEY_ATTACHED_LEAVES,
                KEY_ATTACH_PARENT,
                self.membership_key,
                self._key("counters"),
                self._key("waiting"),
                self._key("flushed"),
                Outbox.STATE_KEY,
            ),
            writes=(
                self.result_key,
                self._key("counters"),
                self._key("waiting"),
                self._key("flushed"),
                Outbox.STATE_KEY,
            ),
            consumes=(ARTIFACT_BFS_TREE, ARTIFACT_TREE_CHILDREN),
        ).merged(self.extra_effects)

    def on_start(self, ctx: NodeContext) -> None:
        if self.pre_start is not None and (
            _in_sample(ctx) or ctx.state.get(KEY_ATTACH_PARENT)
        ):
            self.pre_start(ctx)
        memberships: Dict[int, Set[int]] = ctx.state.get(self.membership_key, {})
        outbox = Outbox.for_ctx(ctx)
        if _in_sample(ctx):
            root = ctx.state[KEY_ROOT]
            counters: Dict[int, int] = {}
            for index in memberships.get(root, ()):  # own contribution
                counters[index] = counters.get(index, 0) + 1
            waiting = set(ctx.state.get(KEY_CHILDREN, []))
            waiting |= set(ctx.state.get(KEY_ATTACHED_LEAVES, set()))
            ctx.state[self._key("counters")] = counters
            ctx.state[self._key("waiting")] = waiting
            ctx.state[self._key("flushed")] = False
            ctx.state[self.result_key] = None
        else:
            attach: Dict[int, int] = ctx.state.get(KEY_ATTACH_PARENT, {})
            if not attach:
                ctx.halt()
                return
            for root in sorted(attach):
                parent = attach[root]
                for index in sorted(memberships.get(root, ())):
                    outbox.push(parent, _wire(_AGG, (root, index, 1), ctx.n))
                outbox.push(parent, _wire(_AGG_DONE, (root,), ctx.n))

    def on_round(self, ctx: NodeContext, inbox: List[Inbound]) -> None:
        outbox = Outbox.for_ctx(ctx)
        if not _in_sample(ctx):
            outbox.flush()
            return
        counters: Dict[int, int] = ctx.state[self._key("counters")]
        waiting: Set[int] = ctx.state[self._key("waiting")]
        for inbound in inbox:
            if inbound.kind == _AGG:
                _root, index, count = inbound.payload
                counters[index] = counters.get(index, 0) + count
            elif inbound.kind == _AGG_DONE:
                waiting.discard(inbound.sender)

        if not waiting and not ctx.state[self._key("flushed")]:
            ctx.state[self._key("flushed")] = True
            parent = ctx.state.get(KEY_PARENT)
            root = ctx.state[KEY_ROOT]
            if parent is None:
                ctx.state[self.result_key] = dict(counters)
                if self.root_finalize is not None:
                    self.root_finalize(ctx, counters)
            else:
                for index in sorted(counters):
                    if counters[index]:
                        outbox.push(
                            parent, _wire(_AGG, (root, index, counters[index]), ctx.n)
                        )
                outbox.push(parent, _wire(_AGG_DONE, (root,), ctx.n))
        outbox.flush()


# ---------------------------------------------------------------------------
# generic broadcast down the tree and to attached leaves
# ---------------------------------------------------------------------------
class DownBroadcastPhase(Protocol):
    """Stream items from every component root to S_i and to Γ(S_i).

    ``items_fn(ctx)`` is evaluated at each root and must return a list of
    integer tuples (each becomes one O(log n)-bit message, prefixed with the
    component root on the wire).  ``store_fn(ctx, root, item)`` is applied at
    every receiving node — including the root itself — in arrival order.
    """

    name = "nc-down-broadcast"
    quiesce_terminates = True

    def __init__(
        self,
        items_fn: Callable[[NodeContext], List[Tuple[int, ...]]],
        store_fn: Callable[[NodeContext, int, Tuple[int, ...]], None],
        label: str = "nc-down-broadcast",
        extra_effects: Optional[PhaseEffects] = None,
    ) -> None:
        self.items_fn = items_fn
        self.store_fn = store_fn
        self.name = label
        self.extra_effects = extra_effects

    def effects(self) -> PhaseEffects:
        # ``extra_effects`` covers the injected ``items_fn`` / ``store_fn``
        # callables, whose footprint the class cannot know.
        return PhaseEffects(
            reads=(
                KEY_IN_SAMPLE,
                KEY_ROOT,
                KEY_PARENT,
                KEY_CHILDREN,
                KEY_ATTACHED_LEAVES,
                KEY_ATTACH_PARENT,
                Outbox.STATE_KEY,
            ),
            writes=(Outbox.STATE_KEY,),
            consumes=(ARTIFACT_BFS_TREE, ARTIFACT_TREE_CHILDREN),
        ).merged(self.extra_effects)

    def _forward(self, ctx: NodeContext, root: int, item: Tuple[int, ...]) -> None:
        outbox = Outbox.for_ctx(ctx)
        message = _wire(_DOWN, (root,) + tuple(item), ctx.n)
        for child in ctx.state.get(KEY_CHILDREN, []):
            outbox.push(child, message)
        for leaf in sorted(ctx.state.get(KEY_ATTACHED_LEAVES, set())):
            outbox.push(leaf, message)

    def on_start(self, ctx: NodeContext) -> None:
        if _in_sample(ctx):
            if ctx.state.get(KEY_PARENT) is None:
                root = ctx.state[KEY_ROOT]
                for item in self.items_fn(ctx):
                    self.store_fn(ctx, root, tuple(item))
                    self._forward(ctx, root, tuple(item))
        elif not ctx.state.get(KEY_ATTACH_PARENT):
            ctx.halt()

    def on_round(self, ctx: NodeContext, inbox: List[Inbound]) -> None:
        for inbound in inbox:
            if inbound.kind != _DOWN:
                continue
            payload = inbound.payload
            root, item = payload[0], tuple(payload[1:])
            self.store_fn(ctx, root, item)
            if _in_sample(ctx):
                self._forward(ctx, root, item)
        Outbox.for_ctx(ctx).flush()


# ---------------------------------------------------------------------------
# exploration steps 4e-4f: K-membership announcements
# ---------------------------------------------------------------------------
class KAnnouncePhase(Protocol):
    """Every node of ``K_{2ε²}(X)`` announces |K_{2ε²}(X)| to its neighbours.

    A receiver that is itself in ``K_{2ε²}(X)`` counts how many of its
    neighbours announced for the same (component, subset) pair; this count is
    exactly ``|Γ(u) ∩ K_{2ε²}(X)|``, which together with the announced size
    determines membership in ``K_ε(K_{2ε²}(X))`` and hence in ``T_ε(X)``
    (computed by :func:`build_t_membership` at the start of the next phase).
    """

    name = "nc-k-announce"
    quiesce_terminates = True

    def effects(self) -> PhaseEffects:
        return PhaseEffects(
            reads=(KEY_K_MEMBERSHIP, KEY_K_SIZES, Outbox.STATE_KEY),
            writes=(KEY_K_NEIGHBOR_ANNOUNCERS, Outbox.STATE_KEY),
        )

    def on_start(self, ctx: NodeContext) -> None:
        memberships: Dict[int, Set[int]] = ctx.state.get(KEY_K_MEMBERSHIP, {})
        sizes: Dict[int, Dict[int, int]] = ctx.state.get(KEY_K_SIZES, {})
        ctx.state[KEY_K_NEIGHBOR_ANNOUNCERS] = {}
        if not memberships or not any(memberships.values()):
            ctx.halt()
            return
        outbox = Outbox.for_ctx(ctx)
        for root in sorted(memberships):
            root_sizes = sizes.get(root, {})
            for index in sorted(memberships[root]):
                size = root_sizes.get(index, 0)
                if size <= 0:
                    continue
                outbox.push_all(_wire(_KSIZE, (root, index, size), ctx.n))

    def on_round(self, ctx: NodeContext, inbox: List[Inbound]) -> None:
        announcers: Dict[Tuple[int, int], Dict[str, Any]] = ctx.state[
            KEY_K_NEIGHBOR_ANNOUNCERS
        ]
        memberships: Dict[int, Set[int]] = ctx.state.get(KEY_K_MEMBERSHIP, {})
        for inbound in inbox:
            if inbound.kind != _KSIZE:
                continue
            root, index, size = inbound.payload
            if index not in memberships.get(root, ()):  # only K-members need it
                continue
            record = announcers.setdefault(
                (root, index), {"size": size, "senders": set()}
            )
            record["size"] = size
            record["senders"].add(inbound.sender)
        Outbox.for_ctx(ctx).flush()

    def vectorized_kernel(self) -> "_KAnnounceKernel":
        return _KAnnounceKernel()


class _KAnnounceKernel(VectorizedKernel):
    """Columnar form of :class:`KAnnouncePhase`.

    *Apply*: one sweep computes each node's sorted ``(root, index, size)``
    announcement column (and the ``on_start`` halts for nodes with nothing
    to announce).  *Gather*: receivers with announcing neighbours merge
    those columns position-major (queue position ascending, then sender
    ascending) — the exact arrival order of the pipelined flush, so the
    announcer tables are built entry for entry as the callbacks build them.
    *Scatter*: the announcement columns go to the closed-form broadcast
    schedule.
    """

    def execute(self, frame: KernelFrame) -> None:
        np = frame.np
        ctx_list = frame.ctx_list
        degrees = frame.degrees
        halted = frame.halted
        n = frame.network.n
        ksize_kind = frame.intern_kind(_KSIZE)

        announcing = np.zeros(frame.n, dtype=bool)
        items_by_node: List[Optional[List[Tuple[int, int, int]]]] = [None] * frame.n
        senders: List[int] = []
        streams: List[List[int]] = []
        for index, ctx in enumerate(ctx_list):
            state = ctx.state
            memberships: Dict[int, Set[int]] = state.get(KEY_K_MEMBERSHIP, {})
            sizes: Dict[int, Dict[int, int]] = state.get(KEY_K_SIZES, {})
            state[KEY_K_NEIGHBOR_ANNOUNCERS] = {}
            if not memberships or not any(memberships.values()):
                halted[index] = True
                continue
            items: List[Tuple[int, int, int]] = []
            for root in sorted(memberships):
                root_sizes = sizes.get(root, {})
                for subset_index in sorted(memberships[root]):
                    size = root_sizes.get(subset_index, 0)
                    if size <= 0:
                        continue
                    items.append((root, subset_index, size))
            if items and degrees[index]:
                announcing[index] = True
                items_by_node[index] = items
                senders.append(index)
                streams.append([_wire(_KSIZE, item, n).bits for item in items])

        mail_counts = frame.count_flagged_neighbors(announcing)
        for index in np.nonzero(~halted & (mail_counts > 0))[0]:
            ctx = ctx_list[index]
            memberships = ctx.state.get(KEY_K_MEMBERSHIP, {})
            announcers = ctx.state[KEY_K_NEIGHBOR_ANNOUNCERS]
            columns = [
                (ctx_list[int(j)].node_id, items_by_node[int(j)])
                for j in frame.neighbor_slice(int(index))
                if items_by_node[int(j)] is not None
            ]
            depth = max(len(items) for _sender, items in columns)
            for position in range(depth):
                for sender_id, items in columns:
                    if position >= len(items):
                        continue
                    root, subset_index, size = items[position]
                    if subset_index not in memberships.get(root, ()):
                        continue
                    record = announcers.setdefault(
                        (root, subset_index), {"size": size, "senders": set()}
                    )
                    record["size"] = size
                    record["senders"].add(sender_id)

        frame.run_broadcast_schedule(
            senders, streams, [ksize_kind] * len(senders)
        )


def build_t_membership(ctx: NodeContext) -> None:
    """Turn Step 4e announcements into ``T_ε(X)`` membership (Step 4f).

    Runs as the ``pre_start`` hook of the decision-stage aggregation.  When
    the Section 5.3 optimisation is enabled (``use_step4f_sampling``), the
    count ``|Γ(u) ∩ K_{2ε²}(X)|`` is *estimated* from a uniform sample of
    the node's neighbours instead of being read exactly.
    """
    eps = _epsilon(ctx)
    memberships: Dict[int, Set[int]] = ctx.state.get(KEY_K_MEMBERSHIP, {})
    announcers: Dict[Tuple[int, int], Dict[str, Any]] = ctx.state.get(
        KEY_K_NEIGHBOR_ANNOUNCERS, {}
    )
    use_sampling = bool(ctx.globals.get(GLOBAL_STEP4F_SAMPLING, False))
    sample_size = int(ctx.globals.get(GLOBAL_STEP4F_SAMPLE_SIZE, 32))

    sampled_neighbors: Optional[Set[int]] = None
    scale = 1.0
    if use_sampling and ctx.degree > sample_size:
        chosen = ctx.rng.sample(list(ctx.neighbors), sample_size)
        sampled_neighbors = set(chosen)
        scale = ctx.degree / float(sample_size)

    t_membership: Dict[int, Set[int]] = {}
    for root, indices in memberships.items():
        qualified: Set[int] = set()
        for index in indices:
            record = announcers.get((root, index))
            if record is None:
                continue
            size = record["size"]
            senders: Set[int] = record["senders"]
            if sampled_neighbors is None:
                count = float(len(senders))
            else:
                count = scale * len(senders & sampled_neighbors)
            if near_clique.meets_fraction(count, size, eps):
                qualified.add(index)
        t_membership[root] = qualified
    ctx.state[KEY_T_MEMBERSHIP] = t_membership


def select_best_subset(ctx: NodeContext, counters: Dict[int, int]) -> None:
    """Decision Step 1 at the root: pick X(S_i) maximising |T_ε(X)|.

    Ties are broken towards the smallest canonical subset index, matching the
    centralized oracle exactly.
    """
    members = ctx.state.get(KEY_COMP_MEMBERS, ())
    best_index = 0
    best_size = -1
    for index in near_clique.iter_nonempty_subset_indices(len(members)):
        size = counters.get(index, 0)
        if size > best_size:
            best_size = size
            best_index = index
    ctx.state[KEY_BEST] = (best_index, max(best_size, 0))


# ---------------------------------------------------------------------------
# decision step 3: acknowledge / abort votes, aggregated to each root
# ---------------------------------------------------------------------------
class VotePhase(Protocol):
    """Every audience node acknowledges its best candidate and aborts the rest.

    Attached leaves send one vote per adjacent component to their attachment
    parent; tree nodes OR together the abort indications of their own vote,
    their attached leaves and their children's subtrees, and forward the
    result to their parent; each root learns whether anyone aborted its
    candidate (``KEY_ABORT_SEEN``).
    """

    name = "nc-vote"
    quiesce_terminates = True

    def effects(self) -> PhaseEffects:
        return PhaseEffects(
            reads=(
                KEY_IN_SAMPLE,
                KEY_BEST_KNOWN,
                KEY_PARENT,
                KEY_CHILDREN,
                KEY_ATTACHED_LEAVES,
                KEY_ATTACH_PARENT,
                "_vote_waiting",
                "_vote_abort",
                "_vote_flushed",
                Outbox.STATE_KEY,
            ),
            writes=(
                KEY_ABORT_SEEN,
                "_vote_waiting",
                "_vote_abort",
                "_vote_flushed",
                Outbox.STATE_KEY,
            ),
            consumes=(ARTIFACT_BFS_TREE, ARTIFACT_TREE_CHILDREN),
        )

    def on_start(self, ctx: NodeContext) -> None:
        best_known: Dict[int, Tuple[int, int]] = ctx.state.get(KEY_BEST_KNOWN, {})
        outbox = Outbox.for_ctx(ctx)
        if _in_sample(ctx):
            waiting = set(ctx.state.get(KEY_CHILDREN, []))
            waiting |= set(ctx.state.get(KEY_ATTACHED_LEAVES, set()))
            ctx.state["_vote_waiting"] = waiting
            ctx.state["_vote_abort"] = False
            ctx.state["_vote_flushed"] = False
            # A sampled node is only in the audience of its own component, so
            # its own vote is always an acknowledgement.
            return
        if not best_known:
            ctx.halt()
            return
        choice = self._choice(best_known)
        attach: Dict[int, int] = ctx.state.get(KEY_ATTACH_PARENT, {})
        for root in sorted(best_known):
            parent = attach.get(root)
            if parent is None:
                continue
            ack = 1 if root == choice else 0
            outbox.push(parent, _wire(_VOTE, (root, ack), ctx.n))

    @staticmethod
    def _choice(best_known: Dict[int, Tuple[int, int]]) -> int:
        """The paper's rule: largest |T|, ties towards the largest root id."""
        return max(best_known, key=lambda root: (best_known[root][1], root))

    def on_round(self, ctx: NodeContext, inbox: List[Inbound]) -> None:
        outbox = Outbox.for_ctx(ctx)
        if not _in_sample(ctx):
            outbox.flush()
            return
        waiting: Set[int] = ctx.state["_vote_waiting"]
        for inbound in inbox:
            if inbound.kind == _VOTE:
                _root, ack = inbound.payload
                if not ack:
                    ctx.state["_vote_abort"] = True
                waiting.discard(inbound.sender)
            elif inbound.kind == _ABORT_STATE:
                (flag,) = inbound.payload
                if flag:
                    ctx.state["_vote_abort"] = True
                waiting.discard(inbound.sender)

        if not waiting and not ctx.state["_vote_flushed"]:
            ctx.state["_vote_flushed"] = True
            parent = ctx.state.get(KEY_PARENT)
            abort = 1 if ctx.state["_vote_abort"] else 0
            if parent is None:
                ctx.state[KEY_ABORT_SEEN] = bool(abort)
            else:
                outbox.push(parent, _wire(_ABORT_STATE, (abort,), ctx.n))
        outbox.flush()


# ---------------------------------------------------------------------------
# decision step 4: final labels
# ---------------------------------------------------------------------------
class FinalLabelPhase(DownBroadcastPhase):
    """Roots of surviving candidates broadcast X(S_i); members label themselves.

    A node's output register receives the component root — the label of its
    near-clique — when the candidate survived, its size clears the optional
    lower bound, and the node belongs to ``T_ε(X(S_i))``.  Every other node
    keeps the ⊥ output (``None``) written by the sampling phase.
    """

    name = "nc-final-labels"

    def __init__(self) -> None:
        super().__init__(
            items_fn=self._items, store_fn=self._store, label="nc-final-labels"
        )

    def effects(self) -> PhaseEffects:
        return super().effects().merged(
            PhaseEffects(
                reads=(KEY_BEST, KEY_ABORT_SEEN, KEY_T_MEMBERSHIP),
                writes=(KEY_SURVIVED,),
                globals_read=(GLOBAL_MIN_OUTPUT_SIZE,),
                writes_output=True,
            )
        )

    @staticmethod
    def _items(ctx: NodeContext) -> List[Tuple[int, ...]]:
        best = ctx.state.get(KEY_BEST, (0, 0))
        abort_seen = bool(ctx.state.get(KEY_ABORT_SEEN, False))
        min_size = int(ctx.globals.get(GLOBAL_MIN_OUTPUT_SIZE, 0))
        survived = (not abort_seen) and best[1] >= min_size and best[0] != 0
        ctx.state[KEY_SURVIVED] = survived
        if not survived:
            return []
        return [(best[0],)]

    @staticmethod
    def _store(ctx: NodeContext, root: int, item: Tuple[int, ...]) -> None:
        (best_index,) = item
        t_membership: Dict[int, Set[int]] = ctx.state.get(KEY_T_MEMBERSHIP, {})
        if best_index in t_membership.get(root, ()):  # this node is in T_ε(X(S_i))
            ctx.write_output(root)


# ---------------------------------------------------------------------------
# store/items helpers used by the runner to build DownBroadcastPhase instances
# ---------------------------------------------------------------------------
def k_size_items(ctx: NodeContext) -> List[Tuple[int, ...]]:
    """Root items for the Step 4d broadcast: all non-zero (index, |K|) pairs."""
    sums: Optional[Dict[int, int]] = ctx.state.get(KEY_K_ROOT_SIZES)
    if not sums:
        return []
    return [(index, size) for index, size in sorted(sums.items()) if size > 0]


def store_k_size(ctx: NodeContext, root: int, item: Tuple[int, ...]) -> None:
    """Receiver side of the Step 4d broadcast."""
    index, size = item
    ctx.state.setdefault(KEY_K_SIZES, {}).setdefault(root, {})[index] = size


def best_items(ctx: NodeContext) -> List[Tuple[int, ...]]:
    """Root items for the decision Step 2 broadcast: (X(S_i), |T_ε(X(S_i))|)."""
    best = ctx.state.get(KEY_BEST)
    if best is None:
        return []
    return [tuple(best)]


def store_best(ctx: NodeContext, root: int, item: Tuple[int, ...]) -> None:
    """Receiver side of the decision Step 2 broadcast."""
    index, size = item
    ctx.state.setdefault(KEY_BEST_KNOWN, {})[root] = (index, size)
