"""Centralized reference implementation of the ``DistNearClique`` computation.

Given the same random sample S, the distributed protocol and this oracle
perform *exactly* the same computation — the distributed protocol merely
spreads it over message exchanges.  The oracle therefore serves three
purposes:

1. it is the correctness baseline the integration tests compare the
   distributed runner against (identical labels for identical samples);
2. it is the fast engine used by large experiment sweeps (thousands of
   trials) where simulating every message would be wasteful;
3. its intermediate artefacts (per-subset candidate sets, votes) are exposed
   for the analysis experiments (E9 density guarantee, Lemma 5.6 checks).

The computation follows Section 4 of the paper:

* components of G[S] are identified, each named by its minimum identifier;
* for every non-empty subset X of a component, ``K_{2ε²}(X)`` and
  ``T_ε(X)`` are evaluated over the component's *audience*
  (S_i ∪ Γ(S_i) — the only nodes that can possibly belong to them);
* each component's candidate is the subset maximising ``|T_ε(X)|``
  (ties broken towards the smallest canonical subset index);
* the decision stage lets every audience node acknowledge the best candidate
  it is adjacent to (largest ``|T|``, ties towards the largest root
  identifier) and abort all others; a candidate survives only if nobody
  aborted it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.core import near_clique
from repro.core.params import AlgorithmParameters
from repro.core.result import CandidateSet, NearCliqueResult


@dataclass
class ComponentAnalysis:
    """Everything the oracle knows about one sampled component S_i."""

    root: int
    members: Tuple[int, ...]
    audience: FrozenSet[int]
    #: ``{subset index: K_{2ε²}(X)}`` for every non-empty subset X.
    k_sets: Dict[int, FrozenSet[int]] = field(default_factory=dict)
    #: ``{subset index: T_ε(X)}`` for every non-empty subset X.
    t_sets: Dict[int, FrozenSet[int]] = field(default_factory=dict)
    best_index: int = 0
    best_size: int = 0

    @property
    def best_t_set(self) -> FrozenSet[int]:
        return self.t_sets.get(self.best_index, frozenset())

    @property
    def best_subset(self) -> FrozenSet[int]:
        return near_clique.subset_from_index(self.members, self.best_index)


class CentralizedNearCliqueFinder:
    """Centralized execution of the near-clique discovery computation.

    Parameters
    ----------
    graph:
        The communication graph (undirected, integer node labels — the same
        graph handed to the distributed runner).
    epsilon:
        The ε parameter of the algorithm.
    min_output_size:
        Candidates smaller than this are disqualified after the vote (the
        paper's optional lower-bound filter).
    """

    def __init__(
        self,
        graph: nx.Graph,
        epsilon: float,
        min_output_size: int = 0,
    ) -> None:
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must lie in (0, 1), got %r" % epsilon)
        self.graph = graph
        self.epsilon = epsilon
        self.min_output_size = min_output_size
        self.adjacency = near_clique.adjacency_sets(graph)

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def draw_sample(self, probability: float, rng: random.Random) -> Set[int]:
        """Draw the sampling-stage set S (each node i.i.d. with probability p)."""
        return {v for v in sorted(self.graph.nodes()) if rng.random() < probability}

    # ------------------------------------------------------------------
    # exploration stage
    # ------------------------------------------------------------------
    def sample_components(self, sample: Iterable[int]) -> List[Tuple[int, ...]]:
        """Connected components of G[S], each as a canonical member tuple."""
        sample_set = set(sample)
        induced = self.graph.subgraph(sample_set)
        components = [
            near_clique.canonical_members(component)
            for component in nx.connected_components(induced)
        ]
        components.sort(key=lambda members: members[0])
        return components

    def audience_of(self, members: Sequence[int]) -> FrozenSet[int]:
        """S_i ∪ Γ(S_i): the nodes that take part in component i's candidate."""
        audience = set(members)
        for member in members:
            audience |= self.adjacency[member]
        return frozenset(audience)

    def analyze_component(self, members: Sequence[int]) -> ComponentAnalysis:
        """Evaluate ``K_{2ε²}(X)`` and ``T_ε(X)`` for every non-empty X ⊆ S_i."""
        members = near_clique.canonical_members(members)
        audience = self.audience_of(members)
        eps = self.epsilon
        inner_eps = 2.0 * eps * eps

        masks = {
            v: near_clique.neighbor_mask(members, self.adjacency[v]) for v in audience
        }
        analysis = ComponentAnalysis(
            root=members[0], members=members, audience=audience
        )
        best_index = 0
        best_size = -1
        for index in near_clique.iter_nonempty_subset_indices(len(members)):
            subset_size = near_clique.popcount(index)
            k_set = frozenset(
                v
                for v in audience
                if near_clique.meets_fraction(
                    near_clique.popcount(masks[v] & index), subset_size, inner_eps
                )
            )
            k_size = len(k_set)
            t_set = frozenset(
                v
                for v in k_set
                if near_clique.meets_fraction(
                    len(self.adjacency[v] & k_set), k_size, eps
                )
            )
            analysis.k_sets[index] = k_set
            analysis.t_sets[index] = t_set
            if len(t_set) > best_size:
                best_size = len(t_set)
                best_index = index
        analysis.best_index = best_index
        analysis.best_size = max(best_size, 0)
        return analysis

    # ------------------------------------------------------------------
    # decision stage
    # ------------------------------------------------------------------
    @staticmethod
    def _vote(options: Iterable[Tuple[int, int]]) -> Optional[int]:
        """A node's acknowledgement among ``(root, |T|)`` options.

        The paper's rule: acknowledge the component reporting the largest
        ``|T_ε(X(S_i))|``, breaking ties in favour of the largest root
        identifier; abort all the others.
        """
        best_root = None
        best_key = None
        for root, size in options:
            key = (size, root)
            if best_key is None or key > best_key:
                best_key = key
                best_root = root
        return best_root

    def decide(
        self, analyses: Sequence[ComponentAnalysis]
    ) -> Tuple[Dict[int, bool], Dict[int, Optional[int]]]:
        """Run the acknowledge/abort vote.

        Returns ``(survived, votes)`` where ``survived[root]`` says whether
        the component's candidate received no abort and ``votes[node]`` is
        the root each audience node acknowledged.
        """
        audiences: Dict[int, List[ComponentAnalysis]] = {}
        for analysis in analyses:
            for node in analysis.audience:
                audiences.setdefault(node, []).append(analysis)

        votes: Dict[int, Optional[int]] = {}
        survived = {analysis.root: True for analysis in analyses}
        for node, adjacent in audiences.items():
            choice = self._vote((a.root, a.best_size) for a in adjacent)
            votes[node] = choice
            for analysis in adjacent:
                if analysis.root != choice:
                    survived[analysis.root] = False
        return survived, votes

    # ------------------------------------------------------------------
    # full runs
    # ------------------------------------------------------------------
    def run_with_sample(self, sample: Iterable[int]) -> NearCliqueResult:
        """Execute exploration + decision for a given sample S."""
        sample_set = frozenset(sample)
        components = self.sample_components(sample_set)
        analyses = [self.analyze_component(members) for members in components]
        survived, _votes = self.decide(analyses)

        labels: Dict[int, Optional[int]] = {v: None for v in self.graph.nodes()}
        candidates: List[CandidateSet] = []
        for analysis in analyses:
            alive = survived[analysis.root] and (
                analysis.best_size >= self.min_output_size
            )
            members = analysis.best_t_set
            if alive:
                for node in members:
                    labels[node] = analysis.root
            candidates.append(
                CandidateSet(
                    component_root=analysis.root,
                    component_members=frozenset(analysis.members),
                    subset_index=analysis.best_index,
                    subset=analysis.best_subset,
                    members=members,
                    survived=alive,
                )
            )
        return NearCliqueResult(
            labels=labels,
            candidates=candidates,
            sample=sample_set,
            components=tuple(frozenset(members) for members in components),
            epsilon=self.epsilon,
        )

    def run(
        self,
        parameters: AlgorithmParameters,
        rng: Optional[random.Random] = None,
    ) -> NearCliqueResult:
        """Sampling stage + exploration + decision (one full execution)."""
        rng = rng or random.Random()
        sample = self.draw_sample(parameters.sample_probability, rng)
        if (
            parameters.max_sample_size is not None
            and len(sample) > parameters.max_sample_size
        ):
            return NearCliqueResult(
                labels={v: None for v in self.graph.nodes()},
                sample=frozenset(sample),
                epsilon=self.epsilon,
                sample_probability=parameters.sample_probability,
                aborted=True,
                abort_reason=(
                    "sample size %d exceeds the deterministic bound %d"
                    % (len(sample), parameters.max_sample_size)
                ),
            )
        result = self.run_with_sample(sample)
        result.sample_probability = parameters.sample_probability
        return result
