"""Success-probability boosting (Section 4.1 of the paper).

A single execution of ``DistNearClique`` succeeds with constant probability.
To push the failure probability below a target ``q``, the paper does *not*
simply repeat the whole algorithm: it runs the sampling and exploration
stages λ = log_{1−r} q times independently (r being the single-run success
probability), then applies **one** decision stage in which every node
considers the candidates of all λ versions and acknowledges only the largest
one.  The boosting wrapper multiplies the running time by λ (the λ
explorations, plus a λ-fold congestion slow-down of the shared decision
stage).

:class:`BoostedNearCliqueRunner` implements exactly this combination.  Two
engines are provided:

* ``"centralized"`` (default) — each version's exploration is performed by
  the centralized oracle; fast, used by the large statistical experiments
  (E3, E7).
* ``"distributed"`` — each version's sampling + exploration is executed on
  the CONGEST simulator via :class:`DistNearCliqueRunner`; the combined
  decision is then evaluated with the same acknowledge/abort rule over the
  union of candidates, and the accounted rounds include the paper's λ-fold
  congestion factor for the shared decision stage.

Versions whose sample exceeds the deterministic bound (the Section 4.1
running-time guard) contribute no candidates — they are simply wasted
repetitions, exactly as in the paper's wrapper.
"""

from __future__ import annotations

import math
import random
from contextlib import ExitStack
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

import networkx as nx

from repro.congest.config import CongestConfig
from repro.congest.engine import CongestSession, get_engine
from repro.congest.metrics import RunMetrics
from repro.congest.network import Network
from repro.core import near_clique
from repro.core.dist_near_clique import DistNearCliqueRunner
from repro.core.params import AlgorithmParameters
from repro.core.reference import CentralizedNearCliqueFinder
from repro.core.result import CandidateSet, NearCliqueResult


def repetitions_for_failure_probability(q: float, single_run_success: float) -> int:
    """λ = ⌈log_{1−r} q⌉ — repetitions needed to push the failure below q."""
    if not 0 < q < 1:
        raise ValueError("q must lie in (0, 1), got %r" % q)
    if not 0 < single_run_success < 1:
        raise ValueError("single_run_success must lie in (0, 1)")
    return max(1, math.ceil(math.log(q) / math.log(1.0 - single_run_success)))


@dataclass
class _VersionCandidate:
    """One component candidate produced by one boosted version."""

    version: int
    root: int
    members: FrozenSet[int]
    audience: FrozenSet[int]
    size: int
    subset: FrozenSet[int]
    subset_index: int
    component_members: FrozenSet[int]


class BoostedNearCliqueRunner:
    """λ independent sampling+exploration runs, one shared decision stage."""

    def __init__(
        self,
        parameters: Optional[AlgorithmParameters] = None,
        *,
        epsilon: Optional[float] = None,
        sample_probability: Optional[float] = None,
        max_sample_size: Optional[int] = 18,
        min_output_size: int = 0,
        repetitions: Optional[int] = None,
        target_failure: Optional[float] = None,
        single_run_success: float = 0.5,
        engine: str = "centralized",
        congest_engine: Optional[str] = None,
        congest_config: Optional[CongestConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if parameters is None:
            if epsilon is None or sample_probability is None:
                raise ValueError(
                    "provide either an AlgorithmParameters record or both "
                    "epsilon and sample_probability"
                )
            parameters = AlgorithmParameters(
                epsilon=epsilon,
                sample_probability=sample_probability,
                max_sample_size=max_sample_size,
                min_output_size=min_output_size,
            )
        if engine not in ("centralized", "distributed"):
            raise ValueError("engine must be 'centralized' or 'distributed'")
        if repetitions is None:
            if target_failure is None:
                repetitions = 3
            else:
                repetitions = repetitions_for_failure_probability(
                    target_failure, single_run_success
                )
        if repetitions < 1:
            raise ValueError("repetitions must be at least 1")
        self.parameters = parameters
        self.repetitions = repetitions
        self.engine = engine
        #: CONGEST execution engine for the "distributed" variant —
        #: ``"reference"``, ``"batched"``, ``"async"`` or ``"sharded"``
        #: (see :mod:`repro.congest.engine`); ``None`` keeps the simulator
        #: default.  Bit-identical by the engine contract, so the boosted
        #: statistics are engine-independent.
        self.congest_engine = congest_engine
        #: Optional :class:`repro.congest.config.CongestConfig` for the
        #: "distributed" variant's simulations — the way to reach
        #: engine-specific knobs such as ``shards`` / ``shard_workers`` and
        #: ``session_mode`` (each distributed version runs its ~14 phases
        #: inside one execution session; ``"persistent"`` amortises the
        #: process backend's pool/shm setup across them).
        #: ``congest_engine`` (when given) still overrides the
        #: configuration's engine field.
        self.congest_config = congest_config
        self.rng = rng or random.Random()
        #: Session accounting from the last :meth:`run`.  All distributed
        #: versions share **one** network and one execution session, so a
        #: stats-collecting session (persistent sharded modes) contributes
        #: a single :class:`repro.congest.sharding.ShardingStats` entry
        #: whose counters span every version; the centralized engine and
        #: per-call sessions record nothing (empty list).
        self.session_stats_by_version: List[Optional[object]] = []

    # ------------------------------------------------------------------
    def run(self, graph: nx.Graph) -> NearCliqueResult:
        """Execute λ versions plus the combined decision stage.

        The ``"distributed"`` variant is **session-aware**: one
        :class:`~repro.congest.network.Network` and one execution session
        span all λ versions.  Each version reseeds the network from its own
        RNG stream (``Network.reseed`` reproduces exactly the per-node
        seeds of a from-scratch build, so the boosted outputs are
        bit-identical to λ independent networks), and on the persistent
        process backend the λ × ~14 phases share one worker pool and one
        shared-memory CSR mapping instead of respawning them per version.
        The shared session's accounting appears **once** in
        :attr:`session_stats_by_version` (its counters span all versions).
        """
        adjacency = near_clique.adjacency_sets(graph)
        metrics = RunMetrics()
        self.session_stats_by_version = []
        version_candidates: List[_VersionCandidate] = []
        samples: List[FrozenSet[int]] = []
        components: List[FrozenSet[int]] = []

        network: Optional[Network] = None
        session: Optional[CongestSession] = None
        config: Optional[CongestConfig] = None
        stack = ExitStack()
        if self.engine == "distributed":
            network = Network(graph)
            config = self.congest_config or CongestConfig().with_log_budget(
                network.n
            )
            if self.congest_engine is not None:
                config = config.with_engine(self.congest_engine)
            engine_obj = get_engine(config.engine)
            session = stack.enter_context(
                engine_obj.open_session(network, config)
            )
            if session.stats is not None:
                self.session_stats_by_version.append(session.stats)

        with stack:
            for version in range(self.repetitions):
                candidates, sample, comps, version_metrics = self._run_version(
                    graph, adjacency, version, network, session, config
                )
                version_candidates.extend(candidates)
                samples.append(sample)
                components.extend(comps)
                if version_metrics is not None:
                    metrics.merge(version_metrics, label="version-%d" % version)

        survived = self._combined_decision(version_candidates)

        labels: Dict[int, Optional[int]] = {v: None for v in graph.nodes()}
        result_candidates: List[CandidateSet] = []
        for candidate in version_candidates:
            alive = survived[(candidate.version, candidate.root)] and (
                candidate.size >= self.parameters.min_output_size
            )
            if alive:
                for node in candidate.members:
                    labels[node] = candidate.root
            result_candidates.append(
                CandidateSet(
                    component_root=candidate.root,
                    component_members=candidate.component_members,
                    subset_index=candidate.subset_index,
                    subset=candidate.subset,
                    members=candidate.members,
                    survived=alive,
                )
            )

        union_sample: set = set()
        for sample in samples:
            union_sample |= sample
        return NearCliqueResult(
            labels=labels,
            candidates=result_candidates,
            sample=frozenset(union_sample),
            components=tuple(components),
            epsilon=self.parameters.epsilon,
            sample_probability=self.parameters.sample_probability,
            metrics=metrics if self.engine == "distributed" else None,
        )

    # ------------------------------------------------------------------
    def _run_version(
        self,
        graph: nx.Graph,
        adjacency,
        version: int,
        network: Optional[Network] = None,
        session: Optional[CongestSession] = None,
        config: Optional[CongestConfig] = None,
    ) -> Tuple[List[_VersionCandidate], FrozenSet[int], List[FrozenSet[int]], Optional[RunMetrics]]:
        """One sampling + exploration run (no per-version decision)."""
        params = self.parameters
        if self.engine == "distributed":
            # Distinct per-version RNG stream, drawn exactly as the
            # one-network-per-version wrapper would have: the version
            # runner's rng seeds first the network (here via reseed on the
            # shared network) and then the per-node coins.
            vrng = random.Random(self.rng.getrandbits(48))
            network.reseed(vrng.getrandbits(48))
            runner = DistNearCliqueRunner(
                parameters=params,
                rng=vrng,
                config=config,
            )
            result = runner.run(network=network, session=session)
            if result.aborted:
                return [], result.sample, [], result.metrics
            candidates = [
                self._from_candidate(adjacency, version, candidate)
                for candidate in result.candidates
            ]
            # The paper's combined decision stage is the single-run decision
            # slowed by a factor of λ (message congestion); account for it.
            decision_metrics = RunMetrics()
            decision_metrics.rounds = result.metrics.rounds * (self.repetitions - 1)
            metrics = result.metrics
            metrics.merge(decision_metrics)
            return candidates, result.sample, list(result.components), metrics

        finder = CentralizedNearCliqueFinder(
            graph, params.epsilon, min_output_size=params.min_output_size
        )
        sample = finder.draw_sample(params.sample_probability, self.rng)
        if params.max_sample_size is not None and len(sample) > params.max_sample_size:
            return [], frozenset(sample), [], None
        candidates = []
        comps = []
        for members in finder.sample_components(sample):
            analysis = finder.analyze_component(members)
            comps.append(frozenset(members))
            candidates.append(
                _VersionCandidate(
                    version=version,
                    root=analysis.root,
                    members=analysis.best_t_set,
                    audience=analysis.audience,
                    size=analysis.best_size,
                    subset=analysis.best_subset,
                    subset_index=analysis.best_index,
                    component_members=frozenset(analysis.members),
                )
            )
        return candidates, frozenset(sample), comps, None

    def _from_candidate(
        self, adjacency, version: int, candidate: CandidateSet
    ) -> _VersionCandidate:
        audience = set(candidate.component_members)
        for member in candidate.component_members:
            audience |= adjacency[member]
        return _VersionCandidate(
            version=version,
            root=candidate.component_root,
            members=candidate.members,
            audience=frozenset(audience),
            size=candidate.size,
            subset=candidate.subset,
            subset_index=candidate.subset_index,
            component_members=candidate.component_members,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _combined_decision(
        candidates: Iterable[_VersionCandidate],
    ) -> Dict[Tuple[int, int], bool]:
        """The single shared decision stage over all versions' candidates.

        Every node in the audience of at least one candidate acknowledges the
        candidate with the largest |T| (ties towards the largest root
        identifier, then the earliest version, mirroring the single-run
        rule); all other candidates adjacent to that node are aborted.
        """
        candidates = list(candidates)
        by_node: Dict[int, List[_VersionCandidate]] = {}
        for candidate in candidates:
            for node in candidate.audience:
                by_node.setdefault(node, []).append(candidate)

        survived = {(c.version, c.root): True for c in candidates}
        for node, adjacent in by_node.items():
            winner = max(adjacent, key=lambda c: (c.size, c.root, -c.version))
            for candidate in adjacent:
                if candidate is not winner:
                    survived[(candidate.version, candidate.root)] = False
        return survived
