"""Result records shared by the distributed and centralized runners."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.congest.metrics import RunMetrics
from repro.core import near_clique


@dataclass(frozen=True)
class CandidateSet:
    """One component's best candidate ``T_ε(X(S_i))`` (decision Step 1).

    Attributes
    ----------
    component_root:
        The component's identifier — the smallest node identifier in the
        sampled component S_i, which is also the label assigned to the
        candidate's members if it survives conflict resolution.
    component_members:
        The members of the sampled component S_i itself.
    subset_index / subset:
        The maximising subset ``X(S_i)`` in canonical bitmask encoding.
    members:
        ``T_ε(X(S_i))`` — the candidate near-clique.
    survived:
        Whether the candidate survived the acknowledge/abort vote of the
        decision stage (and the optional minimum-size disqualification).
    """

    component_root: int
    component_members: FrozenSet[int]
    subset_index: int
    subset: FrozenSet[int]
    members: FrozenSet[int]
    survived: bool

    @property
    def size(self) -> int:
        return len(self.members)

    def density(self, graph_or_adj) -> float:
        """Density of the candidate in the input graph (Definition 1)."""
        return near_clique.density(graph_or_adj, self.members)


@dataclass
class NearCliqueResult:
    """Output of one execution of the near-clique discovery algorithm.

    The paper's output convention (Section 2, Problem Statement): every node
    holds either a label — the identifier of the component whose candidate it
    belongs to — or ``None`` (the paper's ⊥).  Two nodes belong to the same
    discovered near-clique exactly when they hold the same non-``None``
    label.
    """

    labels: Dict[int, Optional[int]]
    candidates: List[CandidateSet] = field(default_factory=list)
    sample: FrozenSet[int] = frozenset()
    components: Tuple[FrozenSet[int], ...] = ()
    epsilon: float = 0.0
    sample_probability: float = 0.0
    aborted: bool = False
    abort_reason: Optional[str] = None
    metrics: Optional[RunMetrics] = None

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    @property
    def clusters(self) -> Dict[int, FrozenSet[int]]:
        """Mapping from label to the set of nodes carrying that label."""
        grouped: Dict[int, set] = {}
        for node, label in self.labels.items():
            if label is not None:
                grouped.setdefault(label, set()).add(node)
        return {label: frozenset(nodes) for label, nodes in grouped.items()}

    @property
    def labelled_nodes(self) -> FrozenSet[int]:
        """All nodes with a non-⊥ output."""
        return frozenset(n for n, label in self.labels.items() if label is not None)

    def largest_cluster(self) -> FrozenSet[int]:
        """The largest discovered near-clique (empty if none was output)."""
        clusters = self.clusters
        if not clusters:
            return frozenset()
        return max(clusters.values(), key=lambda members: (len(members), sorted(members)))

    def cluster_of(self, node: int) -> FrozenSet[int]:
        """The near-clique containing *node* (empty when the node output ⊥)."""
        label = self.labels.get(node)
        if label is None:
            return frozenset()
        return self.clusters.get(label, frozenset())

    # ------------------------------------------------------------------
    # quality measures used by the experiments
    # ------------------------------------------------------------------
    def largest_cluster_density(self, graph_or_adj) -> float:
        """Density (Definition 1) of the largest discovered near-clique."""
        members = self.largest_cluster()
        return near_clique.density(graph_or_adj, members)

    def largest_cluster_defect(self, graph_or_adj) -> float:
        """Defect (1 − density) of the largest discovered near-clique."""
        return 1.0 - self.largest_cluster_density(graph_or_adj)

    def recall_of(self, planted: Iterable[int]) -> float:
        """Fraction of a planted dense set captured by the largest cluster."""
        planted_set = set(planted)
        if not planted_set:
            return 1.0
        return len(self.largest_cluster() & planted_set) / len(planted_set)

    def meets_theorem_5_7(
        self,
        graph_or_adj,
        planted_size: int,
        delta: float,
    ) -> bool:
        """Check both assertions of Theorem 5.7 against the largest cluster.

        Assertion (1): the output defect is at most
        ``(1/(1 − 13ε/2))·ε/δ``.  Assertion (2): the output size is at least
        ``(1 − 13ε/2)·|D| − ε⁻²`` (clipped at zero — for very small planted
        sets the bound is vacuous).
        """
        members = self.largest_cluster()
        size_bound = max(
            0.0, near_clique.theorem_5_7_size_lower_bound(planted_size, self.epsilon)
        )
        defect_bound = near_clique.theorem_5_7_defect_bound(self.epsilon, delta)
        size_ok = len(members) >= size_bound
        defect_ok = near_clique.near_clique_defect(graph_or_adj, members) <= defect_bound + 1e-9
        return size_ok and defect_ok

    def summary(self) -> Dict[str, float]:
        """Compact numeric summary used by the benchmark tables."""
        largest = self.largest_cluster()
        return {
            "sample_size": float(len(self.sample)),
            "components": float(len(self.components)),
            "candidates": float(len(self.candidates)),
            "surviving": float(sum(1 for c in self.candidates if c.survived)),
            "largest_cluster": float(len(largest)),
            "aborted": 1.0 if self.aborted else 0.0,
            "rounds": float(self.metrics.rounds) if self.metrics else 0.0,
            "max_message_bits": (
                float(self.metrics.max_message_bits) if self.metrics else 0.0
            ),
        }
