"""Near-clique mathematics (Section 2 and Section 4 of the paper).

This module is deliberately free of any distributed-systems machinery: it is
the shared mathematical vocabulary used by the centralized reference
implementation, by the distributed protocol (each node evaluates the same
predicates on its local view), by the analysis of the proofs, and by the
test suite's invariants.

Conventions
-----------
* **Ordered pairs** (Definition 1).  A set ``D`` is an ε-near clique when the
  number of *ordered* pairs ``(u, v)`` with ``u ≠ v`` and ``{u, v} ∈ E`` is at
  least ``(1 − ε)·|D|·(|D| − 1)``.  Every undirected edge inside ``D``
  therefore counts twice.  Sets of size 0 or 1 are 0-near cliques (they have
  no missing pairs).
* **Neighbourhoods**.  ``Γ(v)`` never contains ``v`` itself (simple graphs).
  In particular a vertex ``v ∈ X`` needs ``|Γ(v) ∩ X| ≥ (1 − ε)|X|`` to be in
  ``K_ε(X)`` — exactly as in Eq. (1) — even though one of the ``|X|``
  potential neighbours is ``v`` itself.
* **Subset indexing**.  The exploration stage enumerates all non-empty
  subsets ``X`` of a sampled component.  The distributed nodes and the
  centralized oracle must agree on the enumeration order, so subsets are
  indexed by bitmasks over the component's members sorted in increasing
  identifier order (bit *j* set ⇔ the *j*-th smallest member is in ``X``).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Iterator, Sequence, Set, Tuple

import networkx as nx

NodeSet = Set[int]


# ---------------------------------------------------------------------------
# adjacency helpers
# ---------------------------------------------------------------------------
def adjacency_sets(graph: nx.Graph) -> Dict[int, FrozenSet[int]]:
    """Return ``{v: frozenset(Γ(v))}`` for the whole graph.

    Building this once and passing it around is the main optimisation used by
    the centralized code paths; all functions below accept either a graph or
    a pre-built adjacency dictionary.
    """
    return {v: frozenset(graph[v]) for v in graph.nodes()}


def _as_adjacency(graph_or_adj) -> Dict[int, FrozenSet[int]]:
    if isinstance(graph_or_adj, dict):
        return graph_or_adj
    return adjacency_sets(graph_or_adj)


def neighbor_count_in(graph_or_adj, vertex: int, target: Iterable[int]) -> int:
    """Return ``|Γ(vertex) ∩ target|``."""
    adjacency = _as_adjacency(graph_or_adj)
    neighbors = adjacency.get(vertex, frozenset())
    target_set = target if isinstance(target, (set, frozenset)) else set(target)
    return len(neighbors & target_set)


# ---------------------------------------------------------------------------
# Definition 1: density and near-cliques
# ---------------------------------------------------------------------------
def ordered_pair_edge_count(graph_or_adj, nodes: Iterable[int]) -> int:
    """Number of ordered pairs ``(u, v)``, ``u ≠ v``, of *nodes* joined by an edge."""
    adjacency = _as_adjacency(graph_or_adj)
    node_set = set(nodes)
    return sum(len(adjacency.get(v, frozenset()) & node_set) for v in node_set)


def density(graph_or_adj, nodes: Iterable[int]) -> float:
    """Density of *nodes* per Definition 1 (1.0 for sets of size ≤ 1).

    The set is an ε-near clique exactly when ``density ≥ 1 − ε``.
    """
    node_set = set(nodes)
    size = len(node_set)
    if size <= 1:
        return 1.0
    return ordered_pair_edge_count(graph_or_adj, node_set) / (size * (size - 1))


def near_clique_defect(graph_or_adj, nodes: Iterable[int]) -> float:
    """The smallest ε for which *nodes* is an ε-near clique (``1 − density``)."""
    return 1.0 - density(graph_or_adj, nodes)


def is_near_clique(graph_or_adj, nodes: Iterable[int], epsilon: float) -> bool:
    """Definition 1: is *nodes* an ε-near clique?

    Uses exact integer comparison (no floating-point slack): the ordered-pair
    count must be at least ``(1 − ε)·|D|·(|D| − 1)``.
    """
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative, got %r" % epsilon)
    node_set = set(nodes)
    size = len(node_set)
    if size <= 1:
        return True
    edges = ordered_pair_edge_count(graph_or_adj, node_set)
    return edges >= (1.0 - epsilon) * size * (size - 1) - 1e-9


# ---------------------------------------------------------------------------
# Eq. (1) and Eq. (2): K_eps and T_eps
# ---------------------------------------------------------------------------
def k_eps(graph_or_adj, x: Iterable[int], epsilon: float, universe: Iterable[int] = None) -> NodeSet:
    """The set ``K_ε(X)`` of Eq. (1).

    ``K_ε(X) = {v : |Γ(v) ∩ X| ≥ (1 − ε)|X|}``, evaluated over *universe*
    (all graph nodes by default).

    Notes
    -----
    * ``K_ε(∅)`` is the whole universe (the condition is vacuous); callers
      that enumerate candidate subsets exclude the empty set for this reason.
    * When ``(1 − ε)|X| > 0`` every member of ``K_ε(X)`` has at least one
      neighbour in ``X``, so only ``Γ(X)`` needs to be examined — this is the
      locality property that makes the distributed evaluation possible.
    """
    adjacency = _as_adjacency(graph_or_adj)
    x_set = set(x)
    threshold = (1.0 - epsilon) * len(x_set)
    if universe is not None:
        candidates: Iterable[int] = set(universe)
    elif threshold > 0:
        candidates = set()
        for u in x_set:
            candidates |= adjacency.get(u, frozenset())
        candidates |= x_set
    else:
        candidates = set(adjacency.keys())
    result = set()
    for v in candidates:
        if len(adjacency.get(v, frozenset()) & x_set) >= threshold - 1e-9:
            result.add(v)
    return result


def t_eps(graph_or_adj, x: Iterable[int], epsilon: float) -> NodeSet:
    """The set ``T_ε(X)`` of Eq. (2): ``K_ε(K_{2ε²}(X)) ∩ K_{2ε²}(X)``."""
    adjacency = _as_adjacency(graph_or_adj)
    inner = k_eps(adjacency, x, 2.0 * epsilon * epsilon)
    outer = k_eps(adjacency, inner, epsilon, universe=inner)
    return outer & inner


# ---------------------------------------------------------------------------
# Lemma 5.3, Lemma 5.4 and the representativeness conditions of Lemma 5.6
# ---------------------------------------------------------------------------
def lemma_5_3_defect_bound(n: int, t: int, epsilon: float) -> float:
    """Upper bound on the defect of a candidate ``T_ε(X)`` with ``t`` members.

    Lemma 5.3: every ``T_ε(X)`` is an ``(n/t)·ε``-near clique.  The bound is
    clipped to 1 (a defect can never exceed 1).
    """
    if t <= 1:
        return 0.0
    return min(1.0, (n / t) * epsilon)


def core_set(graph_or_adj, dense_set: Iterable[int], epsilon: float) -> NodeSet:
    """The core ``C = K_{ε²}(D) ∩ D`` used throughout Section 5.2.

    Lemma 5.4 guarantees ``|C| ≥ (1 − ε)|D| − 1/ε²`` whenever ``D`` is an
    ε³-near clique.
    """
    adjacency = _as_adjacency(graph_or_adj)
    d_set = set(dense_set)
    return k_eps(adjacency, d_set, epsilon * epsilon, universe=d_set)


def lemma_5_4_core_lower_bound(d_size: int, epsilon: float) -> float:
    """Lemma 5.4's lower bound on ``|C|``: ``(1 − ε)|D| − 1/ε²``."""
    if epsilon <= 0:
        return float(d_size)
    return (1.0 - epsilon) * d_size - 1.0 / (epsilon * epsilon)


def is_representative(
    graph_or_adj,
    dense_set: Iterable[int],
    core: Iterable[int],
    x_star: Iterable[int],
    epsilon: float,
) -> bool:
    """The representativeness predicate from the proof of Lemma 5.6.

    ``X*`` is representative when

    1. ``|K_{ε²}(D) \\ K_{2ε²}(X*)| < ε·|C|`` — almost every vertex that is
       well-connected to ``D`` is also recognised from the sample, and
    2. ``|K_{2ε²}(X*) \\ K_{3ε²}(C)| < ε²·|C|`` — almost no vertex recognised
       from the sample is poorly connected to the core.

    Claim 3 shows a random ``X* = S¹ ∩ C`` is representative with probability
    ``1 − (1/(ε²δ))·e^{−Ω(ε⁴δpn)}``; the experiment harness measures this
    empirically.
    """
    adjacency = _as_adjacency(graph_or_adj)
    d_set = set(dense_set)
    c_set = set(core)
    x_set = set(x_star)
    eps_sq = epsilon * epsilon

    k_eps2_d = k_eps(adjacency, d_set, eps_sq)
    k_2eps2_x = k_eps(adjacency, x_set, 2.0 * eps_sq)
    k_3eps2_c = k_eps(adjacency, c_set, 3.0 * eps_sq)

    condition_1 = len(k_eps2_d - k_2eps2_x) < epsilon * len(c_set)
    condition_2 = len(k_2eps2_x - k_3eps2_c) < eps_sq * len(c_set)
    return condition_1 and condition_2


def theorem_5_7_size_lower_bound(d_size: int, epsilon: float) -> float:
    """Theorem 5.7(2): the output size is at least ``(1 − 13ε/2)|D| − ε⁻²``."""
    if epsilon <= 0:
        return float(d_size)
    return (1.0 - 6.5 * epsilon) * d_size - 1.0 / (epsilon * epsilon)


def theorem_5_7_defect_bound(epsilon: float, delta: float) -> float:
    """Theorem 5.7(1): the output defect is at most ``ε/δ · 1/(1 − 13ε/2)``.

    For ε < 1/13 this is at most ``2ε/δ`` (footnote 2 of the paper).  The
    bound is clipped to 1.
    """
    if delta <= 0:
        raise ValueError("delta must be positive")
    denominator = 1.0 - 6.5 * epsilon
    if denominator <= 0:
        return 1.0
    return min(1.0, (epsilon / delta) / denominator)


# ---------------------------------------------------------------------------
# shared numeric predicates (used by the distributed nodes and the oracle)
# ---------------------------------------------------------------------------
#: Tolerance used when comparing an integer count against a fractional
#: threshold, so that the distributed and centralized implementations make
#: identical decisions despite floating-point rounding.
FRACTION_TOLERANCE = 1e-9


def meets_fraction(count: int, total: int, epsilon: float) -> bool:
    """Return True when ``count ≥ (1 − ε)·total`` (with shared tolerance).

    This is the comparison at the heart of Eq. (1); both the per-node local
    computation in the distributed protocol and the centralized oracle call
    this helper so their decisions can never diverge.
    """
    return count >= (1.0 - epsilon) * total - FRACTION_TOLERANCE


def popcount(value: int) -> int:
    """Number of set bits of a non-negative integer."""
    return bin(value).count("1")


def neighbor_mask(members: Sequence[int], neighbor_ids: Iterable[int]) -> int:
    """Bitmask of *members* (canonical order) that appear in *neighbor_ids*.

    With subsets encoded as bitmask indices, ``|Γ(v) ∩ X|`` is simply
    ``popcount(index & neighbor_mask(members, Γ(v)))`` — the fast path used
    by both implementations when enumerating the 2^{|S_i|} subsets.
    """
    neighbor_set = set(neighbor_ids)
    mask = 0
    for bit, member in enumerate(members):
        if member in neighbor_set:
            mask |= 1 << bit
    return mask


# ---------------------------------------------------------------------------
# canonical subset enumeration
# ---------------------------------------------------------------------------
def canonical_members(members: Iterable[int]) -> Tuple[int, ...]:
    """Members of a sampled component in canonical (sorted) order."""
    return tuple(sorted(set(members)))


def subset_from_index(members: Sequence[int], index: int) -> FrozenSet[int]:
    """Decode a bitmask *index* into a subset of *members* (canonical order)."""
    if index < 0 or index >= (1 << len(members)):
        raise ValueError(
            "subset index %d out of range for %d members" % (index, len(members))
        )
    return frozenset(
        members[bit] for bit in range(len(members)) if index & (1 << bit)
    )


def index_of_subset(members: Sequence[int], subset: Iterable[int]) -> int:
    """Encode *subset* of *members* as its canonical bitmask index."""
    position = {member: bit for bit, member in enumerate(members)}
    index = 0
    for node in subset:
        try:
            index |= 1 << position[node]
        except KeyError:
            raise ValueError("%r is not a member of the component" % (node,)) from None
    return index


def iter_nonempty_subset_indices(member_count: int) -> Iterator[int]:
    """Iterate the bitmask indices ``1 .. 2^k − 1`` of all non-empty subsets."""
    return iter(range(1, 1 << member_count))


def iter_nonempty_subsets(members: Sequence[int]) -> Iterator[Tuple[int, FrozenSet[int]]]:
    """Yield ``(index, subset)`` for every non-empty subset of *members*."""
    members = tuple(members)
    for index in iter_nonempty_subset_indices(len(members)):
        yield index, subset_from_index(members, index)


def all_subsets_of_size(members: Sequence[int], size: int) -> Iterator[FrozenSet[int]]:
    """Yield every subset of *members* with exactly *size* elements."""
    for combo in itertools.combinations(sorted(members), size):
        yield frozenset(combo)
