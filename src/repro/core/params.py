"""Algorithm parameters and the sampling probability of Theorem 5.7.

Theorem 2.1 instantiates Theorem 5.7 with

    p = (1/n) · O( log(1/(εδ)) / (ε⁴ δ) ),

which makes the expected sample size ``p·n`` a constant depending only on ε
and δ — this is what gives the constant round complexity of Corollary 2.2.
The exact constant hidden in the O(·) is not pinned down by the paper;
:func:`recommended_sample_probability` exposes it as a tunable multiplier
whose default was chosen empirically (see EXPERIMENTS.md) to give a useful
success probability at laptop-scale n without blowing up the 2^{|S|} subset
enumeration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional


def expected_sample_size(epsilon: float, delta: float, constant: float = 1.0) -> float:
    """The paper's expected sample size ``p·n = c · log(1/(εδ)) / (ε⁴δ)``.

    With the theorem's constants this is astronomically large for small ε;
    experiments use the *shape* of the formula with a small constant, or set
    the sample size directly.
    """
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must lie in (0, 1), got %r" % epsilon)
    if not 0 < delta <= 1:
        raise ValueError("delta must lie in (0, 1], got %r" % delta)
    return constant * math.log(1.0 / (epsilon * delta)) / (epsilon ** 4 * delta)


def recommended_sample_probability(
    n: int,
    epsilon: float,
    delta: float,
    constant: float = 1.0,
    max_expected_sample: Optional[float] = None,
) -> float:
    """Sampling probability ``p`` per Theorem 2.1 / Theorem 5.7.

    Parameters
    ----------
    n:
        Number of nodes in the communication graph.
    epsilon, delta:
        The algorithm's promise parameters: the graph is assumed to contain
        an ε³-near clique of size at least δn.
    constant:
        Multiplier for the O(·) of the theorem.  The paper's proof works for
        a sufficiently large constant; laptop-scale experiments use values
        well below 1 so that the 2^{|S|} local enumeration stays tractable.
    max_expected_sample:
        Optional cap on ``p·n`` (and hence on the expected exponent of the
        running time).  ``None`` means no cap.

    Returns
    -------
    float
        A probability in (0, 1].
    """
    if n <= 0:
        raise ValueError("n must be positive, got %r" % n)
    target = expected_sample_size(epsilon, delta, constant=constant)
    if max_expected_sample is not None:
        target = min(target, max_expected_sample)
    return max(0.0, min(1.0, target / n))


@dataclass
class AlgorithmParameters:
    """Input parameters of Algorithm ``DistNearClique``.

    Attributes
    ----------
    epsilon:
        The ε of the paper (0 < ε < 1/3; larger values are meaningless per
        Section 5.2).  The algorithm evaluates membership in
        ``K_{2ε²}(X)`` and ``T_ε(X)`` with this value.
    sample_probability:
        The i.i.d. probability p with which each node joins the sample S.
    max_sample_size:
        Deterministic guard: if the realised ``|S|`` exceeds this value the
        run is aborted (the paper's Section 4.1 running-time bound — the
        round and local-computation cost is exponential in |S|, Lemma 5.1).
        ``None`` disables the guard.
    min_output_size:
        Candidates smaller than this are disqualified in the decision stage.
        The paper notes small sets "can be disqualified if a lower bound on
        the size of the dense subgraph is known"; 0 keeps every candidate.
    use_step4f_sampling:
        Enable the Section 5.3 optimisation where membership in ``T_ε(X)`` is
        *estimated* from a sample of the neighbourhood instead of being
        computed exactly (reduces local computation; adds estimation error).
    step4f_sample_size:
        Number of neighbours sampled per node when the optimisation is on.
    """

    epsilon: float
    sample_probability: float
    max_sample_size: Optional[int] = 18
    min_output_size: int = 0
    use_step4f_sampling: bool = False
    step4f_sample_size: int = 32

    def __post_init__(self) -> None:
        if not 0 < self.epsilon < 1:
            raise ValueError("epsilon must lie in (0, 1), got %r" % self.epsilon)
        if not 0 <= self.sample_probability <= 1:
            raise ValueError(
                "sample_probability must lie in [0, 1], got %r"
                % self.sample_probability
            )
        if self.max_sample_size is not None and self.max_sample_size < 0:
            raise ValueError("max_sample_size must be non-negative or None")
        if self.min_output_size < 0:
            raise ValueError("min_output_size must be non-negative")
        if self.step4f_sample_size <= 0:
            raise ValueError("step4f_sample_size must be positive")

    @property
    def k_inner_epsilon(self) -> float:
        """The ``2ε²`` threshold used for the inner operator ``K_{2ε²}(X)``."""
        return 2.0 * self.epsilon * self.epsilon

    @classmethod
    def for_promise(
        cls,
        n: int,
        epsilon: float,
        delta: float,
        constant: float = 1.0,
        max_expected_sample: Optional[float] = 14.0,
        **kwargs,
    ) -> "AlgorithmParameters":
        """Parameters for the promise "an ε³-near clique of size ≥ δn exists".

        The sample probability follows Theorem 2.1's formula (capped so the
        expected sample stays simulable); remaining keyword arguments are
        forwarded to the constructor.
        """
        p = recommended_sample_probability(
            n,
            epsilon,
            delta,
            constant=constant,
            max_expected_sample=max_expected_sample,
        )
        return cls(epsilon=epsilon, sample_probability=p, **kwargs)
