"""E18 — the incremental service: small deltas, small recomputes.

The service layer (:mod:`repro.service`) answers a query after a batched
topology delta by re-running the CONGEST pipeline only on the *dirty
region* — the current graph's components containing a touched node — and
splicing the cached clean components back in (component locality: CONGEST
messages never cross components, so a clean component's outputs are
bitwise what a fresh run would recompute).  This benchmark quantifies the
payoff on a planted many-component workload:

* **Workload** — disjoint dense blocks on contiguous id ranges at
  n >= 4000 (the acceptance scale).  Disjoint by construction: a
  background edge probability would glue everything into one giant
  component and the dirty region would be the whole graph — the regime
  where the service correctly degrades to a full recompute and there is
  nothing to measure.

* **Bit-identity before timing** — for every delta, the incremental
  answer's outputs (labels, sample, candidates, components) are asserted
  equal to a fresh full ``DistNearCliqueRunner`` run on a fresh
  ``Network`` of the final edge set, *then* the clocks are compared.
  (The incremental result's *metrics* cover only the region actually
  executed — that is the saving being measured, not a divergence.)

* **The gate** — summed over k single-block deltas, the incremental
  query must beat the fresh full recompute by ``SPEEDUP_FLOOR`` (full) /
  ``QUICK_SPEEDUP_FLOOR`` (quick CI mode).  Single-process batched engine
  on both sides, so the floor holds on any host — no CPU-count skip.

Run directly (``python benchmarks/bench_e18_incremental_service.py``) or
via the pytest-benchmark harness; quick mode (``REPRO_BENCH_QUICK=1`` or
``--quick``) keeps n at the gate scale and trims the delta count.
"""

from __future__ import annotations

import os
import random
import sys
import time

import networkx as nx

from repro.analysis import tables
from repro.congest.network import Network
from repro.core.dist_near_clique import DistNearCliqueRunner
from repro.core.params import AlgorithmParameters
from repro.service import NearCliqueService

QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0") or "0"))

#: Minimum acceptable incremental-over-full speedup, summed over deltas.
SPEEDUP_FLOOR = 2.0
QUICK_SPEEDUP_FLOOR = 1.3

#: Nodes per dense block; the dirty region of a single-block delta.
BLOCK = 80

#: The query seed every comparison runs under.
SEED = 11


def _blocks_graph(n: int, p_in: float, seed: int) -> nx.Graph:
    """Disjoint dense blocks on contiguous id ranges (no background)."""
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for offset in range(0, n, BLOCK):
        dense = nx.gnp_random_graph(BLOCK, p_in, seed=seed + offset)
        graph.add_edges_from((offset + u, offset + v) for u, v in dense.edges())
    return graph


def _parameters(n: int) -> AlgorithmParameters:
    return AlgorithmParameters(
        epsilon=0.25,
        sample_probability=8.0 / n,
        max_sample_size=None,
    )


def _workload(quick: bool):
    n = 4000 if quick else 6000
    return (
        "planted blocks (n=%d, %d components of %d)" % (n, n // BLOCK, BLOCK),
        _blocks_graph(n, p_in=0.1, seed=5),
    )


def _outputs(result):
    return (
        result.labels,
        result.sample,
        tuple(result.candidates),
        result.components,
        result.aborted,
    )


def _fresh_full(graph: nx.Graph, parameters: AlgorithmParameters):
    """A fresh full run on the current edge set; returns (seconds, outputs)."""
    runner = DistNearCliqueRunner(parameters=parameters)
    start = time.perf_counter()
    result = runner.run(network=Network(graph.copy(), seed=SEED))
    elapsed = time.perf_counter() - start
    assert not result.aborted, "benchmark workload aborted: %s" % result.abort_reason
    return elapsed, _outputs(result)


def _delta_for_step(graph: nx.Graph, step: int):
    """One remove + one add inside block *step* (deterministic)."""
    rng = random.Random(1000 + step)
    offset = (step * 7 % (graph.number_of_nodes() // BLOCK)) * BLOCK
    members = range(offset, offset + BLOCK)
    present = [
        (u, v) for u in members for v in members if u < v and graph.has_edge(u, v)
    ]
    absent = [
        (u, v)
        for u in members
        for v in members
        if u < v and not graph.has_edge(u, v)
    ]
    return [rng.choice(absent)], [rng.choice(present)]


def _service_table(name, graph, quick):
    parameters = _parameters(graph.number_of_nodes())
    deltas = 3 if quick else 6
    service = NearCliqueService(graph.copy(), parameters)
    rows = []
    inc_total = full_total = 0.0
    with service:
        warmup = service.query(seed=SEED)
        assert warmup.record.kind == "full"
        assert not warmup.result.aborted

        for step in range(deltas):
            additions, removals = _delta_for_step(graph, step)
            service.apply_delta(additions, removals)
            graph.add_edges_from(additions)
            graph.remove_edges_from(removals)

            start = time.perf_counter()
            outcome = service.query(seed=SEED)
            inc_seconds = time.perf_counter() - start

            full_seconds, oracle = _fresh_full(graph, parameters)
            # Bit-identity before any timing claim.
            assert outcome.record.kind == "incremental", outcome.record
            assert _outputs(outcome.result) == oracle, (
                "incremental query diverged from the fresh full run at "
                "delta %d" % step
            )

            inc_total += inc_seconds
            full_total += full_seconds
            rows.append(
                [
                    step,
                    outcome.record.recomputed_nodes,
                    round(100.0 * outcome.record.recomputed_fraction, 2),
                    round(inc_seconds * 1e3, 1),
                    round(full_seconds * 1e3, 1),
                    round(full_seconds / max(inc_seconds, 1e-9), 1),
                ]
            )

    tables.print_table(
        ["delta", "recomputed nodes", "% of n", "incremental ms", "full ms", "speedup"],
        rows,
        title="E18  %s — query after one-block deltas (bit-identical outputs)"
        % name,
    )
    speedup = full_total / max(inc_total, 1e-9)
    stats = service.stats
    print(
        "incremental-over-full speedup (summed over %d deltas): %.1fx  |  "
        "nodes recomputed: %d of %d-node queries  |  kinds: %d full / %d "
        "incremental / %d cached"
        % (
            deltas,
            speedup,
            stats.nodes_recomputed,
            graph.number_of_nodes(),
            stats.full_queries,
            stats.incremental_queries,
            stats.cached_hits,
        )
    )
    floor = QUICK_SPEEDUP_FLOOR if quick else SPEEDUP_FLOOR
    assert speedup >= floor, (
        "incremental service is only %.2fx a fresh full recompute on %s, "
        "below the %.2fx floor" % (speedup, name, floor)
    )
    return speedup


def _run_suite(quick: bool):
    name, graph = _workload(quick)
    return _service_table(name, graph, quick)


def bench_e18_incremental_service(benchmark):
    """pytest-benchmark entry point, matching the other E* modules."""
    _run_suite(QUICK)

    _name, graph = _workload(quick=True)
    parameters = _parameters(graph.number_of_nodes())
    service = NearCliqueService(graph.copy(), parameters)
    with service:
        service.query(seed=SEED)
        step = {"i": 0}

        def one_delta_query():
            additions, removals = _delta_for_step(graph, step["i"])
            step["i"] += 1
            service.apply_delta(additions, removals)
            graph.add_edges_from(additions)
            graph.remove_edges_from(removals)
            return service.query(seed=SEED)

        benchmark(one_delta_query)


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    quick = QUICK or "--quick" in argv
    _run_suite(quick)
    return 0


if __name__ == "__main__":
    sys.exit(main())
