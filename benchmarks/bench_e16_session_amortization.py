"""E16 — execution sessions: amortising process-backend setup across phases.

The paper's algorithm (Section 4, Lemma 5.1) is a *composite* of ~14
pipelined CONGEST phases over one fixed network.  PR 4's process backend
pays its setup per ``execute`` — spawn one worker per shard, ship the
routing tables, reap the pool — which a composite runner multiplies by the
phase count.  PR 5's execution sessions (``CongestConfig.session_mode ==
"persistent"``) open one :class:`repro.congest.engine.CongestSession` for
the whole pipeline: the worker pool survives execute boundaries and is
*re-armed* between phases (protocol + context deltas over the pipes,
nothing else), and the CSR/owner tables live in one
``multiprocessing.shared_memory`` mapping attached once per worker.  This
benchmark quantifies what that buys end to end:

* **Wall-clock speedup** — the full ``DistNearCliqueRunner`` (sampling +
  exploration + decision, 15 ``execute`` calls) at n ≥ 4000 on the E15
  community workload, process backend, per-execute pools versus one
  persistent session.  A forced sample inside one community keeps the
  exploration stage deterministic and bounded, so both modes do identical
  protocol work and the difference is pure setup.  Outputs and metrics are
  bit-identical by the engine contract — asserted against the batched
  fast path *before* any timing is reported (the differential suite's
  session arm holds every backend to the same bar).  The gate: on a host
  with at least two CPUs, session mode must beat per-execute pools by
  ``SESSION_SPEEDUP_FLOOR`` (full) / ``QUICK_SPEEDUP_FLOOR`` (quick CI
  mode).  On a single-CPU host the timing gate is skipped — the process
  backend itself is not competitive there, so the ratio gates nothing
  meaningful.

* **Setup seconds per phase** — coordinator-side spawn+arm time per
  ``execute``, from :class:`repro.congest.sharding.ShardingStats` in both
  modes (per-execute: a stats-collecting engine instance; session: the
  runner's ``last_session_stats``), next to the **shared-memory bytes
  mapped** — the tables that now ship once per session instead of once
  per phase.

Run directly (``python benchmarks/bench_e16_session_amortization.py``) or
via the pytest-benchmark harness like the other experiments; quick mode
(``REPRO_BENCH_QUICK=1`` or ``--quick``) keeps n at the gate scale but
trims repetitions so it doubles as a CI gate.
"""

from __future__ import annotations

import os
import random
import sys
import time

import networkx as nx

from repro.analysis import tables
from repro.congest.config import CongestConfig
from repro.congest.sharding import ShardedEngine
from repro.core.dist_near_clique import DistNearCliqueRunner

QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0") or "0"))

#: Shard count (== worker processes) of the comparison.
SHARDS = 4

#: Minimum acceptable session-over-per-execute speedup when >= 2 CPUs
#: exist.  Full scale is the acceptance gate; quick scale is a lenient CI
#: tripwire (shared runners are noisy).
SESSION_SPEEDUP_FLOOR = 1.3
QUICK_SPEEDUP_FLOOR = 1.1

#: Forced sample (block-0 node ids of the community workload): keeps the
#: sampling stage deterministic and the exploration stage bounded, so the
#: two timed modes do byte-identical protocol work.
FORCED_SAMPLE = (2, 7, 19, 41, 83)


def _community_graph(n: int, blocks: int, p_in: float, p_out: float, seed: int):
    """Equal dense blocks with contiguous ids over a sparse background."""
    rng = random.Random(seed)
    graph = nx.Graph()
    size = n // blocks
    for block in range(blocks):
        dense = nx.gnp_random_graph(size, p_in, seed=seed + block)
        offset = block * size
        graph.add_edges_from((offset + u, offset + v) for u, v in dense.edges())
    graph.add_nodes_from(range(n))
    for _ in range(int(p_out * n * n / 2.0)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            graph.add_edge(u, v)
    return graph


def _workload(quick: bool):
    # The gate scale stays at n >= 4000 even in quick mode — the ISSUE's
    # acceptance bar; quick mode trims repetitions instead.
    n = 4000 if quick else 6000
    graph = _community_graph(n, SHARDS, 0.04, 2.0 / n, seed=7)
    return "web-communities (n=%d, %d blocks)" % (n, SHARDS), graph


def _result_fingerprint(result):
    m = result.metrics
    return (
        result.labels,
        result.sample,
        result.aborted,
        m.rounds,
        m.total_messages,
        m.total_bits,
        m.max_message_bits,
        [
            (r.round_index, r.messages_sent, r.bits_sent, r.active_nodes)
            for r in m.per_round
        ],
    )


def _run_once(graph, session_mode, engine=None, seed=11):
    """One full DistNearClique execution; returns (seconds, fingerprint, stats)."""
    n = graph.number_of_nodes()
    config = CongestConfig(
        engine="sharded",
        shards=SHARDS,
        shard_backend="process",
        session_mode=session_mode,
    ).with_log_budget(n)
    runner = DistNearCliqueRunner(
        epsilon=0.25,
        sample_probability=0.001,
        max_sample_size=None,
        rng=random.Random(seed),
        config=config,
        engine=engine,
    )
    start = time.perf_counter()
    result = runner.run(graph, sample=FORCED_SAMPLE)
    elapsed = time.perf_counter() - start
    assert not result.aborted, "benchmark workload aborted: %s" % result.abort_reason
    return elapsed, _result_fingerprint(result), runner.last_session_stats


def _run_batched_oracle(graph, seed=11):
    n = graph.number_of_nodes()
    runner = DistNearCliqueRunner(
        epsilon=0.25,
        sample_probability=0.001,
        max_sample_size=None,
        rng=random.Random(seed),
        config=CongestConfig(engine="batched").with_log_budget(n),
    )
    return _result_fingerprint(runner.run(graph, sample=FORCED_SAMPLE))


def _amortization_table(name, graph, quick):
    # Bit-identity before any timing claim: both process modes against the
    # batched fast path (itself differentially pinned to the reference).
    oracle = _run_batched_oracle(graph)

    # Per-execute mode runs through a stats-collecting engine instance so
    # the spawn+arm seconds per phase are measured, not inferred.
    percall_engine = ShardedEngine(
        shards=SHARDS, backend="process", collect_stats=True
    )
    timings = {"per-execute pools": float("inf"), "persistent session": float("inf")}
    setup = {}
    session_stats = None
    repetitions = 2 if quick else 3
    # Interleaved best-of-N: a ratio gate needs both sides sampled under
    # comparable load.
    for _ in range(repetitions):
        elapsed, fingerprint, _stats = _run_once(
            graph, "per-call", engine=percall_engine
        )
        assert fingerprint == oracle, "per-execute process diverged from batched"
        timings["per-execute pools"] = min(timings["per-execute pools"], elapsed)

        elapsed, fingerprint, stats = _run_once(graph, "persistent")
        assert fingerprint == oracle, "session-mode process diverged from batched"
        timings["persistent session"] = min(
            timings["persistent session"], elapsed
        )
        session_stats = stats

    phases = len(session_stats.phases)
    setup["per-execute pools"] = (
        percall_engine.stats.setup_seconds / max(1, percall_engine.stats.runs)
    )
    setup["persistent session"] = session_stats.setup_seconds_per_phase

    speedup = timings["per-execute pools"] / max(
        timings["persistent session"], 1e-9
    )
    rows = [
        [
            label,
            round(timings[label], 3),
            round(timings[label] / timings["per-execute pools"], 2),
            round(setup[label] * 1e3, 2),
        ]
        for label in ("per-execute pools", "persistent session")
    ]
    tables.print_table(
        ["mode", "wall s", "vs per-execute", "setup ms/phase"],
        rows,
        title="E16  %s — DistNearCliqueRunner end to end (%d phases, %d "
        "shards, process backend, bit-identical runs)" % (name, phases, SHARDS),
    )
    print(
        "session-over-per-execute speedup: %.2fx  |  shm bytes mapped: %d  |  "
        "boundary bytes/run: %d over %d barrier rounds"
        % (
            speedup,
            session_stats.shm_bytes,
            session_stats.boundary_bytes,
            session_stats.barrier_rounds,
        )
    )

    cpus = os.cpu_count() or 1
    if cpus >= 2:
        floor = QUICK_SPEEDUP_FLOOR if quick else SESSION_SPEEDUP_FLOOR
        assert speedup >= floor, (
            "persistent session is only %.2fx per-execute pools on %s "
            "(%d CPUs), below the %.2fx floor" % (speedup, name, cpus, floor)
        )
    else:
        print(
            "(session-speedup gate skipped: %d CPU(s) available; the "
            "process backend needs >= 2 to be the configuration anyone "
            "runs)" % cpus
        )
    return timings


def _run_suite(quick: bool):
    name, graph = _workload(quick)
    return _amortization_table(name, graph, quick)


def bench_e16_session_amortization(benchmark):
    """pytest-benchmark entry point, matching the other E* modules."""
    _run_suite(QUICK)

    _name, graph = _workload(quick=True)
    benchmark(lambda: _run_once(graph, "persistent"))


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    quick = QUICK or "--quick" in argv
    _run_suite(quick)
    return 0


if __name__ == "__main__":
    sys.exit(main())
