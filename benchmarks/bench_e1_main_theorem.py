"""E1 — Theorem 2.1 / Theorem 5.7 (the main result).

Workload: a planted ε³-near clique of size δn in a sparse background.
Measured per parameter point: success rate (Theorem 5.7's size + defect
criteria, see ``repro.analysis.experiment.theorem_success``), mean recall of
the planted set, mean output defect against the paper's defect bound, and
the abort rate of the deterministic running-time guard.

Paper prediction: with probability Ω(1) the output is a ≈(2ε/δ)-near clique
of size (1 − 13ε/2)|D| − ε⁻²; success improves as ε shrinks or the expected
sample grows.
"""

from __future__ import annotations

from repro.analysis import experiment, tables, theory
from repro.core import near_clique


SWEEP = [
    {"epsilon": 0.15, "delta": 0.5, "n": 80},
    {"epsilon": 0.20, "delta": 0.5, "n": 80},
    {"epsilon": 0.30, "delta": 0.5, "n": 80},
    {"epsilon": 0.20, "delta": 0.3, "n": 120},
    {"epsilon": 0.20, "delta": 0.5, "n": 160},
]
TRIALS = 30


def _run_point(point, trials=TRIALS, seed=11):
    return experiment.run_planted_trials(
        n=point["n"],
        epsilon=point["epsilon"],
        delta=point["delta"],
        trials=trials,
        seed=seed,
        engine="centralized",
        expected_sample=9.0,
    )


def bench_e1_main_theorem(benchmark, bench_rng):
    rows = []
    for point in SWEEP:
        aggregate = _run_point(point)
        defect_bound = near_clique.theorem_5_7_defect_bound(
            point["epsilon"], point["delta"]
        )
        fallback = min(1.0, 2 * point["epsilon"] / point["delta"])
        rows.append(
            [
                point["epsilon"],
                point["delta"],
                point["n"],
                aggregate.trials,
                aggregate.success.rate,
                aggregate.mean_of("recall"),
                aggregate.mean_of("output_defect"),
                max(defect_bound, fallback),
                aggregate.abort_rate,
            ]
        )
    tables.print_table(
        [
            "eps",
            "delta",
            "n",
            "trials",
            "success",
            "recall",
            "defect",
            "defect_bound",
            "abort_rate",
        ],
        rows,
        title="E1  Theorem 5.7: planted eps^3-near clique of size delta*n",
    )

    # Shape checks: the algorithm succeeds with constant probability across
    # the sweep and its output respects the defect bound on average.
    assert all(row[4] >= 0.5 for row in rows), "success probability not Omega(1)"
    assert all(row[6] <= row[7] + 0.05 for row in rows), "defect bound violated"

    benchmark(
        lambda: _run_point({"epsilon": 0.2, "delta": 0.5, "n": 80}, trials=3, seed=7)
    )


def bench_e1_distributed_spot_check(benchmark):
    """The same experiment executed on the CONGEST simulator (fewer trials)."""
    aggregate = experiment.run_planted_trials(
        n=60,
        epsilon=0.2,
        delta=0.5,
        trials=5,
        seed=13,
        engine="distributed",
        expected_sample=7.0,
    )
    tables.print_table(
        ["trials", "success", "recall", "mean_rounds", "max_message_bits"],
        [
            [
                aggregate.trials,
                aggregate.success.rate,
                aggregate.mean_of("recall"),
                aggregate.mean_of("rounds"),
                aggregate.max_of("max_message_bits"),
            ]
        ],
        title="E1b  Theorem 5.7 on the CONGEST simulator",
    )
    assert aggregate.success.rate >= 0.4
    benchmark(
        lambda: experiment.run_planted_trials(
            n=50,
            epsilon=0.2,
            delta=0.5,
            trials=1,
            seed=3,
            engine="distributed",
            expected_sample=6.0,
        )
    )
