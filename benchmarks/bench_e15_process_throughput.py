"""E15 — process-backed sharding: multi-core throughput and boundary bytes.

PR 3's sharded engine proved the partition-parallel design but its thread
mode is GIL-bound, so it could only ever tie the serial mode on wall clock.
The ``process`` backend (:mod:`repro.congest.sharding.workers`) runs one
worker process per shard — true multi-core execution — paying for it with
serialization of the boundary traffic, packed by
:mod:`repro.congest.sharding.wire`.  This benchmark quantifies both sides
of that trade on a large chatty workload:

* **Wall-clock speedup** — flooding + BFS primitives at n ≥ 4000 on a
  *community* workload (dense equal-size blocks with contiguous ids over a
  sparse random background — the paper's tightly-knit-web-communities
  motivation, and the structure sharding exists for: the contiguous
  partition keeps the cut small and the shards balanced) under serial
  sharded versus process sharded, same graph, same plan.  The engines are
  bit-identical by contract, so outputs and metrics are asserted equal
  before any timing is reported.  The gate: on a host with at least two
  CPUs, the process backend must beat serial sharded by
  ``PROCESS_SPEEDUP_FLOOR`` (full) / ``QUICK_SPEEDUP_FLOOR`` (quick CI
  mode).  On a single-CPU host the timing gate is skipped — worker
  processes cannot show parallelism there, only pipe overhead.

* **Boundary bytes per round** — for each partitioner strategy, the packed
  wire bytes crossing the round barrier per round
  (:attr:`repro.congest.sharding.ShardingStats.bytes_per_round`) next to
  the cut fraction.  This is the serialization bill the partitioner
  quality item exists to shrink: ``bfs+refine`` should ship fewer bytes
  than ``bfs`` wherever it cuts fewer edges.

Run directly (``python benchmarks/bench_e15_process_throughput.py``) or via
the pytest-benchmark harness like the other experiments; quick mode
(``REPRO_BENCH_QUICK=1`` or ``--quick``) keeps n at the gate scale but
trims repetitions so it doubles as a CI gate.
"""

from __future__ import annotations

import os
import random
import sys
import time

import networkx as nx

from repro.analysis import tables
from repro.congest.config import CongestConfig
from repro.congest.network import Network
from repro.congest.scheduler import run_protocol
from repro.congest.sharding import PARTITION_STRATEGIES, ShardedEngine
from repro.primitives.bfs_tree import KEY_PARTICIPANT, MinIdBFSTreeProtocol
from repro.primitives.leader_election import MinIdFloodingProtocol

QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0") or "0"))

#: Shard count (== worker processes) of the headline comparison.
SHARDS = 4

#: Minimum acceptable process-over-serial speedup when >= 2 CPUs exist.
#: Full scale is the acceptance gate; quick scale is a lenient CI tripwire
#: (shared runners are noisy and may expose only 2 cores).
PROCESS_SPEEDUP_FLOOR = 1.5
QUICK_SPEEDUP_FLOOR = 1.1


def _community_graph(n: int, blocks: int, p_in: float, p_out: float, seed: int):
    """Equal dense blocks with contiguous ids over a sparse background."""
    rng = random.Random(seed)
    graph = nx.Graph()
    size = n // blocks
    for block in range(blocks):
        dense = nx.gnp_random_graph(size, p_in, seed=seed + block)
        offset = block * size
        graph.add_edges_from((offset + u, offset + v) for u, v in dense.edges())
    graph.add_nodes_from(range(n))
    for _ in range(int(p_out * n * n / 2.0)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            graph.add_edge(u, v)
    return graph


def _workload(quick: bool):
    # The gate scale stays at n >= 4000 even in quick mode — below that the
    # per-round Python work cannot amortise the barrier pipes and the
    # benchmark would gate nothing; quick mode trims repetitions instead.
    n = 4000 if quick else 6000
    graph = _community_graph(n, SHARDS, 0.04, 2.0 / n, seed=7)
    return "web-communities (n=%d, %d blocks)" % (n, SHARDS), graph


def _fingerprint(result):
    m = result.metrics
    return (
        result.outputs,
        m.rounds,
        m.total_messages,
        m.total_bits,
        m.max_message_bits,
    )


def _run_once(graph, config):
    network = Network(graph, seed=9)
    per_node = {v: {KEY_PARTICIPANT: True} for v in graph.nodes()}
    protocols = [MinIdFloodingProtocol(), MinIdBFSTreeProtocol()]
    start = time.perf_counter()
    fingerprints = []
    for protocol in protocols:
        result = run_protocol(
            network,
            protocol,
            config=config.with_log_budget(graph.number_of_nodes()),
            per_node_inputs=per_node,
        )
        fingerprints.append(_fingerprint(result))
    return time.perf_counter() - start, fingerprints


def _throughput_table(name, graph, quick):
    modes = [
        ("sharded serial", CongestConfig().with_sharding(SHARDS, backend="serial")),
        ("sharded process", CongestConfig().with_sharding(SHARDS, backend="process")),
    ]
    timings, fingerprints = {}, {}
    # Best-of-N with the modes interleaved: a ratio gate needs both sides
    # sampled under comparable load, and serial leading each sweep means
    # the process timings never benefit from a warmer cache.
    repetitions = 2 if quick else 3
    for _ in range(repetitions):
        for label, config in modes:
            elapsed, fingerprint = _run_once(graph, config)
            timings[label] = min(timings.get(label, float("inf")), elapsed)
            fingerprints[label] = fingerprint

    # Bit-identity before any timing claim (the engine contract).
    assert fingerprints["sharded process"] == fingerprints["sharded serial"], (
        "process backend diverged from serial sharded on %s" % name
    )

    speedup = timings["sharded serial"] / max(timings["sharded process"], 1e-9)
    rows = [
        [label, round(timings[label], 3), round(timings[label] / timings["sharded serial"], 2)]
        for label, _ in modes
    ]
    tables.print_table(
        ["mode", "wall s", "vs serial"],
        rows,
        title="E15  %s — flooding + BFS wall time (%d shards, bit-identical runs)"
        % (name, SHARDS),
    )
    print("process-over-serial speedup: %.2fx" % speedup)

    cpus = os.cpu_count() or 1
    if cpus >= 2:
        if quick:
            # Shared 2-3 core CI runners run 4 workers + a coordinator
            # under noisy neighbours; only demand parity there and the
            # real floor once enough cores exist to host the workers.
            floor = QUICK_SPEEDUP_FLOOR if cpus >= 4 else 1.0
        else:
            floor = PROCESS_SPEEDUP_FLOOR
        assert speedup >= floor, (
            "process backend is only %.2fx serial sharded on %s "
            "(%d CPUs), below the %.2fx floor" % (speedup, name, cpus, floor)
        )
    else:
        print(
            "(process-speedup gate skipped: %d CPU(s) available, need >= 2 "
            "to show parallelism rather than pipe overhead)" % cpus
        )
    return timings


def _boundary_bytes_table(name, graph):
    """Packed boundary traffic per strategy: the serialization bill."""
    per_node = {v: {KEY_PARTICIPANT: True} for v in graph.nodes()}
    rows = []
    reduction_baseline = None
    for strategy in PARTITION_STRATEGIES:
        engine = ShardedEngine(
            shards=SHARDS, strategy=strategy, backend="process", collect_stats=True
        )
        network = Network(graph, seed=9)
        result = run_protocol(
            network,
            MinIdBFSTreeProtocol(),
            config=CongestConfig().with_log_budget(graph.number_of_nodes()),
            per_node_inputs=per_node,
            engine=engine,
        )
        stats = engine.stats
        assert stats.protocol_messages == result.metrics.total_messages
        assert stats.barrier_rounds > 0 and stats.boundary_bytes > 0
        plan = stats.plans[0]
        if strategy == "bfs":
            reduction_baseline = plan.cut_edges
        rows.append(
            [
                strategy,
                "%d/%d" % (plan.cut_edges, plan.total_edges),
                round(plan.cut_fraction, 3),
                round(stats.cross_shard_fraction, 3),
                stats.boundary_bytes,
                int(stats.bytes_per_round),
            ]
        )
        if strategy == "bfs+refine" and reduction_baseline:
            print(
                "bfs+refine cut-edge reduction vs bfs: %.1f%%"
                % (100.0 * (1.0 - plan.cut_edges / float(reduction_baseline)))
            )
    tables.print_table(
        [
            "strategy",
            "cut edges",
            "edge cut frac",
            "msg cut frac",
            "boundary bytes",
            "bytes/round",
        ],
        rows,
        title="E15  %s — packed boundary traffic per partitioner strategy "
        "(%d shards, process backend)" % (name, SHARDS),
    )
    return rows


def _run_suite(quick: bool):
    name, graph = _workload(quick)
    timings = _throughput_table(name, graph, quick)
    _boundary_bytes_table(name, graph)
    return timings


def bench_e15_process_throughput(benchmark):
    """pytest-benchmark entry point, matching the other E* modules."""
    _run_suite(QUICK)

    name, graph = _workload(quick=True)
    config = CongestConfig().with_sharding(SHARDS, backend="process")
    benchmark(lambda: _run_once(graph, config))


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    quick = QUICK or "--quick" in argv
    _run_suite(quick)
    return 0


if __name__ == "__main__":
    sys.exit(main())
