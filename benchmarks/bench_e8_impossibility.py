"""E8 — the Section 6 impossibility argument.

Workload: the path-of-cliques graph (an n/2-clique A and an n/4-clique B
joined by an n/4-long path) and its second scenario in which all edges
inside A are deleted.

Measured:

* the two scenarios are *identical* inside every B-node's T-hop view for all
  T < |P| (so no T-round algorithm can give B different outputs in the two
  scenarios — the indistinguishability at the heart of the argument);
* ``DistNearClique`` behaves exactly as the paper says a fast algorithm
  must: it outputs a *collection* of disjoint near-cliques (B may well be
  labelled in both scenarios) rather than only the globally largest one.
"""

from __future__ import annotations

import random

from repro.analysis import tables
from repro.core.dist_near_clique import DistNearCliqueRunner
from repro.graphs import analysis, generators


def _local_view_agreement(n=48):
    import networkx as nx

    graph, partition = generators.path_of_cliques(n)
    stripped = generators.delete_clique_edges(graph, partition["A"])
    path_length = len(partition["P"])
    b_probe = max(partition["B"])
    # The first radius at which B's view can change is the distance at which
    # an A-internal edge enters the ball: one hop past the nearest A vertex.
    nearest_a = min(
        nx.shortest_path_length(graph, b_probe, a) for a in partition["A"]
    )
    rows = []
    for radius in (1, path_length // 2, path_length - 1, nearest_a + 1):
        same = analysis.local_view_signature(
            graph, b_probe, radius
        ) == analysis.local_view_signature(stripped, b_probe, radius)
        rows.append([radius, path_length, same])
    return rows, graph, stripped, partition


def bench_e8_indistinguishability(benchmark):
    rows, _, _, _ = _local_view_agreement()
    tables.print_table(
        ["view radius T", "|P|", "B's T-hop views identical"],
        rows,
        title="E8a  Section 6: B cannot distinguish the two scenarios below ~|P| rounds",
    )
    for radius, path_length, same in rows:
        if radius < path_length:
            assert same, "views must agree below the path length"
        else:
            assert not same, "views must differ once the A-clique edges are visible"

    benchmark(lambda: _local_view_agreement(32))


def bench_e8_collection_output(benchmark):
    _, graph, stripped, partition = _local_view_agreement()
    epsilon = 0.2
    rows = []
    for name, scenario in (("A intact", graph), ("A edges deleted", stripped)):
        hits_a = 0
        hits_b = 0
        trials = 12
        for seed in range(trials):
            runner = DistNearCliqueRunner(
                epsilon=epsilon,
                sample_probability=0.12,
                max_sample_size=11,
                rng=random.Random(seed),
            )
            result = runner.run(scenario)
            clusters = result.clusters.values()
            hits_a += any(
                len(c & partition["A"]) >= 0.7 * len(partition["A"]) for c in clusters
            )
            hits_b += any(
                len(c & partition["B"]) >= 0.7 * len(partition["B"]) for c in clusters
            )
        rows.append([name, trials, hits_a / trials, hits_b / trials])
    tables.print_table(
        ["scenario", "trials", "A recovered", "B recovered"],
        rows,
        title="E8b  DistNearClique outputs a collection: B is found whether or not A exists",
    )
    # In the intact scenario the big clique A is found; B is also routinely
    # output as a separate near-clique — which is exactly why a sub-diameter
    # algorithm cannot promise to output only the global maximum.
    assert rows[0][2] >= 0.5
    assert rows[1][3] >= 0.5

    benchmark(
        lambda: DistNearCliqueRunner(
            epsilon=0.2, sample_probability=0.1, max_sample_size=10, rng=random.Random(0)
        ).run(graph)
    )
