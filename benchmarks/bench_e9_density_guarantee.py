"""E9 — Lemma 5.3: every candidate T_ε(X) with t members is an (nε/t)-near clique.

Workload: planted near-clique and plain random graphs.  For every non-empty
subset X of a sampled component we evaluate T_ε(X) and verify its defect
against the lemma's bound; the table reports how tight the bound is in
practice (measured defect as a fraction of the bound) for the candidates
that actually matter (the per-component maximisers).
"""

from __future__ import annotations

import random

from repro.analysis import stats, tables
from repro.core import near_clique
from repro.core.reference import CentralizedNearCliqueFinder
from repro.graphs import generators


def _candidate_defects(graph, epsilon, sample_sizes, seed=8):
    n = graph.number_of_nodes()
    finder = CentralizedNearCliqueFinder(graph, epsilon)
    rng = random.Random(seed)
    checked = 0
    violations = 0
    tightness = []
    best_rows = []
    for size in sample_sizes:
        sample = set(rng.sample(sorted(graph.nodes()), size))
        for members in finder.sample_components(sample):
            analysis = finder.analyze_component(members)
            for index, t_set in analysis.t_sets.items():
                if len(t_set) <= 1:
                    continue
                checked += 1
                defect = near_clique.near_clique_defect(graph, t_set)
                bound = near_clique.lemma_5_3_defect_bound(n, len(t_set), epsilon)
                if defect > bound + 1e-9:
                    violations += 1
                if bound > 0:
                    tightness.append(defect / bound)
            best = analysis.t_sets[analysis.best_index]
            if len(best) > 1:
                defect = near_clique.near_clique_defect(graph, best)
                bound = near_clique.lemma_5_3_defect_bound(n, len(best), epsilon)
                best_rows.append((len(best), defect, bound))
    return checked, violations, tightness, best_rows


def bench_e9_lemma_5_3(benchmark):
    epsilon = 0.2
    workloads = [
        ("planted near-clique", generators.planted_near_clique(70, 0.5, 0.008, 0.05, seed=3)[0]),
        ("sparse random", generators.erdos_renyi(70, 0.08, seed=4)),
        ("dense random", generators.erdos_renyi(60, 0.3, seed=5)),
    ]
    rows = []
    for name, graph in workloads:
        checked, violations, tightness, best_rows = _candidate_defects(
            graph, epsilon, sample_sizes=[3, 5, 7]
        )
        rows.append(
            [
                name,
                checked,
                violations,
                stats.mean(tightness),
                stats.quantile(tightness, 0.95) if tightness else 0.0,
                stats.mean([r[1] for r in best_rows]) if best_rows else 0.0,
            ]
        )
        assert violations == 0, "Lemma 5.3 violated on %s" % name
    tables.print_table(
        [
            "workload",
            "candidates checked",
            "violations",
            "mean defect/bound",
            "p95 defect/bound",
            "best-candidate defect",
        ],
        rows,
        title="E9  Lemma 5.3: candidate density guarantee (defect <= n*eps/t)",
    )

    benchmark(
        lambda: _candidate_defects(
            generators.erdos_renyi(50, 0.15, seed=9), 0.2, sample_sizes=[4]
        )
    )
