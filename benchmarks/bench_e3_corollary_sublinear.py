"""E3 — Corollary 2.3: strict cliques of slightly sub-linear size.

Workload: a strict clique of size n / (log log n)^α planted in a sparse
background, with ε = 1 / log log n (an o(1) sequence) and the boosted runner
standing in for the corollary's polylogarithmic-round amplification.

Paper prediction: the output is an o(1)-near clique containing a
(1 − o(1)) fraction of the planted clique, with probability 1 − o(1) —
empirically, success rate and recall should not degrade (and the output
defect should shrink) as n grows.
"""

from __future__ import annotations

import random

from repro.analysis import stats, tables, theory
from repro.core.boosting import BoostedNearCliqueRunner
from repro.core import near_clique
from repro.graphs import generators


N_SWEEP = [60, 100, 150, 220]
ALPHA = 0.8
TRIALS = 12
REPETITIONS = 4


def _one_point(n, trials=TRIALS, seed=3):
    clique_size = theory.corollary_2_3_clique_size(n, ALPHA)
    epsilon = max(0.12, theory.corollary_2_3_epsilon(n))
    graph, planted = generators.planted_clique(
        n, clique_size, background_p=0.04, seed=seed
    )
    rng = random.Random(seed)
    successes = []
    recalls = []
    defects = []
    for _ in range(trials):
        runner = BoostedNearCliqueRunner(
            epsilon=epsilon,
            sample_probability=min(1.0, 8.0 / n),
            repetitions=REPETITIONS,
            max_sample_size=13,
            rng=random.Random(rng.getrandbits(48)),
        )
        result = runner.run(graph)
        recall = result.recall_of(planted.members)
        defect = near_clique.near_clique_defect(graph, result.largest_cluster())
        recalls.append(recall)
        defects.append(defect)
        successes.append(recall >= 1.0 - 2.5 * epsilon and defect <= 3.0 * epsilon)
    return clique_size, epsilon, stats.success_rate(successes), recalls, defects


def bench_e3_sublinear_clique(benchmark):
    rows = []
    success_rates = []
    for n in N_SWEEP:
        clique_size, epsilon, success, recalls, defects = _one_point(n)
        success_rates.append(success.rate)
        rows.append(
            [
                n,
                clique_size,
                round(clique_size / n, 3),
                epsilon,
                success.rate,
                stats.mean(recalls),
                stats.mean(defects),
            ]
        )
    tables.print_table(
        ["n", "|D|", "|D|/n", "eps(n)", "success", "mean recall", "mean defect"],
        rows,
        title="E3  Corollary 2.3: strict clique of size n/(log log n)^alpha, boosted runs",
    )

    # Shape checks: the boosted algorithm keeps succeeding as n grows and the
    # success rate does not collapse (1 - o(1) prediction).
    assert all(rate >= 0.6 for rate in success_rates)
    assert success_rates[-1] >= success_rates[0] - 0.25

    benchmark(lambda: _one_point(100, trials=1, seed=1))
