"""E7 — the Section 4.1 boosting wrapper.

Workload: a planted near-clique instance with a deliberately small sampling
probability so that a single run succeeds with only moderate probability r.
Measured: the empirical failure rate of the boosted algorithm as the number
of repetitions λ grows, compared against the paper's (1 − r)^λ prediction
(using the empirically measured single-run success for r), plus the λ-fold
growth of the accounted running time.
"""

from __future__ import annotations

import random

from repro.analysis import stats, tables, theory
from repro.core.boosting import BoostedNearCliqueRunner
from repro.graphs import generators


LAMBDAS = [1, 2, 4, 6]
TRIALS = 40


def _failure_rates(trials=TRIALS, seed=17):
    graph, planted = generators.planted_near_clique(
        n=80, clique_fraction=0.5, epsilon=0.008, background_p=0.05, seed=seed
    )
    rng = random.Random(seed)
    failures = {lam: 0 for lam in LAMBDAS}
    for _ in range(trials):
        seeds = rng.getrandbits(48)
        for lam in LAMBDAS:
            runner = BoostedNearCliqueRunner(
                epsilon=0.2,
                sample_probability=0.05,
                repetitions=lam,
                max_sample_size=12,
                rng=random.Random(seeds + lam),
            )
            result = runner.run(graph)
            if result.recall_of(planted.members) < 0.7:
                failures[lam] += 1
    return {lam: failures[lam] / trials for lam in LAMBDAS}


def bench_e7_boosting(benchmark):
    rates = _failure_rates()
    single_run_success = 1.0 - rates[1]
    rows = []
    for lam in LAMBDAS:
        predicted = theory.boosted_failure_probability(single_run_success, lam)
        rows.append([lam, rates[lam], predicted])
    tables.print_table(
        ["lambda", "empirical failure", "(1 - r)^lambda prediction"],
        rows,
        title="E7  Boosting: failure probability vs repetitions (r measured at lambda=1)",
    )

    # Shape checks: failure probability is non-increasing in lambda and the
    # largest lambda drives it near zero.
    values = [rates[lam] for lam in LAMBDAS]
    assert all(values[i + 1] <= values[i] + 0.05 for i in range(len(values) - 1))
    assert values[-1] <= max(0.15, values[0] / 2)

    benchmark(
        lambda: BoostedNearCliqueRunner(
            epsilon=0.2,
            sample_probability=0.05,
            repetitions=4,
            max_sample_size=12,
            rng=random.Random(1),
        ).run(
            generators.planted_near_clique(
                n=60, clique_fraction=0.5, epsilon=0.008, background_p=0.05, seed=2
            )[0]
        )
    )


def bench_e7_repetition_formula(benchmark):
    """The λ = log_{1−r} q schedule for a grid of targets."""
    rows = []
    for q in (0.1, 0.01, 0.001):
        for r in (0.3, 0.5, 0.7):
            rows.append([q, r, theory.boosting_repetitions(q, r)])
    tables.print_table(
        ["target failure q", "single-run success r", "repetitions lambda"],
        rows,
        title="E7b  Repetition schedule lambda = ceil(log_{1-r} q)",
    )
    assert all(row[2] >= 1 for row in rows)
    benchmark(lambda: theory.boosting_repetitions(0.001, 0.5))
