"""E4 — Claim 1 and Figure 1: the shingles heuristic fails; DistNearClique does not.

Workload: the Figure 1 family G_n (C₁, C₂ complete, I₁, I₂ independent,
complete bipartite connections) for δ ∈ {0.3, 0.5} and growing n.

Measured: over repeated random shingle draws, how often the shingles
algorithm outputs *any* candidate that is simultaneously an ε-near clique
and of size ≥ (1 − ε)δn (Claim 1 says: never, for ε below the threshold);
and, on the same graphs, how often the paper's algorithm recovers at least
(1 − ε) of the planted clique C₁ ∪ C₂.
"""

from __future__ import annotations

import random

from repro.analysis import stats, tables, theory
from repro.baselines.shingles import shingles_run
from repro.core.params import AlgorithmParameters
from repro.core.reference import CentralizedNearCliqueFinder
from repro.graphs import generators


SWEEP = [
    {"delta": 0.3, "n": 80},
    {"delta": 0.5, "n": 80},
    {"delta": 0.3, "n": 160},
    {"delta": 0.5, "n": 160},
]
TRIALS = 40


def _one_point(delta, n, trials=TRIALS, seed=2):
    graph, partition = generators.shingles_counterexample(n=n, delta=delta)
    n_actual = graph.number_of_nodes()
    epsilon = 0.9 * theory.claim_1_epsilon_threshold(delta)
    required = int(theory.claim_1_required_size(n_actual, delta, epsilon))
    rng = random.Random(seed)

    shingles_wins = []
    ours_wins = []
    finder = CentralizedNearCliqueFinder(graph, epsilon)
    params = AlgorithmParameters(
        epsilon=epsilon,
        sample_probability=min(1.0, 7.0 / n_actual),
        max_sample_size=12,
    )
    clique = partition["clique"]
    for _ in range(trials):
        trial_rng = random.Random(rng.getrandbits(48))
        shingles_result = shingles_run(graph, rng=trial_rng)
        shingles_wins.append(shingles_result.achieves(epsilon, required))
        ours = finder.run(params, rng=trial_rng)
        recall = len(ours.largest_cluster() & clique) / float(len(clique))
        ours_wins.append(recall >= 1.0 - epsilon)
    return epsilon, required, stats.success_rate(shingles_wins), stats.success_rate(ours_wins)


def bench_e4_claim1(benchmark):
    rows = []
    for point in SWEEP:
        epsilon, required, shingles_rate, ours_rate = _one_point(**point)
        rows.append(
            [
                point["delta"],
                point["n"],
                epsilon,
                required,
                shingles_rate.rate,
                ours_rate.rate,
            ]
        )
    tables.print_table(
        [
            "delta",
            "n",
            "eps",
            "required size",
            "shingles success",
            "DistNearClique success",
        ],
        rows,
        title="E4  Claim 1 / Figure 1: success on the counterexample family",
    )

    # Claim 1: the shingles algorithm can never succeed on this family.
    assert all(row[4] == 0.0 for row in rows), "shingles should never qualify"
    # The paper's algorithm succeeds with constant probability on every point.
    assert all(row[5] >= 0.3 for row in rows)

    benchmark(lambda: _one_point(delta=0.5, n=80, trials=5, seed=9))
