"""E2 — Corollary 2.2: linear-size near-cliques are found in O(1) rounds.

Workload: planted near-clique with δ = 0.5 held constant while n grows; the
sampling probability is scaled as p = c/n so the expected sample (and hence
the round complexity, which depends only on |S|) stays constant.

Paper prediction: the measured round count does not grow with n, and every
message stays within O(log n) bits.
"""

from __future__ import annotations

from repro.analysis import experiment, stats, tables, theory


N_SWEEP = [40, 60, 80, 110, 140]
EXPECTED_SAMPLE = 6.0
TRIALS = 4


def _run(n, trials=TRIALS, seed=5):
    return experiment.run_planted_trials(
        n=n,
        epsilon=0.2,
        delta=0.5,
        trials=trials,
        seed=seed,
        engine="distributed",
        expected_sample=EXPECTED_SAMPLE,
        max_sample_size=12,
    )


def bench_e2_constant_rounds(benchmark):
    rows = []
    mean_rounds = []
    for n in N_SWEEP:
        aggregate = _run(n)
        mean_rounds.append(aggregate.mean_of("rounds"))
        rows.append(
            [
                n,
                aggregate.trials,
                aggregate.mean_of("sample_size"),
                aggregate.mean_of("rounds"),
                aggregate.quantile_of("rounds", 1.0),
                theory.corollary_2_2_round_prediction(0.2, 0.5, EXPECTED_SAMPLE),
                aggregate.mean_of("recall"),
            ]
        )
    tables.print_table(
        ["n", "trials", "mean |S|", "mean rounds", "max rounds", "2^(2pn) bound", "recall"],
        rows,
        title="E2  Corollary 2.2: rounds vs n with delta constant and p*n constant",
    )

    # Shape check: rounds do not systematically grow with n.  The regression
    # slope of mean rounds against n should be tiny compared with the mean.
    slope = stats.linear_regression_slope([float(n) for n in N_SWEEP], mean_rounds)
    overall = stats.mean(mean_rounds)
    assert abs(slope) * (N_SWEEP[-1] - N_SWEEP[0]) <= max(60.0, 1.2 * overall), (
        "round count appears to grow with n: slope %.3f, mean %.1f" % (slope, overall)
    )

    benchmark(lambda: _run(60, trials=1, seed=2))
