"""E5 — Lemma 5.1 and Lemma 5.2: round complexity and sample-size tail.

Workload: planted near-clique graphs; the sampling probability p is swept so
that the realised |S| varies.  For every run we record the realised sample
size and the measured CONGEST round count; the table compares the rounds
against the O(2^{|S|}) envelope of Lemma 5.1 and the realised |S| tail
against the e^{−pn/3} bound of Lemma 5.2.
"""

from __future__ import annotations

import math
import random

from repro.analysis import stats, tables, theory
from repro.core.dist_near_clique import DistNearCliqueRunner
from repro.graphs import generators


def _measure_rounds(sample_sizes, seed=4):
    graph, _ = generators.planted_near_clique(
        n=70, clique_fraction=0.5, epsilon=0.008, background_p=0.05, seed=seed
    )
    rng = random.Random(seed)
    rows = []
    for size in sample_sizes:
        sample = set(rng.sample(sorted(graph.nodes()), size))
        runner = DistNearCliqueRunner(
            epsilon=0.2,
            sample_probability=size / 70.0,
            max_sample_size=None,
            rng=random.Random(rng.getrandbits(48)),
        )
        result = runner.run(graph, sample=sample)
        bound = theory.lemma_5_1_round_bound(size)
        rows.append((size, result.metrics.rounds, bound, result.metrics.total_messages))
    return rows


def bench_e5_lemma_5_1_rounds(benchmark):
    rows = _measure_rounds([2, 4, 6, 8, 10])
    table_rows = [
        [size, rounds, bound, round(rounds / (2.0 ** size), 3), messages]
        for size, rounds, bound, messages in rows
    ]
    tables.print_table(
        ["|S|", "rounds", "O(2^|S|) bound", "rounds / 2^|S|", "messages"],
        table_rows,
        title="E5a  Lemma 5.1: measured rounds vs the 2^|S| envelope",
    )
    # Every run stays under the envelope, and the normalised ratio does not
    # blow up with |S| (the growth really is Theta(2^{|S|}), not worse).
    assert all(rounds <= bound for _, rounds, bound, _ in rows)
    ratios = [rounds / (2.0 ** size) for size, rounds, _, _ in rows]
    assert max(ratios[-2:]) <= 4.0 * max(ratios[0], 1.0)

    benchmark(lambda: _measure_rounds([4], seed=1))


def bench_e5_lemma_5_2_sample_tail(benchmark):
    """Empirical Pr[|S| > 2pn] against the Chernoff bound e^{-pn/3}."""
    n = 400
    trials = 4000
    rng = random.Random(99)
    rows = []
    for p in (0.01, 0.02, 0.04):
        exceed = 0
        for _ in range(trials):
            size = sum(1 for _ in range(n) if rng.random() < p)
            if size > 2 * p * n:
                exceed += 1
        empirical = exceed / trials
        bound = theory.lemma_5_2_sample_tail(n, p)
        rows.append([p, p * n, empirical, bound])
    tables.print_table(
        ["p", "p*n", "Pr[|S| > 2pn] empirical", "e^(-pn/3) bound"],
        rows,
        title="E5b  Lemma 5.2: sample-size tail vs Chernoff bound",
    )
    assert all(empirical <= bound + 0.02 for _, _, empirical, bound in rows)

    benchmark(
        lambda: sum(1 for _ in range(n) if random.Random(1).random() < 0.02)
    )
