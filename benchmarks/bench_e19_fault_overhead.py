"""E19 — the price of supervision: watchdog + retry overhead on clean runs.

The fault-tolerance stack added for multi-host readiness — the barrier
watchdog (``CongestConfig.round_timeout``), supervised retry
(``CongestConfig.retry_policy``) and the recovery ledger — must be close
to free on the path everyone actually runs: a clean, fault-less
execution.  The watchdog swaps the coordinator's blocking ``recv`` barrier
for ``multiprocessing.connection.wait`` with a deadline, and the retry
supervisor wraps every phase execute in a replay loop; both are designed
to cost one comparison when nothing fails, and this benchmark holds them
to that design.

The comparison is the E16 workload end to end (full
``DistNearCliqueRunner``, persistent process session, forced sample) in
two arms:

* **baseline** — PR 8 semantics: no ``round_timeout``, no
  ``retry_policy``; barriers are plain blocking ``recv``.
* **supervised** — ``round_timeout=30`` (never reached) and
  ``retry_policy=RetryPolicy(max_attempts=3)`` (never consulted): every
  barrier pays the watchdog bookkeeping, every phase the supervisor
  wrapper.

Bit-identity of both arms against the batched oracle is asserted before
any timing is reported, then an interleaved best-of-N gates the
supervised/baseline wall-clock ratio at ``OVERHEAD_CEILING`` (full) /
``QUICK_OVERHEAD_CEILING`` (quick CI mode; shared runners are noisy).
Unlike E16's speedup gate this one needs no CPU-count escape hatch: both
arms run the same backend on the same host, so the ratio is meaningful
anywhere.

Run directly (``python benchmarks/bench_e19_fault_overhead.py``) or via
the pytest-benchmark harness; quick mode (``REPRO_BENCH_QUICK=1`` or
``--quick``) trims the scale and repetitions so it doubles as a CI gate.
"""

from __future__ import annotations

import os
import random
import sys
import time

from repro.analysis import tables
from repro.congest.config import CongestConfig, RetryPolicy
from repro.core.dist_near_clique import DistNearCliqueRunner

from bench_e16_session_amortization import (
    FORCED_SAMPLE,
    SHARDS,
    _community_graph,
    _result_fingerprint,
    _run_batched_oracle,
)

QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0") or "0"))

#: Maximum acceptable supervised/baseline wall-clock ratio on clean runs.
#: The issue's acceptance bar is 5% at full scale; quick mode keeps a
#: looser tripwire because one noisy scheduler tick at the quick scale is
#: a visible fraction of the run.
OVERHEAD_CEILING = 1.05
QUICK_OVERHEAD_CEILING = 1.15

#: The watchdog deadline of the supervised arm — far above any real round
#: on this workload, so it never fires and only its bookkeeping is timed.
ROUND_TIMEOUT = 30.0


def _workload(quick: bool):
    n = 3000 if quick else 6000
    graph = _community_graph(n, SHARDS, 0.04, 2.0 / n, seed=7)
    return "web-communities (n=%d, %d blocks)" % (n, SHARDS), graph


def _config(n: int, supervised: bool) -> CongestConfig:
    config = CongestConfig(
        engine="sharded",
        shards=SHARDS,
        shard_backend="process",
        session_mode="persistent",
        round_timeout=ROUND_TIMEOUT if supervised else None,
        retry_policy=RetryPolicy(max_attempts=3) if supervised else None,
    ).with_log_budget(n)
    return config


def _run_once(graph, supervised: bool, seed=11):
    n = graph.number_of_nodes()
    runner = DistNearCliqueRunner(
        epsilon=0.25,
        sample_probability=0.001,
        max_sample_size=None,
        rng=random.Random(seed),
        config=_config(n, supervised),
    )
    start = time.perf_counter()
    result = runner.run(graph, sample=FORCED_SAMPLE)
    elapsed = time.perf_counter() - start
    assert not result.aborted, "benchmark workload aborted: %s" % result.abort_reason
    stats = runner.last_session_stats
    return elapsed, _result_fingerprint(result), stats


def _overhead_table(name, graph, quick):
    # Bit-identity before any timing claim: both arms against the batched
    # fast path — supervision must be invisible in the output, not just
    # cheap.
    oracle = _run_batched_oracle(graph)

    timings = {"baseline": float("inf"), "supervised": float("inf")}
    supervised_stats = None
    repetitions = 2 if quick else 3
    # Interleaved best-of-N: a ratio gate needs both arms sampled under
    # comparable load.
    for _ in range(repetitions):
        elapsed, fingerprint, _stats = _run_once(graph, supervised=False)
        assert fingerprint == oracle, "baseline arm diverged from batched"
        timings["baseline"] = min(timings["baseline"], elapsed)

        elapsed, fingerprint, stats = _run_once(graph, supervised=True)
        assert fingerprint == oracle, "supervised arm diverged from batched"
        timings["supervised"] = min(timings["supervised"], elapsed)
        supervised_stats = stats

    # A clean run must never touch the recovery machinery.
    assert supervised_stats.worker_failures == 0
    assert supervised_stats.retries == 0
    assert supervised_stats.degradations == 0

    ratio = timings["supervised"] / max(timings["baseline"], 1e-9)
    rows = [
        [label, round(timings[label], 3), round(timings[label] / timings["baseline"], 3)]
        for label in ("baseline", "supervised")
    ]
    tables.print_table(
        ["arm", "wall s", "vs baseline"],
        rows,
        title="E19  %s — watchdog + retry supervision on clean runs "
        "(%d shards, persistent process session, bit-identical arms)"
        % (name, SHARDS),
    )
    print(
        "supervised/baseline overhead: %.3fx  |  round_timeout=%.0fs armed "
        "over %d barrier rounds, 0 recoveries"
        % (ratio, ROUND_TIMEOUT, supervised_stats.barrier_rounds)
    )

    ceiling = QUICK_OVERHEAD_CEILING if quick else OVERHEAD_CEILING
    assert ratio <= ceiling, (
        "supervision costs %.3fx baseline on clean runs of %s, above the "
        "%.2fx ceiling" % (ratio, name, ceiling)
    )
    return timings


def _run_suite(quick: bool):
    name, graph = _workload(quick)
    return _overhead_table(name, graph, quick)


def bench_e19_fault_overhead(benchmark):
    """pytest-benchmark entry point, matching the other E* modules."""
    _run_suite(QUICK)

    _name, graph = _workload(quick=True)
    benchmark(lambda: _run_once(graph, supervised=True))


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    quick = QUICK or "--quick" in argv
    _run_suite(quick)
    return 0


if __name__ == "__main__":
    sys.exit(main())
