"""E11 — the property-testing side: GGR ρ-clique tester and tolerant testing.

Workload: graphs with a planted dense ρn-set (accept side) versus sparse
random graphs with no dense ρn-set (reject side).

Measured: acceptance rates on both sides for the GGR-style tester and for
the tolerant (ε₁, ε₂) near-clique tester, plus query counts compared with
the total number of vertex pairs (the tester must probe a vanishing
fraction) — reproducing the Section 1 discussion that the paper's
construction is (ε³, ε)-tolerant while the plain tester is (ε⁶, ε)-tolerant.
"""

from __future__ import annotations

import random

from repro.analysis import stats, tables
from repro.graphs import generators
from repro.proptest.ggr_tester import GGRCliqueTester
from repro.proptest.tolerant import (
    TolerantNearCliqueTester,
    ggr_tolerance_of,
    paper_tolerance_of,
)


RHO = 0.45
EPSILON = 0.3
N = 90
TRIALS = 12


def _accept_rates(tester_factory, accept_graph, reject_graph, trials=TRIALS):
    accepts = []
    rejects = []
    queries = []
    for seed in range(trials):
        tester = tester_factory(seed)
        verdict_a = tester.test(accept_graph)
        verdict_r = tester.test(reject_graph)
        accepts.append(verdict_a.accepted)
        rejects.append(not verdict_r.accepted)
        queries.append(verdict_a.queries)
    return stats.success_rate(accepts), stats.success_rate(rejects), stats.mean(queries)


def bench_e11_property_testers(benchmark):
    accept_graph, _ = generators.planted_near_clique(
        N, RHO, EPSILON ** 3, background_p=0.05, seed=3
    )
    reject_graph = generators.erdos_renyi(N, 0.08, seed=4)
    total_pairs = N * (N - 1) / 2.0

    ggr_accept, ggr_reject, ggr_queries = _accept_rates(
        lambda seed: GGRCliqueTester(rho=RHO, epsilon=EPSILON, rng=random.Random(seed)),
        accept_graph,
        reject_graph,
    )
    tol_accept, tol_reject, tol_queries = _accept_rates(
        lambda seed: TolerantNearCliqueTester(
            rho=RHO,
            epsilon_1=paper_tolerance_of(EPSILON)[0],
            epsilon_2=EPSILON,
            rng=random.Random(seed),
        ),
        accept_graph,
        reject_graph,
    )

    rows = [
        [
            "GGR rho-clique tester",
            "(%.4f, %.2f)" % ggr_tolerance_of(EPSILON),
            ggr_accept.rate,
            ggr_reject.rate,
            ggr_queries,
            round(ggr_queries / total_pairs, 3),
        ],
        [
            "Tolerant K/T tester (paper)",
            "(%.4f, %.2f)" % paper_tolerance_of(EPSILON),
            tol_accept.rate,
            tol_reject.rate,
            tol_queries,
            round(tol_queries / total_pairs, 3),
        ],
    ]
    tables.print_table(
        [
            "tester",
            "tolerance (eps1, eps2)",
            "accept rate (planted)",
            "reject rate (null)",
            "mean queries",
            "queries / all pairs",
        ],
        rows,
        title="E11  Property testers: gap behaviour and query counts (rho=%.2f, eps=%.2f)"
        % (RHO, EPSILON),
    )

    assert ggr_accept.rate >= 0.6 and ggr_reject.rate >= 0.8
    assert tol_accept.rate >= 0.7 and tol_reject.rate >= 0.8

    benchmark(
        lambda: GGRCliqueTester(rho=RHO, epsilon=EPSILON, rng=random.Random(1)).test(
            accept_graph
        )
    )


def bench_e11_approximate_find(benchmark):
    """The approximate-find companion: extract the near-clique after acceptance."""
    graph, planted = generators.planted_near_clique(
        N, RHO, EPSILON ** 3, background_p=0.05, seed=9
    )
    tester = GGRCliqueTester(rho=RHO, epsilon=0.25, rng=random.Random(5))
    verdict = tester.test_with_confidence(graph, repetitions=3)
    found = tester.approximate_find(graph, sorted(verdict.witness_subset))
    recall = len(found.members & planted.members) / float(len(planted.members))
    tables.print_table(
        ["accepted", "found size", "found density", "recall of planted", "queries"],
        [[verdict.accepted, len(found.members), found.density, recall, found.queries]],
        title="E11b  Approximate find from an accepting witness",
    )
    assert verdict.accepted
    assert recall >= 0.6

    benchmark(lambda: tester.approximate_find(graph, sorted(verdict.witness_subset)))
