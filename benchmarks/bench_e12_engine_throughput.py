"""E12 — execution-engine throughput: reference versus batched round loop.

Workloads: the planted-near-clique family at experiment scale (n ≈ 2000,
the size at which the per-object reference loop becomes the bottleneck) and
the multi-community web workload of the paper's introduction.

Measured: wall-clock time of the full ``DistNearClique`` pipeline under the
``reference`` and ``batched`` engines (same graph, same forced sample, same
configuration), together with the speedup.  Because the engines are
bit-identical by contract (see :mod:`repro.congest.engine`), the comparison
is pure throughput: the outputs and the round/message/bit metrics are
asserted equal before any timing is reported, so a fast-but-wrong engine
cannot "win" this benchmark.

Quick mode (``REPRO_BENCH_QUICK=1`` or ``--quick``) shrinks the workloads
so the benchmark doubles as a CI regression gate: it still fails if the
fast path stops being faster, without pinning CI to multi-second runs.

Run directly (``python benchmarks/bench_e12_engine_throughput.py``) or via
the pytest-benchmark harness like the other experiments.
"""

from __future__ import annotations

import os
import random
import sys
import time

from repro.analysis import tables
from repro.congest.config import CongestConfig
from repro.congest.engine import available_engines
from repro.core.dist_near_clique import DistNearCliqueRunner
from repro.graphs import generators

QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0") or "0"))

#: Minimum acceptable batched-over-reference speedup per workload scale.
#: Full scale reproduces the headline >= 2x claim; quick scale is a lenient
#: CI tripwire (small graphs leave less per-round overhead to amortise and
#: shared CI runners are noisy).
FULL_SPEEDUP_FLOOR = 2.0
QUICK_SPEEDUP_FLOOR = 1.1


def _planted_workload(quick: bool):
    n = 500 if quick else 2000
    graph, _ = generators.planted_near_clique(
        n=n, clique_fraction=0.3, epsilon=0.008, background_p=0.01, seed=3
    )
    return "planted-near-clique (n=%d)" % n, graph


def _web_workload(quick: bool):
    n = 400 if quick else 1500
    graph, _ = generators.web_community_graph(n=n, communities=3, seed=5)
    return "web-communities (n=%d)" % n, graph


def _run_once(graph, engine, sample):
    runner = DistNearCliqueRunner(
        epsilon=0.25,
        sample_probability=len(sample) / float(graph.number_of_nodes()),
        max_sample_size=None,
        rng=random.Random(42),
        config=CongestConfig(engine=engine).with_log_budget(
            graph.number_of_nodes()
        ),
    )
    start = time.perf_counter()
    result = runner.run(graph, sample=sample)
    elapsed = time.perf_counter() - start
    return elapsed, result


def _compare_engines(name, graph, sample_size=7, seed=1):
    sample = sorted(random.Random(seed).sample(sorted(graph.nodes()), sample_size))
    assert {"reference", "batched"} <= set(available_engines())
    timings = {}
    results = {}
    # Fixed order: the reference run doubles as the warm-up, so the batched
    # timing never benefits from being measured on a warmer cache.
    for engine in ("reference", "batched"):
        timings[engine], results[engine] = _run_once(graph, engine, sample)

    reference = results["reference"]
    batched = results["batched"]
    assert batched.labels == reference.labels
    assert batched.metrics.rounds == reference.metrics.rounds
    assert batched.metrics.total_messages == reference.metrics.total_messages
    assert batched.metrics.total_bits == reference.metrics.total_bits

    speedup = timings["reference"] / max(timings["batched"], 1e-9)
    return {
        "workload": name,
        "edges": graph.number_of_edges(),
        "rounds": reference.metrics.rounds,
        "messages": reference.metrics.total_messages,
        "reference_s": timings["reference"],
        "batched_s": timings["batched"],
        "speedup": speedup,
    }


def _run_suite(quick: bool):
    rows = []
    for build in (_planted_workload, _web_workload):
        name, graph = build(quick)
        rows.append(_compare_engines(name, graph))
    tables.print_table(
        ["workload", "edges", "rounds", "messages", "reference s", "batched s", "speedup"],
        [
            [
                row["workload"],
                row["edges"],
                row["rounds"],
                row["messages"],
                round(row["reference_s"], 3),
                round(row["batched_s"], 3),
                round(row["speedup"], 2),
            ]
            for row in rows
        ],
        title="E12  engine throughput: reference vs batched (bit-identical runs)",
    )
    floor = QUICK_SPEEDUP_FLOOR if quick else FULL_SPEEDUP_FLOOR
    planted_row = rows[0]
    assert planted_row["speedup"] >= floor, (
        "batched engine speedup %.2fx on %s fell below the %.1fx floor"
        % (planted_row["speedup"], planted_row["workload"], floor)
    )
    return rows


def bench_e12_engine_throughput(benchmark):
    """pytest-benchmark entry point, matching the other E* modules."""
    _run_suite(QUICK)

    name, graph = _planted_workload(quick=True)
    sample = sorted(random.Random(1).sample(sorted(graph.nodes()), 7))
    benchmark(lambda: _run_once(graph, "batched", sample))


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    quick = QUICK or "--quick" in argv
    _run_suite(quick)
    return 0


if __name__ == "__main__":
    sys.exit(main())
