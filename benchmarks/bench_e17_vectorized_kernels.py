"""E17 — vectorized gather/apply/scatter kernels vs the batched callbacks.

The regular phases of ``DistNearClique`` — sampling, component
dissemination, K-membership announcements — have closed-form round
structure: every node runs the same recipe and the traffic is a pipelined
``on_start``-enqueued broadcast.  Under the batched engine they still pay
one Python callback per node per round; at n >= 20000 the component
dissemination alone is rounds x n dispatches that mostly fold an empty
inbox.  PR 6's vectorized engine (:mod:`repro.congest.vectorized`) executes
these phases as columnar kernels — packed halt registers, CSR
segment-reductions for the gather, a closed-form broadcast schedule for the
scatter — and falls back to the batched path for everything else.

This benchmark times exactly the kernel-covered phases, chained through one
session with ``reuse_contexts`` (the composite-pipeline shape), on a sparse
background graph (n >= 20000) with a planted sampled component whose member
stream forces a deep pipelined broadcast:

* **Bit-identity before timing** — per phase, outputs and metrics
  (including the per-round trace) of ``vectorized`` must equal ``batched``
  (itself differentially pinned to the reference); any mismatch aborts the
  benchmark before a single number is printed.
* **The gate** — summed over the kernel-covered phases, ``vectorized``
  must beat ``batched`` by ``VECTORIZED_SPEEDUP_FLOOR``.  The kernels are
  single-process numpy, so the gate holds on any host — no CPU-count skip.

Run directly (``python benchmarks/bench_e17_vectorized_kernels.py``) or via
the pytest-benchmark harness; quick mode (``REPRO_BENCH_QUICK=1`` or
``--quick``) keeps n at the gate scale and trims repetitions so it doubles
as a CI gate.
"""

from __future__ import annotations

import os
import random
import sys
import time

import networkx as nx

from repro.analysis import tables
from repro.congest.config import CongestConfig
from repro.congest.engine import get_engine
from repro.congest.network import Network
from repro.congest.node import Protocol
from repro.core import phases

QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0") or "0"))

#: Minimum acceptable vectorized-over-batched speedup on the kernel-covered
#: phases.  Single-process numpy against single-process callbacks: the
#: ratio is stable across hosts, so quick mode keeps the full gate.
VECTORIZED_SPEEDUP_FLOOR = 3.0

#: Size of the planted sampled component.  Its member stream is what every
#: sampled node pipelines to all neighbours, so this is also the broadcast
#: depth (rounds) of the dissemination phase under either engine.
COMPONENT_SIZE = 48


class _WarmupPhase(Protocol):
    """Zero-round phase that builds the contexts outside the timed region.

    In the real composite pipeline the contexts are built once and reused
    across ~15 phases; timing the 20000-node context construction (identical
    under every engine) inside the first kernel phase would only dilute the
    ratio being gated.  The warm-up also carries the n-sized forced-sample
    injection, so the timed phases measure phase execution, not input
    plumbing.
    """

    name = "e17-warmup"
    quiesce_terminates = True

    def on_start(self, ctx) -> None:
        ctx.halt()


def _workload(quick: bool):
    """Sparse background + one planted sampled clique with deep streams."""
    n = 20000 if quick else 30000
    rng = random.Random(17)
    graph = nx.gnp_random_graph(n, 4.0 / n, seed=29)
    graph.add_nodes_from(range(n))
    clique = sorted(rng.sample(range(n), COMPONENT_SIZE))
    for i, u in enumerate(clique):
        for v in clique[i + 1 :]:
            graph.add_edge(u, v)
    return "sparse+planted (n=%d, |S|=%d)" % (n, COMPONENT_SIZE), graph, clique


def _phase_plan(n, clique):
    """The kernel-covered phase chain with its injected per-node state.

    The BFS/convergecast phases that normally produce the component state
    are callback-only and benchmarked elsewhere; injecting their outputs
    isolates the kernel-covered phases being compared.  Returns
    ``(warmup_inputs, plan)`` — the n-sized forced-sample injection rides
    on the untimed warm-up execute.
    """
    members = list(clique)
    root = min(members)
    warmup_inputs = {
        v: {phases.KEY_FORCED_SAMPLE: False} for v in range(n)
    }
    comp_inputs = {}
    announce_inputs = {}
    for v in members:
        warmup_inputs[v] = {phases.KEY_FORCED_SAMPLE: True}
        comp_inputs[v] = {
            phases.KEY_ROOT: root,
            phases.KEY_COMP_BCAST: members,
        }
        announce_inputs[v] = {
            phases.KEY_K_MEMBERSHIP: {root: {1, 2, 3}},
            phases.KEY_K_SIZES: {root: {1: 10, 2: 12, 3: 9}},
        }
    plan = [
        ("nc-sampling", phases.SamplingPhase, None),
        ("nc-comp-dissemination", phases.CompDisseminationPhase, comp_inputs),
        ("nc-k-announce", phases.KAnnouncePhase, announce_inputs),
    ]
    return warmup_inputs, plan


def _trace(metrics):
    return [
        (
            r.round_index,
            r.messages_sent,
            r.bits_sent,
            r.max_message_bits,
            r.edges_used,
            r.active_nodes,
        )
        for r in metrics.per_round
    ]


def _fingerprint(result):
    m = result.metrics
    return (
        result.outputs,
        m.rounds,
        m.total_messages,
        m.total_bits,
        m.max_message_bits,
        m.max_messages_per_round,
        _trace(m),
    )


def _run_phases(graph, engine_name, warmup_inputs, plan):
    """One pass over the kernel-covered chain; per-phase seconds + prints."""
    n = graph.number_of_nodes()
    network = Network(graph, seed=23)
    config = CongestConfig(engine=engine_name).with_log_budget(n)
    engine = get_engine(engine_name)
    seconds = {}
    fingerprints = []
    with engine.open_session(network, config) as session:
        # Untimed: context construction + the n-sized input injection.
        session.execute(
            _WarmupPhase(),
            global_inputs={phases.GLOBAL_EPSILON: 0.25},
            per_node_inputs=warmup_inputs,
        )
        for label, phase_cls, per_node_inputs in plan:
            protocol = phase_cls()
            start = time.perf_counter()
            result = session.execute(
                protocol,
                per_node_inputs=per_node_inputs,
                reuse_contexts=True,
            )
            seconds[label] = time.perf_counter() - start
            fingerprints.append((label, _fingerprint(result)))
    return seconds, fingerprints


def _kernel_table(name, graph, warmup_inputs, plan, quick):
    engines = ("batched", "vectorized")
    best = {engine: {label: float("inf") for label, _, _ in plan} for engine in engines}
    oracle = None
    repetitions = 2 if quick else 3
    # Interleaved best-of-N: the ratio gate needs both engines sampled
    # under comparable load, and identity is re-asserted every pass.
    for _ in range(repetitions):
        for engine_name in engines:
            seconds, fingerprints = _run_phases(
                graph, engine_name, warmup_inputs, plan
            )
            if oracle is None:
                oracle = fingerprints
            assert fingerprints == oracle, (
                "engine %r diverged on the kernel-covered phases" % engine_name
            )
            for label, elapsed in seconds.items():
                best[engine_name][label] = min(best[engine_name][label], elapsed)

    rows = []
    for label, _, _ in plan:
        batched_s = best["batched"][label]
        vector_s = best["vectorized"][label]
        rounds = next(fp[1] for lbl, fp in oracle if lbl == label)
        rows.append(
            [
                label,
                rounds,
                round(batched_s * 1e3, 1),
                round(vector_s * 1e3, 1),
                round(batched_s / max(vector_s, 1e-9), 2),
            ]
        )
    total_batched = sum(best["batched"].values())
    total_vector = sum(best["vectorized"].values())
    speedup = total_batched / max(total_vector, 1e-9)
    rows.append(
        [
            "total",
            "",
            round(total_batched * 1e3, 1),
            round(total_vector * 1e3, 1),
            round(speedup, 2),
        ]
    )
    tables.print_table(
        ["phase", "rounds", "batched ms", "vectorized ms", "speedup"],
        rows,
        title="E17  %s — kernel-covered phases, bit-identical runs" % name,
    )
    assert speedup >= VECTORIZED_SPEEDUP_FLOOR, (
        "vectorized kernels are only %.2fx batched on %s, below the %.1fx "
        "floor" % (speedup, name, VECTORIZED_SPEEDUP_FLOOR)
    )
    return speedup


def _run_suite(quick: bool):
    name, graph, clique = _workload(quick)
    warmup_inputs, plan = _phase_plan(graph.number_of_nodes(), clique)
    return _kernel_table(name, graph, warmup_inputs, plan, quick)


def bench_e17_vectorized_kernels(benchmark):
    """pytest-benchmark entry point, matching the other E* modules."""
    _run_suite(QUICK)

    name, graph, clique = _workload(quick=True)
    warmup_inputs, plan = _phase_plan(graph.number_of_nodes(), clique)
    benchmark(lambda: _run_phases(graph, "vectorized", warmup_inputs, plan))


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    quick = QUICK or "--quick" in argv
    _run_suite(quick)
    return 0


if __name__ == "__main__":
    sys.exit(main())
