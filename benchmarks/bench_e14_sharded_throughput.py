"""E14 — sharded execution: partition-parallel throughput and cut overhead.

The paper's algorithm is neighbourhood-local, so the network can be cut
into shards that step their rounds independently and exchange only the
messages crossing the cut (:mod:`repro.congest.sharding`).  This benchmark
quantifies the two costs of that design on large planted-near-clique
workloads:

* **Wall-clock overhead** — the full ``DistNearClique`` pipeline under the
  ``sharded`` engine (serial deterministic mode and, when the host has at
  least two CPUs, the thread-pool mode) versus the ``batched`` fast path on
  the same graph and forced sample.  The engines are bit-identical by
  contract, so the comparison is pure throughput; outputs and metrics are
  asserted equal before any timing is reported.  The gate: thread-mode
  sharded must stay within ``SHARDED_SLOWDOWN_CEILING`` of batched — a
  sharded round barrier must not cost more than a modest constant factor.

* **Cut-edge message fraction** — for each partitioner strategy
  (``contiguous``, ``bfs``), the fraction of protocol messages that
  crossed a shard boundary (measured with
  :class:`repro.congest.sharding.ShardingStats`) next to the static
  edge-cut fraction of the :class:`repro.congest.sharding.ShardPlan`.
  This is the quantity a multi-process or multi-host sharding would pay
  serialisation for, so it is the figure of merit for partitioner quality.

Quick mode (``REPRO_BENCH_QUICK=1`` or ``--quick``) shrinks the workload so
the benchmark doubles as a CI gate: serial-mode bit-identity is always
checked; the thread-mode timing gate engages only when the runner has at
least two CPUs (single-CPU runners cannot show pool parallelism, only pool
overhead) and uses a looser ceiling to absorb shared-runner noise.

Run directly (``python benchmarks/bench_e14_sharded_throughput.py``) or via
the pytest-benchmark harness like the other experiments.
"""

from __future__ import annotations

import os
import random
import sys
import time

from repro.analysis import tables
from repro.congest.config import CongestConfig
from repro.congest.network import Network
from repro.congest.sharding import PARTITION_STRATEGIES, ShardedEngine, partition_network
from repro.core.dist_near_clique import DistNearCliqueRunner
from repro.graphs import generators

QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0") or "0"))

#: Shard count of the headline comparison (the acceptance configuration).
SHARDS = 4

#: Maximum tolerated sharded-over-batched wall-time ratio.  Full scale is
#: the acceptance gate (n≈2000, 4 shards, thread mode); quick scale is a
#: lenient CI tripwire — small graphs leave the per-round barrier nothing
#: to amortise against and shared CI runners are noisy.
FULL_SLOWDOWN_CEILING = 1.25
QUICK_SLOWDOWN_CEILING = 1.6


def _planted_workload(quick: bool):
    n = 500 if quick else 2000
    graph, _ = generators.planted_near_clique(
        n=n, clique_fraction=0.3, epsilon=0.008, background_p=0.01, seed=3
    )
    return "planted-near-clique (n=%d)" % n, graph


def _fingerprint(result):
    m = result.metrics
    return (
        result.labels,
        result.sample,
        m.rounds,
        m.total_messages,
        m.total_bits,
        m.max_message_bits,
    )


def _run_once(graph, sample, engine=None, config=None):
    runner = DistNearCliqueRunner(
        epsilon=0.25,
        sample_probability=len(sample) / float(graph.number_of_nodes()),
        max_sample_size=None,
        rng=random.Random(42),
        config=(config or CongestConfig()).with_log_budget(
            graph.number_of_nodes()
        ),
        engine=engine,
    )
    start = time.perf_counter()
    result = runner.run(graph, sample=sample)
    return time.perf_counter() - start, result


def _throughput_table(name, graph, quick):
    """Batched vs sharded (serial, and threaded when the host allows)."""
    sample = sorted(random.Random(1).sample(sorted(graph.nodes()), 7))
    workers = min(SHARDS, os.cpu_count() or 1)
    modes = [
        ("batched", "batched", None),
        ("sharded serial", None, CongestConfig().with_sharding(SHARDS, workers=0)),
    ]
    thread_mode = workers >= 2
    if thread_mode:
        modes.append(
            (
                "sharded threads(%d)" % workers,
                None,
                CongestConfig().with_sharding(SHARDS, workers=workers),
            )
        )

    timings, fingerprints = {}, {}
    # Best-of-N with the modes interleaved: shared runners are noisy, and a
    # ratio gate needs both sides sampled under comparable load.  Batched
    # leads each sweep, so the sharded timings never benefit from a warmer
    # cache than the baseline had.
    repetitions = 2 if quick else 3
    for _ in range(repetitions):
        for label, engine, config in modes:
            elapsed, result = _run_once(graph, sample, engine=engine, config=config)
            timings[label] = min(timings.get(label, float("inf")), elapsed)
            fingerprints[label] = _fingerprint(result)

    # Bit-identity before any timing claim (the engine contract).
    for label in fingerprints:
        assert fingerprints[label] == fingerprints["batched"], (
            "%s diverged from batched on %s" % (label, name)
        )

    rows = [
        [label, round(timings[label], 3), round(timings[label] / timings["batched"], 2)]
        for label, _, _ in modes
    ]
    tables.print_table(
        ["mode", "wall s", "vs batched"],
        rows,
        title="E14  %s — DistNearClique wall time (%d shards, bit-identical runs)"
        % (name, SHARDS),
    )

    ceiling = QUICK_SLOWDOWN_CEILING if quick else FULL_SLOWDOWN_CEILING
    gated_label = "sharded threads(%d)" % workers if thread_mode else None
    if gated_label is not None:
        slowdown = timings[gated_label] / max(timings["batched"], 1e-9)
        assert slowdown <= ceiling, (
            "thread-mode sharded engine is %.2fx batched on %s, above the "
            "%.2fx ceiling" % (slowdown, name, ceiling)
        )
    else:
        print(
            "(thread-mode gate skipped: %d CPU(s) available, need >= 2)"
            % (os.cpu_count() or 1)
        )
    return timings


def _cut_overhead_table(name, graph):
    """Cut statistics and measured cross-shard traffic per strategy.

    Iterates every registered strategy, so ``bfs+refine`` (the FM-style
    boundary-refinement sweep) reports next to plain ``bfs``; the explicit
    reduction line below quantifies the partitioner-quality ROADMAP item.
    """
    sample = sorted(random.Random(1).sample(sorted(graph.nodes()), 7))
    rows = []
    cut_by_strategy = {}
    for strategy in PARTITION_STRATEGIES:
        engine = ShardedEngine(
            shards=SHARDS, workers=0, strategy=strategy, collect_stats=True
        )
        plan = partition_network(
            Network(graph, seed=0), SHARDS, strategy=strategy
        )
        _, result = _run_once(graph, sample, engine=engine)
        stats = engine.stats
        cut_by_strategy[strategy] = plan.cut_edges
        rows.append(
            [
                strategy,
                "%d/%d" % (plan.cut_edges, plan.total_edges),
                round(plan.cut_fraction, 3),
                stats.protocol_messages,
                stats.cross_shard_messages,
                round(stats.cross_shard_fraction, 3),
            ]
        )
        assert stats.protocol_messages == result.metrics.total_messages
    tables.print_table(
        [
            "strategy",
            "cut edges",
            "edge cut frac",
            "messages",
            "cross-shard",
            "msg cut frac",
        ],
        rows,
        title="E14  %s — cut-edge overhead per partitioner strategy (%d shards)"
        % (name, SHARDS),
    )
    if cut_by_strategy.get("bfs"):
        reduction = 1.0 - cut_by_strategy["bfs+refine"] / float(
            cut_by_strategy["bfs"]
        )
        print(
            "bfs+refine cut-edge reduction vs bfs: %.1f%% (%d -> %d edges)"
            % (
                100.0 * reduction,
                cut_by_strategy["bfs"],
                cut_by_strategy["bfs+refine"],
            )
        )
        assert cut_by_strategy["bfs+refine"] <= cut_by_strategy["bfs"], (
            "the refinement sweep may never increase the cut"
        )
    return rows


def _run_suite(quick: bool):
    name, graph = _planted_workload(quick)
    timings = _throughput_table(name, graph, quick)
    _cut_overhead_table(name, graph)
    return timings


def bench_e14_sharded_throughput(benchmark):
    """pytest-benchmark entry point, matching the other E* modules."""
    _run_suite(QUICK)

    name, graph = _planted_workload(quick=True)
    sample = sorted(random.Random(1).sample(sorted(graph.nodes()), 7))
    config = CongestConfig().with_sharding(SHARDS, workers=0)
    benchmark(lambda: _run_once(graph, sample, config=config))


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    quick = QUICK or "--quick" in argv
    _run_suite(quick)
    return 0


if __name__ == "__main__":
    sys.exit(main())
