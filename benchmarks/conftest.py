"""Shared configuration for the benchmark harness.

Each ``bench_e*.py`` module reproduces one experiment from the DESIGN.md
experiment index (one per theorem / corollary / claim / figure of the
paper).  Every benchmark prints the table recorded in EXPERIMENTS.md and
additionally times one representative kernel through pytest-benchmark, so

    pytest benchmarks/ --benchmark-only

regenerates both the quality tables and the timing figures.
"""

from __future__ import annotations

import random

import pytest


@pytest.fixture
def bench_rng():
    """Deterministic randomness for benchmark workloads."""
    return random.Random(20090526)  # the paper's arXiv submission date
