"""Shared configuration for the benchmark harness.

Each ``bench_e*.py`` module reproduces one experiment from the DESIGN.md
experiment index (one per theorem / corollary / claim / figure of the
paper).  Every benchmark prints the table recorded in EXPERIMENTS.md and
additionally times one representative kernel through pytest-benchmark, so

    pytest benchmarks/ --benchmark-only

regenerates both the quality tables and the timing figures.

Machine-readable results
------------------------
Benchmarks report their headline measurements through
:func:`record_result`; with ``pytest benchmarks/ --json PATH`` (or the
``REPRO_BENCH_JSON`` environment variable, which also covers direct
``python benchmarks/bench_e*.py`` runs) every record is written to *PATH*
as a JSON list of ``{bench, config, measured, gate, passed}`` objects —
one per recorded gate — so CI trend dashboards consume the numbers
without scraping tables.  Without a path, records accumulate in memory
only and the flag costs nothing.
"""

from __future__ import annotations

import json
import os
import random
from typing import Any, Dict, List, Optional

import pytest

#: Records accumulated by :func:`record_result` this process, in order.
RESULTS: List[Dict[str, Any]] = []

_json_path: Optional[str] = os.environ.get("REPRO_BENCH_JSON") or None


@pytest.fixture
def bench_rng():
    """Deterministic randomness for benchmark workloads."""
    return random.Random(20090526)  # the paper's arXiv submission date


def set_json_path(path: Optional[str]) -> None:
    """Direct future (and already-recorded) results to *path*."""
    global _json_path
    _json_path = path or None
    _flush()


def record_result(
    bench: str,
    config: Dict[str, Any],
    measured: Dict[str, Any],
    gate: Dict[str, Any],
    passed: bool,
) -> Dict[str, Any]:
    """Record one benchmark measurement (and write through if a path is set).

    Parameters mirror the emitted object: *bench* names the experiment
    (``"e20-pipeline-fusion"``), *config* the workload/backend knobs,
    *measured* the observed numbers, *gate* the acceptance criterion the
    numbers were held to, *passed* whether they met it.  Writing happens
    after every record, so a later hard assertion still leaves the
    failing measurement on disk for the CI artifact.
    """
    record = {
        "bench": bench,
        "config": dict(config),
        "measured": dict(measured),
        "gate": dict(gate),
        "passed": bool(passed),
    }
    RESULTS.append(record)
    _flush()
    return record


def _flush() -> None:
    if _json_path and RESULTS:
        with open(_json_path, "w", encoding="utf-8") as handle:
            json.dump(RESULTS, handle, indent=2, sort_keys=True)
            handle.write("\n")


def pytest_addoption(parser) -> None:
    group = parser.getgroup("repro-bench")
    group.addoption(
        "--json",
        action="store",
        default=None,
        dest="repro_bench_json",
        metavar="PATH",
        help="write benchmark results as a JSON list of "
        "{bench, config, measured, gate, passed} records",
    )


def pytest_configure(config) -> None:
    path = config.getoption("repro_bench_json", default=None)
    if path:
        set_json_path(path)


def pytest_sessionfinish(session, exitstatus) -> None:
    _flush()
