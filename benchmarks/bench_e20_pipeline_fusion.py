"""E20 — pipeline compiler: fused phase groups on the process backend.

PR 6's persistent sessions (E16) amortise pool *spawn* across the ~14
phases of the composite ``DistNearCliqueRunner``, but still pay a full
coordination round-trip per phase: ship a re-arm over every worker pipe,
run the phase, pack and fold the complete per-node context state back into
the parent, repeat.  The pipeline compiler
(:mod:`repro.congest.pipeline`, ``CongestConfig.pipeline_mode="fuse"``)
compiles the declared phase graph into maximal fused groups: one
``arm-seq`` ships the whole group, workers self-arm the next phase on
phase completion (a ``finish-light`` that skips state packing entirely),
and the context fold-back happens once per *group* instead of once per
phase.  On the composite run the full 13-phase exploration+decision
suffix fuses into a single group — 2 pool re-arms instead of 14.

This benchmark holds the compiler to the contract and the claim:

* **Bit-identity before any timing** — ``pipeline_mode="fuse"`` versus
  ``"off"`` on *every* backend (reference, batched, vectorized, async,
  sharded serial / thread / process-persistent) on a differential-scale
  workload, every fingerprint (labels, sample, rounds, message/bit
  totals, the full per-round trace) equal to the reference engine's;
  then, at the gate scale, both timed process arms against the batched
  oracle.  Fusion that changes one bit fails here, not in the timing
  table.

* **Wall-clock speedup** — the full ``DistNearCliqueRunner`` at n >= 4000
  on the E15/E16 community workload, process backend, one persistent
  session in both arms: ``pipeline_mode="off"`` (per-phase re-arm + fold,
  the E16 configuration) versus ``"fuse"``.  Interleaved best-of-N; the
  gate on a host with >= 2 CPUs is ``FUSION_SPEEDUP_FLOOR`` (full) /
  ``QUICK_SPEEDUP_FLOOR`` (quick CI mode).  Single-CPU hosts skip the
  ratio gate, as in E14–E16.

* **Re-arm elision** — from :class:`~repro.congest.sharding.ShardingStats`:
  the fused run's ``rearms`` must stay strictly below the phase count
  executed, with ``fused_phases`` accounting for the difference.

Results are emitted through the shared ``--json`` machinery in
``benchmarks/conftest.py`` (one ``{bench, config, measured, gate,
passed}`` record per gate), both under pytest and from ``main()``.

Run directly (``python benchmarks/bench_e20_pipeline_fusion.py``) or via
the pytest-benchmark harness; quick mode (``REPRO_BENCH_QUICK=1`` or
``--quick``) keeps n at the gate scale but trims repetitions.
"""

from __future__ import annotations

import os
import random
import sys
import time

import networkx as nx

from repro.analysis import tables
from repro.congest.config import CongestConfig
from repro.core.dist_near_clique import DistNearCliqueRunner

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from conftest import record_result, set_json_path

QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0") or "0"))

#: Shard count (== worker processes) of the timed comparison.
SHARDS = 4

#: Minimum acceptable fuse-over-off speedup when >= 2 CPUs exist.  Full
#: scale is the acceptance gate; quick scale is a lenient CI tripwire.
FUSION_SPEEDUP_FLOOR = 1.3
QUICK_SPEEDUP_FLOOR = 1.1

#: Forced sample (block-0 node ids of the community workload): keeps the
#: sampling stage deterministic and the exploration stage bounded, so the
#: two timed modes do byte-identical protocol work.
FORCED_SAMPLE = (2, 7, 19, 41, 83)

#: Every backend held to off/fuse bit-identity before timing.  Label ->
#: CongestConfig kwargs (``pipeline_mode`` is filled in per arm).
BACKENDS = (
    ("reference", dict(engine="reference")),
    ("batched", dict(engine="batched")),
    ("vectorized", dict(engine="vectorized")),
    ("async", dict(engine="async")),
    ("sharded-serial", dict(engine="sharded", shards=SHARDS, shard_backend="serial")),
    (
        "sharded-thread",
        dict(
            engine="sharded",
            shards=SHARDS,
            shard_backend="thread",
            session_mode="persistent",
        ),
    ),
    (
        "sharded-process",
        dict(
            engine="sharded",
            shards=SHARDS,
            shard_backend="process",
            session_mode="persistent",
        ),
    ),
)


def _community_graph(n: int, blocks: int, p_in: float, p_out: float, seed: int):
    """Equal dense blocks with contiguous ids over a sparse background."""
    rng = random.Random(seed)
    graph = nx.Graph()
    size = n // blocks
    for block in range(blocks):
        dense = nx.gnp_random_graph(size, p_in, seed=seed + block)
        offset = block * size
        graph.add_edges_from((offset + u, offset + v) for u, v in dense.edges())
    graph.add_nodes_from(range(n))
    for _ in range(int(p_out * n * n / 2.0)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            graph.add_edge(u, v)
    return graph


def _workload(quick: bool):
    # The gate scale stays at n >= 4000 even in quick mode — the ISSUE's
    # acceptance bar; quick mode trims repetitions instead.
    n = 4000 if quick else 6000
    graph = _community_graph(n, SHARDS, 0.04, 2.0 / n, seed=7)
    return "web-communities (n=%d, %d blocks)" % (n, SHARDS), graph


def _differential_workload():
    # Small enough for the reference engine, dense enough that every phase
    # of the composite does real work.
    n = 600
    graph = _community_graph(n, SHARDS, 0.08, 4.0 / n, seed=7)
    return "web-communities (n=%d, %d blocks)" % (n, SHARDS), graph


def _result_fingerprint(result):
    m = result.metrics
    return (
        result.labels,
        result.sample,
        result.aborted,
        m.rounds,
        m.total_messages,
        m.total_bits,
        m.max_message_bits,
        [
            (r.round_index, r.messages_sent, r.bits_sent, r.active_nodes)
            for r in m.per_round
        ],
    )


def _run_once(graph, backend_kwargs, pipeline_mode, seed=11):
    """One full DistNearClique run; returns (seconds, fingerprint, runner)."""
    n = graph.number_of_nodes()
    config = CongestConfig(
        pipeline_mode=pipeline_mode, **backend_kwargs
    ).with_log_budget(n)
    runner = DistNearCliqueRunner(
        epsilon=0.25,
        sample_probability=0.001,
        max_sample_size=None,
        rng=random.Random(seed),
        config=config,
    )
    start = time.perf_counter()
    result = runner.run(graph, sample=FORCED_SAMPLE)
    elapsed = time.perf_counter() - start
    assert not result.aborted, "benchmark workload aborted: %s" % result.abort_reason
    return elapsed, _result_fingerprint(result), runner


def _identity_sweep():
    """off/fuse bit-identity on every backend, pinned to the reference."""
    name, graph = _differential_workload()
    oracle = None
    for label, backend_kwargs in BACKENDS:
        for mode in ("off", "fuse"):
            _, fingerprint, _ = _run_once(graph, backend_kwargs, mode)
            if oracle is None:
                oracle = fingerprint  # reference engine, pipeline off
            assert fingerprint == oracle, (
                "%s with pipeline_mode=%r diverged from the reference "
                "engine on %s" % (label, mode, name)
            )
    print(
        "E20  bit-identity: %d backends x {off, fuse} identical to the "
        "reference engine on %s" % (len(BACKENDS), name)
    )
    record_result(
        "e20-pipeline-fusion",
        {"workload": name, "backends": [label for label, _ in BACKENDS]},
        {"arms": len(BACKENDS) * 2},
        {"criterion": "off/fuse fingerprints identical to reference"},
        True,
    )


def _fusion_table(name, graph, quick):
    process_kwargs = dict(BACKENDS)["sharded-process"]

    # Gate-scale bit-identity for both timed arms before any timing claim:
    # against the batched fast path (itself differentially pinned to the
    # reference engine, and re-pinned across modes by _identity_sweep).
    _, oracle, _ = _run_once(graph, dict(BACKENDS)["batched"], "off")

    timings = {"off": float("inf"), "fuse": float("inf")}
    fused_runner = None
    repetitions = 2 if quick else 3
    # Interleaved best-of-N: a ratio gate needs both sides sampled under
    # comparable load.
    for _ in range(repetitions):
        for mode in ("off", "fuse"):
            elapsed, fingerprint, runner = _run_once(graph, process_kwargs, mode)
            assert fingerprint == oracle, (
                "process backend with pipeline_mode=%r diverged from the "
                "batched oracle" % mode
            )
            timings[mode] = min(timings[mode], elapsed)
            if mode == "fuse":
                fused_runner = runner

    stats = fused_runner.last_session_stats
    plan = fused_runner.last_pipeline_plan
    phases_executed = stats.rearms + stats.fused_phases
    assert stats.rearms < phases_executed, (
        "fusion elided nothing: %d re-arms for %d phases"
        % (stats.rearms, phases_executed)
    )

    speedup = timings["off"] / max(timings["fuse"], 1e-9)
    rows = [
        ["per-phase re-arm (off)", round(timings["off"], 3), 1.0],
        [
            "fused groups (fuse)",
            round(timings["fuse"], 3),
            round(timings["fuse"] / timings["off"], 2),
        ],
    ]
    tables.print_table(
        ["pipeline mode", "wall s", "vs off"],
        rows,
        title="E20  %s — DistNearCliqueRunner end to end (%d shards, "
        "process backend, persistent session, bit-identical runs)"
        % (name, SHARDS),
    )
    print(plan.describe())
    print(
        "fuse-over-off speedup: %.2fx  |  pool re-arms: %d for %d phases "
        "(%d elided by fusion)"
        % (speedup, stats.rearms, phases_executed, stats.fused_phases)
    )

    cpus = os.cpu_count() or 1
    floor = QUICK_SPEEDUP_FLOOR if quick else FUSION_SPEEDUP_FLOOR
    gated = cpus >= 2
    record_result(
        "e20-pipeline-fusion",
        {
            "workload": name,
            "backend": "sharded-process",
            "shards": SHARDS,
            "quick": quick,
            "cpus": cpus,
        },
        {
            "wall_seconds_off": timings["off"],
            "wall_seconds_fuse": timings["fuse"],
            "speedup": speedup,
            "rearms": stats.rearms,
            "fused_phases": stats.fused_phases,
        },
        {"criterion": "speedup >= floor", "floor": floor, "gated": gated},
        (not gated) or speedup >= floor,
    )
    if gated:
        assert speedup >= floor, (
            "fused pipeline is only %.2fx the per-phase session on %s "
            "(%d CPUs), below the %.2fx floor" % (speedup, name, cpus, floor)
        )
    else:
        print(
            "(fusion-speedup gate skipped: %d CPU(s) available; the "
            "process backend needs >= 2 to be the configuration anyone "
            "runs)" % cpus
        )
    return timings


def _run_suite(quick: bool):
    _identity_sweep()
    name, graph = _workload(quick)
    return _fusion_table(name, graph, quick)


def bench_e20_pipeline_fusion(benchmark):
    """pytest-benchmark entry point, matching the other E* modules."""
    _run_suite(QUICK)

    _name, graph = _workload(quick=True)
    process_kwargs = dict(BACKENDS)["sharded-process"]
    benchmark(lambda: _run_once(graph, process_kwargs, "fuse"))


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--json" in argv:
        index = argv.index("--json")
        set_json_path(argv[index + 1])
        del argv[index : index + 2]
    quick = QUICK or "--quick" in argv
    _run_suite(quick)
    return 0


if __name__ == "__main__":
    sys.exit(main())
