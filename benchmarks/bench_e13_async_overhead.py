"""E13 — asynchronous execution: synchronizer control overhead vs pulses.

Section 2 of the paper invokes Awerbuch's synchronizers to argue the
algorithm runs unchanged in asynchronous networks.  The ``async`` engine
(:mod:`repro.congest.synchronizer`) makes that claim executable; this
benchmark quantifies its price.  The alpha synchronizer costs

* one acknowledgement per payload message, and
* one safety notification per edge direction per pulse,

so the control-message count is ``protocol_messages + 2·|E|·(pulses + 1)``
— linear in the pulse count with slope 2·|E|, independent of the protocol's
own chattiness.  The benchmark runs the full ``DistNearClique`` pipeline
and a BFS-tree primitive across workload scales under the ``async`` engine,
asserts the outputs and protocol metrics are bit-identical to the
``reference`` engine (the engine contract — a fast-but-wrong backend cannot
"win"), checks the measured overhead against the closed form above, and
prints overhead-per-pulse and overhead-per-payload-message ratios.

The benchmark also times the engine's *pre-run snapshot*: deriving the
pulse budget used to require two ``copy.deepcopy`` calls (contexts, then
protocol); it now takes one ``pickle`` round trip of both together, and
the snapshot table below shows the setup-cost drop on a contexts dict with
realistic pipeline residue (the differential suite guards that the
semantics did not move).

Quick mode (``REPRO_BENCH_QUICK=1`` or ``--quick``) shrinks the workloads
so the benchmark doubles as a CI regression gate for the async engine's
accounting invariants.

Run directly (``python benchmarks/bench_e13_async_overhead.py``) or via the
pytest-benchmark harness like the other experiments.
"""

from __future__ import annotations

import copy
import os
import pickle
import random
import sys
import time

import networkx as nx

from repro.analysis import tables
from repro.congest.config import CongestConfig
from repro.congest.network import Network
from repro.congest.scheduler import run_protocol
from repro.core.dist_near_clique import DistNearCliqueRunner
from repro.graphs import generators
from repro.primitives.bfs_tree import KEY_PARTICIPANT, MinIdBFSTreeProtocol

QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0") or "0"))


def _workloads(quick: bool):
    sizes = (60, 120) if quick else (100, 250, 500)
    for n in sizes:
        graph, _ = generators.planted_near_clique(
            n=n, clique_fraction=0.4, epsilon=0.008, background_p=0.03, seed=13
        )
        yield "planted (n=%d)" % n, graph
    n = 80 if quick else 300
    yield "gnp (n=%d)" % n, nx.gnp_random_graph(n, 4.0 / n, seed=8)


def _bfs_row(name, graph):
    """BFS-tree primitive: one protocol, clean overhead decomposition."""
    per_node = {v: {KEY_PARTICIPANT: True} for v in graph.nodes()}
    results = {}
    for engine in ("reference", "async"):
        network = Network(graph, seed=31)
        config = CongestConfig(engine=engine).with_log_budget(
            max(2, graph.number_of_nodes())
        )
        results[engine] = run_protocol(
            network, MinIdBFSTreeProtocol(), config=config, per_node_inputs=per_node
        )
    reference, asynchronous = results["reference"], results["async"]

    assert asynchronous.outputs == reference.outputs
    metrics = asynchronous.metrics
    assert metrics.rounds == reference.metrics.rounds
    assert metrics.total_messages == reference.metrics.total_messages
    assert metrics.total_bits == reference.metrics.total_bits

    pulses = asynchronous.pulses
    directed_edges = 2 * graph.number_of_edges()
    # The closed form of the alpha synchronizer's overhead.
    assert metrics.ack_messages == metrics.total_messages
    assert metrics.safety_messages == directed_edges * (pulses + 1)

    control = metrics.control_messages
    return {
        "workload": "bfs / " + name,
        "edges": graph.number_of_edges(),
        "pulses": pulses,
        "protocol_messages": metrics.total_messages,
        "acks": metrics.ack_messages,
        "safety": metrics.safety_messages,
        "control_per_pulse": control / max(1, pulses),
        "control_per_message": control / max(1, metrics.total_messages),
    }


def _pipeline_row(name, graph, sample_size=6):
    """Full DistNearClique pipeline: overhead aggregated across 14 phases."""
    sample = sorted(random.Random(5).sample(sorted(graph.nodes()), sample_size))
    results = {}
    for engine in ("reference", "async"):
        runner = DistNearCliqueRunner(
            epsilon=0.25,
            sample_probability=sample_size / float(graph.number_of_nodes()),
            max_sample_size=None,
            rng=random.Random(42),
            engine=engine,
        )
        results[engine] = runner.run(graph, sample=sample)
    reference, asynchronous = results["reference"], results["async"]

    assert asynchronous.labels == reference.labels
    metrics = asynchronous.metrics
    assert metrics.rounds == reference.metrics.rounds
    assert metrics.total_messages == reference.metrics.total_messages
    assert metrics.total_bits == reference.metrics.total_bits
    assert reference.metrics.control_messages == 0
    # Aggregated closed form: acks == payload, safety == 2|E|·(rounds + #phases)
    # (each of the pipeline's phases pays one extra pulse-0 safety flood).
    assert metrics.ack_messages == metrics.total_messages
    assert metrics.safety_messages % (2 * graph.number_of_edges()) == 0

    pulses = metrics.rounds
    control = metrics.control_messages
    return {
        "workload": "pipeline / " + name,
        "edges": graph.number_of_edges(),
        "pulses": pulses,
        "protocol_messages": metrics.total_messages,
        "acks": metrics.ack_messages,
        "safety": metrics.safety_messages,
        "control_per_pulse": control / max(1, pulses),
        "control_per_message": control / max(1, metrics.total_messages),
    }


def _snapshot_cost_table(quick: bool):
    """Pre-run snapshot: one pickle round trip vs the two-deepcopy baseline.

    The contexts carry the residue of a real protocol run (BFS trees,
    outboxes, per-node RNGs), which is exactly what the pulse-budget
    derivation must preserve for a reused composite pipeline.
    """
    n = 400 if quick else 1200
    graph, _ = generators.planted_near_clique(
        n=n, clique_fraction=0.4, epsilon=0.008, background_p=0.02, seed=13
    )
    network = Network(graph, seed=31)
    per_node = {v: {KEY_PARTICIPANT: True} for v in graph.nodes()}
    protocol = MinIdBFSTreeProtocol()
    run_protocol(
        network,
        protocol,
        config=CongestConfig().with_log_budget(n),
        per_node_inputs=per_node,
    )

    def deepcopy_snapshot():
        copy.deepcopy(network._contexts)
        copy.deepcopy(protocol)

    def pickle_snapshot():
        pickle.loads(
            pickle.dumps(
                (network._contexts, protocol), protocol=pickle.HIGHEST_PROTOCOL
            )
        )

    timings = {}
    for label, snapshot in (
        ("2x deepcopy (old)", deepcopy_snapshot),
        ("1x pickle (new)", pickle_snapshot),
    ):
        best = float("inf")
        for _ in range(3 if quick else 5):
            start = time.perf_counter()
            snapshot()
            best = min(best, time.perf_counter() - start)
        timings[label] = best
    speedup = timings["2x deepcopy (old)"] / max(timings["1x pickle (new)"], 1e-9)
    tables.print_table(
        ["snapshot", "best s", "speedup"],
        [
            [label, round(elapsed, 4), round(timings["2x deepcopy (old)"] / elapsed, 2)]
            for label, elapsed in timings.items()
        ],
        title="E13  pre-run snapshot cost, n=%d contexts with pipeline state" % n,
    )
    # The pickle path must never cost more than the deepcopies it replaced
    # (small slack for shared-runner noise).
    assert timings["1x pickle (new)"] <= timings["2x deepcopy (old)"] * 1.2, (
        "pickle snapshot is slower than the deepcopy baseline (%.4fs vs %.4fs)"
        % (timings["1x pickle (new)"], timings["2x deepcopy (old)"])
    )
    return speedup


def _run_suite(quick: bool):
    rows = []
    workloads = list(_workloads(quick))
    for name, graph in workloads:
        rows.append(_bfs_row(name, graph))
    # The pipeline is heavier; run it on the smallest workload only.
    rows.append(_pipeline_row(*workloads[0]))
    _snapshot_cost_table(quick)

    tables.print_table(
        [
            "workload",
            "edges",
            "pulses",
            "payload msgs",
            "acks",
            "safety",
            "control/pulse",
            "control/msg",
        ],
        [
            [
                row["workload"],
                row["edges"],
                row["pulses"],
                row["protocol_messages"],
                row["acks"],
                row["safety"],
                round(row["control_per_pulse"], 1),
                round(row["control_per_message"], 2),
            ]
            for row in rows
        ],
        title="E13  async engine: synchronizer control overhead vs pulses",
    )

    # Safety traffic per pulse is 2|E| exactly, so control/pulse must grow
    # with the edge count while control/msg stays a small constant factor.
    for row in rows:
        assert row["control_per_pulse"] >= 2 * row["edges"], row["workload"]
    return rows


def bench_e13_async_overhead(benchmark):
    """pytest-benchmark entry point, matching the other E* modules."""
    _run_suite(QUICK)

    name, graph = next(iter(_workloads(quick=True)))
    benchmark(lambda: _bfs_row(name, graph))


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    quick = QUICK or "--quick" in argv
    _run_suite(quick)
    return 0


if __name__ == "__main__":
    sys.exit(main())
