"""E6 — the CONGEST message-size guarantee: O(log n) bits, independent of ε, δ.

Workload: planted near-clique graphs with n swept over a wide range while
the expected sample is held fixed.  Measured: the largest single message (in
bits) over the whole execution, compared with log₂ n, and the same figure
for two different (ε, δ) pairs to show the independence the paper stresses.
"""

from __future__ import annotations

import math
import random

from repro.analysis import stats, tables
from repro.core.dist_near_clique import DistNearCliqueRunner
from repro.graphs import generators


N_SWEEP = [32, 64, 128, 256]


def _max_bits(n, epsilon, delta, seed=6):
    graph, _ = generators.planted_near_clique(
        n=n, clique_fraction=delta, epsilon=epsilon ** 3, background_p=0.04, seed=seed
    )
    runner = DistNearCliqueRunner(
        epsilon=epsilon,
        sample_probability=min(1.0, 6.0 / n),
        max_sample_size=11,
        rng=random.Random(seed),
    )
    result = runner.run(graph)
    return result.metrics.max_message_bits, result.metrics.mean_message_bits


def bench_e6_message_size(benchmark):
    rows = []
    ratios = []
    for n in N_SWEEP:
        max_bits, mean_bits = _max_bits(n, epsilon=0.2, delta=0.5)
        max_bits_b, _ = _max_bits(n, epsilon=0.3, delta=0.4, seed=7)
        log_n = math.log2(n)
        ratios.append(max_bits / log_n)
        rows.append(
            [n, round(log_n, 2), max_bits, round(max_bits / log_n, 2), max_bits_b, round(mean_bits, 1)]
        )
    tables.print_table(
        [
            "n",
            "log2 n",
            "max bits (eps=.2, d=.5)",
            "max bits / log2 n",
            "max bits (eps=.3, d=.4)",
            "mean bits",
        ],
        rows,
        title="E6  Message size: max single-message bits vs log2 n",
    )

    # Shape checks: the max message stays within a constant multiple of
    # log2 n across a decade of n, and the multiple does not grow with n.
    assert all(ratio <= 12.0 for ratio in ratios)
    assert ratios[-1] <= ratios[0] * 1.8 + 1.0

    benchmark(lambda: _max_bits(64, epsilon=0.2, delta=0.5, seed=2))
