"""E10 — comparison with the related-work baselines.

Workload: planted ε³-near cliques of size δn.  Every algorithm is asked the
same question — "find a large near-clique" — and we report, per algorithm:
recall of the planted set, output size, output defect, and the dominant cost
in that algorithm's own currency (CONGEST rounds for the distributed
algorithms, maximum message bits for the LOCAL-model baseline, vertex peels
or restarts for the centralized ones — the table records what kind of
algorithm each row is so the costs are not read as commensurable).

Paper prediction (qualitative): the distributed algorithm's output quality is
competitive with the centralized comparators while using only O(log n)-bit
messages and constant rounds; the shingles heuristic is the only one that
fails to isolate the planted set (it dilutes it, cf. Claim 1).
"""

from __future__ import annotations

import random

from repro.analysis import stats, tables
from repro.baselines.centralized import (
    charikar_peeling,
    greedy_dense_k_subgraph,
    peel_to_near_clique,
    quasi_clique_local_search,
)
from repro.baselines.neighbors import neighbors_neighbors
from repro.baselines.shingles import shingles_run
from repro.core import near_clique
from repro.core.boosting import BoostedNearCliqueRunner
from repro.core.dist_near_clique import DistNearCliqueRunner
from repro.graphs import generators


EPSILON = 0.2
DELTA = 0.5
N = 80
TRIALS = 6


def _quality(graph, members, planted):
    planted_set = set(planted)
    members = set(members)
    recall = len(members & planted_set) / float(len(planted_set))
    defect = near_clique.near_clique_defect(graph, members)
    return recall, len(members), defect


def _run_all(seed):
    graph, planted = generators.planted_near_clique(
        n=N, clique_fraction=DELTA, epsilon=EPSILON ** 3, background_p=0.05, seed=seed
    )
    rng = random.Random(seed)
    results = {}

    dist = DistNearCliqueRunner(
        epsilon=EPSILON, sample_probability=8.0 / N, max_sample_size=12, rng=rng
    ).run(graph)
    results["DistNearClique (CONGEST)"] = _quality(
        graph, dist.largest_cluster(), planted.members
    ) + (dist.metrics.rounds,)

    boosted = BoostedNearCliqueRunner(
        epsilon=EPSILON, sample_probability=8.0 / N, repetitions=4, rng=rng
    ).run(graph)
    results["Boosted (lambda=4)"] = _quality(
        graph, boosted.largest_cluster(), planted.members
    ) + (0,)

    sh = shingles_run(graph, rng=rng)
    best = sh.best_candidate()
    results["Shingles (CONGEST)"] = _quality(
        graph, best.members if best else set(), planted.members
    ) + (4,)

    nn = neighbors_neighbors(graph)
    results["Neighbours' neighbours (LOCAL)"] = _quality(
        graph, nn.largest_clique(), planted.members
    ) + (nn.rounds,)

    peel, _ = charikar_peeling(graph)
    results["Charikar peeling (centralized)"] = _quality(graph, peel, planted.members) + (0,)

    dks = greedy_dense_k_subgraph(graph, len(planted.members))
    results["Greedy DkS (centralized)"] = _quality(graph, dks, planted.members) + (0,)

    quasi = quasi_clique_local_search(graph, EPSILON, seed=seed)
    results["Quasi-clique GRASP (centralized)"] = _quality(
        graph, quasi, planted.members
    ) + (0,)

    near = peel_to_near_clique(graph, EPSILON)
    results["Peel to near-clique (centralized)"] = _quality(
        graph, near, planted.members
    ) + (0,)
    return results


def bench_e10_baselines(benchmark):
    accumulated = {}
    for seed in range(TRIALS):
        for name, (recall, size, defect, rounds) in _run_all(seed).items():
            accumulated.setdefault(name, []).append((recall, size, defect, rounds))

    rows = []
    for name, values in accumulated.items():
        rows.append(
            [
                name,
                stats.mean([v[0] for v in values]),
                stats.mean([v[1] for v in values]),
                stats.mean([v[2] for v in values]),
                stats.mean([v[3] for v in values]),
            ]
        )
    rows.sort(key=lambda row: -row[1])
    tables.print_table(
        ["algorithm", "recall", "size", "defect", "rounds (0 = centralized)"],
        rows,
        title="E10  Baselines on planted eps^3-near cliques (delta=0.5, n=80)",
    )

    by_name = {row[0]: row for row in rows}
    # The boosted distributed algorithm is competitive with the best
    # centralized comparator on recall.
    best_centralized = max(
        by_name["Quasi-clique GRASP (centralized)"][1],
        by_name["Greedy DkS (centralized)"][1],
    )
    assert by_name["Boosted (lambda=4)"][1] >= best_centralized - 0.2
    # The shingles heuristic dilutes the planted set: its output defect is far
    # above everyone else's on these workloads.
    assert by_name["Shingles (CONGEST)"][3] >= by_name["Boosted (lambda=4)"][3]

    benchmark(lambda: _run_all(0))
